//! Document generators with tunable size and compressibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the synthetic server-log generator.
#[derive(Debug, Clone)]
pub struct LogOptions {
    /// Number of log lines.
    pub lines: usize,
    /// Number of distinct message templates (fewer templates → more
    /// repetitive → smaller SLP).
    pub templates: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for LogOptions {
    fn default() -> Self {
        LogOptions {
            lines: 1000,
            templates: 8,
            seed: 0xC0FFEE,
        }
    }
}

/// A synthetic, highly repetitive server log: every line is one of a few
/// templates with a small varying numeric field — the classic motivating
/// workload for information extraction over compressible text.
pub fn repetitive_log(options: &LogOptions) -> Vec<u8> {
    let levels = ["INFO", "WARN", "ERROR", "DEBUG"];
    let messages = [
        "request served in {}ms path=/api/v1/items",
        "cache miss for key=user:{} backfilled",
        "connection pool exhausted retry={}",
        "payment gateway timeout after {}ms",
        "scheduled job finished rows={}",
        "disk usage at {}% on /var/data",
        "user {} logged in from 10.0.0.7",
        "replica lag {}s on shard-3",
    ];
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut out = Vec::with_capacity(options.lines * 64);
    for i in 0..options.lines {
        let template = i % options.templates.max(1).min(messages.len());
        let level = levels[template % levels.len()];
        let value: u32 = rng.gen_range(0..100);
        let message = messages[template].replace("{}", &value.to_string());
        out.extend_from_slice(b"2026-06-13T12:00:00Z ");
        out.extend_from_slice(level.as_bytes());
        out.push(b' ');
        out.extend_from_slice(message.as_bytes());
        out.push(b'\n');
    }
    out
}

/// A DNA-like document over `{A, C, G, T}` consisting of a random seed
/// segment plus many approximate repeats of it (point mutations with the
/// given probability).  Larger `copies` and smaller `mutation_prob` make the
/// document more compressible.
pub fn dna_with_repeats(
    segment_len: usize,
    copies: usize,
    mutation_prob: f64,
    seed: u64,
) -> Vec<u8> {
    let alphabet = [b'A', b'C', b'G', b'T'];
    let mut rng = StdRng::seed_from_u64(seed);
    let segment: Vec<u8> = (0..segment_len)
        .map(|_| alphabet[rng.gen_range(0..4usize)])
        .collect();
    let mut out = Vec::with_capacity(segment_len * copies);
    for _ in 0..copies {
        for &base in &segment {
            if rng.gen_bool(mutation_prob) {
                out.push(alphabet[rng.gen_range(0..4usize)]);
            } else {
                out.push(base);
            }
        }
    }
    out
}

/// A document with *tunable repetitiveness*: it is produced block by block,
/// and each block is either copied from an earlier position (probability
/// `1 − novelty`) or filled with fresh random bytes over a small alphabet
/// (probability `novelty`).  `novelty ≈ 0` gives highly compressible text
/// (SLP size `≪ d`), `novelty = 1` gives essentially incompressible text.
/// This is the knob for the crossover experiment E6.
pub fn tunable_repetitiveness(length: usize, block_len: usize, novelty: f64, seed: u64) -> Vec<u8> {
    assert!(block_len > 0);
    let alphabet = [b'a', b'b', b'c', b'd', b'e', b'f', b'g', b'h'];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<u8> = Vec::with_capacity(length + block_len);
    // Seed block so there is always something to copy.
    for _ in 0..block_len {
        out.push(alphabet[rng.gen_range(0..alphabet.len())]);
    }
    while out.len() < length {
        if rng.gen_bool(novelty) {
            for _ in 0..block_len {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        } else {
            let max_start = out.len() - block_len;
            let start = rng.gen_range(0..=max_start);
            let copy: Vec<u8> = out[start..start + block_len].to_vec();
            out.extend_from_slice(&copy);
        }
    }
    out.truncate(length);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Compressor, RePair};

    #[test]
    fn log_generator_is_deterministic_and_sized() {
        let opts = LogOptions {
            lines: 50,
            templates: 4,
            seed: 7,
        };
        let a = repetitive_log(&opts);
        let b = repetitive_log(&opts);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&c| c == b'\n').count(), 50);
        assert!(String::from_utf8_lossy(&a).contains("ERROR"));
    }

    #[test]
    fn dna_generator_uses_the_dna_alphabet() {
        let d = dna_with_repeats(100, 40, 0.01, 3);
        assert_eq!(d.len(), 4000);
        assert!(d.iter().all(|c| b"ACGT".contains(c)));
        // Low mutation probability means the document compresses well.
        let slp = RePair::default().compress(&d);
        assert!(slp.size() < d.len() / 2, "size {}", slp.size());
    }

    #[test]
    fn repetitiveness_knob_controls_compressed_size() {
        let compressible = tunable_repetitiveness(1 << 14, 32, 0.01, 11);
        let incompressible = tunable_repetitiveness(1 << 14, 32, 1.0, 11);
        assert_eq!(compressible.len(), 1 << 14);
        assert_eq!(incompressible.len(), 1 << 14);
        let s1 = RePair::default().compress(&compressible).size();
        let s2 = RePair::default().compress(&incompressible).size();
        assert!(
            s1 * 2 < s2,
            "expected the compressible document to have a much smaller SLP ({s1} vs {s2})"
        );
    }
}
