//! # spanner-workloads — documents and queries for the experiments
//!
//! Generators for the documents and spanner queries used by the benchmark
//! suite (experiments E1–E11 in DESIGN.md) and by the examples, plus the
//! request-traffic schedules of the serving experiment (E11, [`traffic`]).
//! The paper has no empirical section, so these workloads are designed to
//! exercise the parameters its complexity bounds depend on: the SLP size
//! `s`, the SLP depth, the document length `d`, the number of variables
//! `|X|` and the result count `r` — see DESIGN.md §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod documents;
pub mod queries;
pub mod traffic;

pub use corpus::{sharded_block_document, sharded_power_family, ShardedCase};
pub use documents::{dna_with_repeats, repetitive_log, tunable_repetitiveness, LogOptions};
pub use queries::{named_queries, NamedQuery};
pub use traffic::{
    closed_loop_schedule, multi_tenant_schedule, open_loop_arrivals, Mix, Op, OpKind, TenantOp,
    TenantProfile,
};
