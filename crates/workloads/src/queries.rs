//! A small library of named spanner queries used across benchmarks,
//! examples and integration tests.

use spanner::examples::figure_2_spanner;
use spanner::{regex, SpannerAutomaton};

/// A named spanner query: the pattern (for documentation), its alphabet and
/// the compiled deterministic automaton.
pub struct NamedQuery {
    /// A short identifier used in benchmark reports.
    pub name: &'static str,
    /// The variable-regex pattern (empty for hand-built automata).
    pub pattern: &'static str,
    /// The compiled, deterministic spanner automaton.
    pub automaton: SpannerAutomaton<u8>,
}

impl std::fmt::Debug for NamedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NamedQuery({}, q={})",
            self.name,
            self.automaton.num_states()
        )
    }
}

/// The paper's Figure 2 spanner (extracts `(a|b)`-blocks as `x` or
/// `c⁺`-blocks as `y`, each followed by another `a`/`b`).
pub fn figure2() -> NamedQuery {
    NamedQuery {
        name: "figure2",
        pattern: "(hand-built DFA of Figure 2)",
        automaton: figure_2_spanner(),
    }
}

/// Extracts the numeric value of every `ERROR` log line's trailing number:
/// `x` spans the digits following "ERROR" somewhere later in the same line.
pub fn log_error_value() -> NamedQuery {
    let pattern = ".*ERROR[^\n]*[^0-9\n]x{[0-9]+}[^0-9\n]*\n.*";
    NamedQuery {
        name: "log_error_value",
        pattern: ".*ERROR[^\\n]*[^0-9\\n]x{[0-9]+}[^0-9\\n]*\\n.*",
        automaton: regex::compile_deterministic(pattern, LOG_ALPHABET).unwrap(),
    }
}

/// Extracts `key=value` pairs: `k` spans a lowercase key, `v` the digits of
/// its value.
pub fn key_value() -> NamedQuery {
    let pattern = ".*[^a-z]k{[a-z]+}=v{[0-9]+}[^0-9].*";
    NamedQuery {
        name: "key_value",
        pattern: ".*[^a-z]k{[a-z]+}=v{[0-9]+}[^0-9].*",
        automaton: regex::compile_deterministic(pattern, LOG_ALPHABET).unwrap(),
    }
}

/// Extracts occurrences of the DNA motif `TATA` box-like pattern: `x` spans
/// `TA TA` followed by at least one `A`.
pub fn dna_tata() -> NamedQuery {
    let pattern = ".*x{TATA+}.*";
    NamedQuery {
        name: "dna_tata",
        pattern: ".*x{TATA+}.*",
        automaton: regex::compile_deterministic(pattern, b"ACGT").unwrap(),
    }
}

/// Extracts every `ab` occurrence over the binary alphabet; result count is
/// easy to predict, which makes it the work-horse of the scaling benches.
pub fn ab_blocks() -> NamedQuery {
    NamedQuery {
        name: "ab_blocks",
        pattern: ".*x{ab}.*",
        automaton: regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap(),
    }
}

/// A two-variable query over the 8-letter alphabet of
/// [`crate::documents::tunable_repetitiveness`]: `x` spans an `a`-block and
/// `y` the following `b`-block.
pub fn adjacent_blocks() -> NamedQuery {
    NamedQuery {
        name: "adjacent_blocks",
        pattern: ".*x{a+}y{b+}.*",
        automaton: regex::compile_deterministic(".*x{a+}y{b+}.*", b"abcdefgh").unwrap(),
    }
}

/// The alphabet used by the synthetic log generator (printable ASCII subset
/// plus newline).
pub const LOG_ALPHABET: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 :=%./-{}\n";

/// All named queries, for sweeps over query shape.
pub fn named_queries() -> Vec<NamedQuery> {
    vec![
        figure2(),
        ab_blocks(),
        adjacent_blocks(),
        key_value(),
        dna_tata(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::documents::{repetitive_log, LogOptions};
    use spanner::reference;

    #[test]
    fn all_queries_are_deterministic() {
        for q in named_queries() {
            assert!(q.automaton.is_deterministic(), "{}", q.name);
            assert!(!q.name.is_empty());
        }
    }

    #[test]
    fn key_value_finds_pairs() {
        let q = key_value();
        let doc = b" retry=17 ";
        let results = reference::evaluate(&q.automaton, doc);
        assert_eq!(results.len(), 1);
        let t = results.iter().next().unwrap();
        let k = q.automaton.variables().get("k").unwrap();
        let v = q.automaton.variables().get("v").unwrap();
        assert_eq!(t.get(k).unwrap().value(doc).unwrap(), b"retry");
        assert_eq!(t.get(v).unwrap().value(doc).unwrap(), b"17");
    }

    #[test]
    fn dna_tata_finds_motifs() {
        let q = dna_tata();
        // TATA+ matches both "TATA" and the extended "TATAA".
        let results = reference::evaluate(&q.automaton, b"GGTATAACC");
        assert_eq!(results.len(), 2);
        let results = reference::evaluate(&q.automaton, b"GGTATGCC");
        assert_eq!(results.len(), 0);
    }

    #[test]
    fn log_error_value_runs_on_generated_logs() {
        let q = log_error_value();
        let doc = repetitive_log(&LogOptions {
            lines: 12,
            templates: 4,
            seed: 1,
        });
        // The generated log contains ERROR lines with numeric fields, so the
        // spanner is non-empty on it (checked via the compressed evaluator in
        // the integration tests; here we only sanity-check compilation).
        assert!(q.automaton.num_states() > 1);
        assert!(doc.windows(5).any(|w| w == b"ERROR"));
    }

    #[test]
    fn ab_blocks_counts_are_predictable() {
        let q = ab_blocks();
        let results = reference::evaluate(&q.automaton, b"abab");
        assert_eq!(results.len(), 2);
    }
}
