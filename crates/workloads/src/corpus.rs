//! Corpus construction: documents paired with their sharded variants, for
//! the scatter-gather experiments (E10) and sharded serving demos.
//!
//! Sharding cuts one SLP at the start rule into `k` balanced sub-grammars
//! (see `slp::shard`).  Two structural regimes matter for the experiments:
//!
//! * **Power families** (`w^k`) compress exponentially by *sharing* grammar
//!   rules across the whole document — cutting them duplicates the shared
//!   structure into every shard, so the sharded build does more total work
//!   (the price of distributing an exponentially compressed document).
//! * **Block documents** (low-repetitiveness text) have little cross-shard
//!   sharing — the shards partition the grammar almost perfectly, so the
//!   per-shard passes split the monolithic work `k` ways and the parallel
//!   critical path (`max` shard + merge) drops accordingly.

use slp::shard::{self, ShardedDocument};
use slp::{families, NormalFormSlp};

/// One corpus document plus its sharded variants.
#[derive(Debug, Clone)]
pub struct ShardedCase {
    /// Human-readable case name (table id).
    pub name: String,
    /// The monolithic compressed document.
    pub slp: NormalFormSlp<u8>,
    /// `(k, split into k shards)` for every requested shard count.
    pub sharded: Vec<(usize, ShardedDocument<u8>)>,
}

impl ShardedCase {
    fn new(name: String, slp: NormalFormSlp<u8>, shard_counts: &[usize]) -> Self {
        let sharded = shard_counts
            .iter()
            .map(|&k| (k, shard::split(&slp, k)))
            .collect();
        ShardedCase { name, slp, sharded }
    }
}

/// The `w^k` power family with sharded variants: one case per repetition
/// count, each split for every requested shard count.
pub fn sharded_power_family(word: &[u8], ks: &[u64], shard_counts: &[usize]) -> Vec<ShardedCase> {
    ks.iter()
        .map(|&k| {
            ShardedCase::new(
                format!("({})^{k}", String::from_utf8_lossy(word)),
                families::power_word(word, k),
                shard_counts,
            )
        })
        .collect()
}

/// A low-repetitiveness block document (see
/// [`tunable_repetitiveness`](crate::documents::tunable_repetitiveness))
/// compressed by balanced bisection, with sharded variants — the regime in
/// which the shards partition the grammar and the per-shard passes split
/// the matrix work `k` ways.
pub fn sharded_block_document(
    length: usize,
    block_len: usize,
    novelty: f64,
    seed: u64,
    shard_counts: &[usize],
) -> ShardedCase {
    let doc = crate::documents::tunable_repetitiveness(length, block_len, novelty, seed);
    let slp = NormalFormSlp::from_document(&doc).expect("non-empty document");
    ShardedCase::new(format!("block-{length}-nov{novelty}"), slp, shard_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_corpus_round_trips_and_covers_every_k() {
        let cases = sharded_power_family(b"ab", &[64, 256], &[2, 4]);
        assert_eq!(cases.len(), 2);
        for case in &cases {
            let text = case.slp.derive();
            assert_eq!(case.sharded.len(), 2);
            for (k, sharded) in &case.sharded {
                assert_eq!(sharded.k(), *k);
                assert_eq!(sharded.derive(), text, "{} k={k}", case.name);
            }
        }
    }

    #[test]
    fn block_document_shards_partition_the_grammar() {
        let case = sharded_block_document(1 << 12, 32, 1.0, 7, &[4]);
        let (_, sharded) = &case.sharded[0];
        assert_eq!(sharded.derive(), case.slp.derive());
        // Low repetitiveness → little cross-shard sharing: the shard
        // grammars together are not much bigger than the monolithic one.
        let total: usize = sharded.shards().iter().map(|s| s.size()).sum();
        assert!(
            total < 2 * case.slp.size(),
            "shards {total} vs monolithic {}",
            case.slp.size()
        );
    }
}
