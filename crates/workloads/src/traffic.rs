//! Traffic generation for the serving experiments (E11) and smoke tests:
//! deterministic open- and closed-loop request schedules over a pool of
//! registered queries and documents.
//!
//! A schedule is transport-agnostic: it names *which* pooled query and
//! document to hit and *what kind* of task to run, leaving the mapping to
//! concrete `TaskRequest`s or wire frames to the driver (the experiments
//! bin, the integration tests, the `spanner-client` scripts).  That keeps
//! this crate free of the evaluation-core dependency and lets one schedule
//! drive both the in-process service and the network server, so their
//! numbers are comparable.
//!
//! * **Closed loop** ([`closed_loop_schedule`]): each client thread works
//!   through its operations back-to-back — offered load adapts to service
//!   speed; the measurement of interest is per-request latency under a
//!   given concurrency.
//! * **Open loop** ([`open_loop_arrivals`]): operations arrive at
//!   exponentially distributed intervals regardless of completion —
//!   offered load is fixed; the measurement of interest is queueing and
//!   backpressure (`busy` rates) around saturation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request kind, weighted inside a [`Mix`].  Mirrors the service's
/// task suite without depending on it (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Boolean non-emptiness probe.
    NonEmptiness,
    /// Model-check some known-good tuple (the driver picks which).
    ModelCheck,
    /// Count the full relation.
    Count,
    /// Materialise up to `limit` tuples (`None` = all).
    Compute {
        /// Result-count cap forwarded to the request.
        limit: Option<u64>,
    },
    /// Stream an enumeration window.
    Enumerate {
        /// Results to skip.
        skip: u64,
        /// Window size (`None` = all remaining).
        limit: Option<u64>,
    },
}

/// One scheduled operation: which pooled pair to hit and what to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Index of the query in the driver's pool.
    pub query: usize,
    /// Index of the document in the driver's pool.
    pub doc: usize,
    /// What to run on the pair.
    pub kind: OpKind,
}

/// A weighted request mix.
#[derive(Debug, Clone)]
pub struct Mix {
    /// `(kind, weight)` pairs; weights are relative, not normalised.
    entries: Vec<(OpKind, u32)>,
}

impl Mix {
    /// Builds a mix from `(kind, weight)` pairs (zero-weight entries are
    /// dropped; at least one positive weight is required).
    pub fn new(entries: impl IntoIterator<Item = (OpKind, u32)>) -> Mix {
        let entries: Vec<(OpKind, u32)> = entries.into_iter().filter(|(_, w)| *w > 0).collect();
        assert!(
            !entries.is_empty(),
            "a mix needs at least one positive weight"
        );
        Mix { entries }
    }

    /// An interactive, cache-friendly mix: mostly cheap point lookups
    /// (non-emptiness, counting), some model checks, a few small
    /// enumeration windows.
    pub fn read_heavy() -> Mix {
        Mix::new([
            (OpKind::NonEmptiness, 40),
            (OpKind::Count, 30),
            (OpKind::ModelCheck, 15),
            (
                OpKind::Enumerate {
                    skip: 0,
                    limit: Some(10),
                },
                15,
            ),
        ])
    }

    /// A scan-heavy mix: materialisation and larger enumeration windows
    /// dominate — the regime in which streaming pages matter.
    pub fn scan_heavy() -> Mix {
        Mix::new([
            (OpKind::Compute { limit: Some(256) }, 40),
            (
                OpKind::Enumerate {
                    skip: 0,
                    limit: Some(128),
                },
                40,
            ),
            (OpKind::Count, 20),
        ])
    }

    /// The mixed-priority QoS mix (E17): mostly latency-sensitive model
    /// checks with a steady minority of large enumeration scans — the
    /// regime in which a FIFO pipeline lets one scan head-of-line-block a
    /// crowd of point lookups, and weighted-fair scheduling should not.
    pub fn mixed_priority() -> Mix {
        Mix::new([
            (OpKind::ModelCheck, 70),
            (
                OpKind::Enumerate {
                    skip: 0,
                    limit: None,
                },
                30,
            ),
        ])
    }

    /// The kinds with positive weight.
    pub fn kinds(&self) -> impl Iterator<Item = OpKind> + '_ {
        self.entries.iter().map(|(kind, _)| *kind)
    }

    fn sample(&self, rng: &mut StdRng) -> OpKind {
        let total: u32 = self.entries.iter().map(|(_, w)| w).sum();
        let mut ticket = rng.gen_range(0..total);
        for (kind, weight) in &self.entries {
            if ticket < *weight {
                return *kind;
            }
            ticket -= weight;
        }
        unreachable!("ticket drawn below the total weight")
    }
}

/// Builds a deterministic closed-loop schedule: `ops` operations drawn
/// from `mix` over a pool of `num_queries × num_docs` pairs, uniformly at
/// random.  Equal seeds give equal schedules, so concurrent runs and
/// reruns are comparable.
pub fn closed_loop_schedule(
    num_queries: usize,
    num_docs: usize,
    mix: &Mix,
    ops: usize,
    seed: u64,
) -> Vec<Op> {
    assert!(num_queries > 0 && num_docs > 0, "empty pool");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| Op {
            query: rng.gen_range(0..num_queries),
            doc: rng.gen_range(0..num_docs),
            kind: mix.sample(&mut rng),
        })
        .collect()
}

/// Builds the arrival offsets of an open-loop run: `ops` exponentially
/// distributed inter-arrival gaps with the given mean (in microseconds),
/// accumulated into monotone offsets from the run start.  Pair it with a
/// [`closed_loop_schedule`] of the same length to know *what* arrives
/// *when*.
pub fn open_loop_arrivals(ops: usize, mean_gap_us: u64, seed: u64) -> Vec<u64> {
    assert!(mean_gap_us > 0, "zero mean gap");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let mut at = 0u64;
    (0..ops)
        .map(|_| {
            // Inverse-CDF sampling: gap = -mean · ln(u), u uniform in (0,1].
            let u = (rng.gen_range(1..=1u64 << 53) as f64) / (1u64 << 53) as f64;
            let gap = (-(u.ln()) * mean_gap_us as f64).round() as u64;
            at = at.saturating_add(gap);
            at
        })
        .collect()
}

/// One tenant's slice of a multi-tenant run: its share of the offered
/// load, its request mix, and the size of its private document pool.
/// Like [`Op`], everything is an index — the driver owns the mapping to
/// real tenant ids and pooled documents.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Relative traffic weight (how much of the schedule this tenant
    /// sends); zero-weight tenants send nothing.
    pub weight: u32,
    /// The tenant's request mix.
    pub mix: Mix,
    /// Number of documents in the tenant's private namespace.
    pub num_docs: usize,
}

/// One scheduled multi-tenant operation: which tenant sends it, and what
/// it is.  `op.doc` indexes the *tenant's own* document pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantOp {
    /// Index of the sending tenant in the driver's profile list.
    pub tenant: usize,
    /// The operation inside that tenant's namespace.
    pub op: Op,
}

/// Builds a deterministic multi-tenant closed-loop schedule: `ops`
/// operations, each first assigned to a tenant by weighted draw, then
/// drawn from that tenant's own mix and document pool.  The interleaving
/// is what exercises tenant isolation: a heavy tenant's scans land between
/// a light tenant's point lookups, so fairness failures (cache evictions,
/// admission starvation) show up in the light tenant's numbers.
pub fn multi_tenant_schedule(
    num_queries: usize,
    profiles: &[TenantProfile],
    ops: usize,
    seed: u64,
) -> Vec<TenantOp> {
    assert!(num_queries > 0, "empty query pool");
    let total: u32 = profiles.iter().map(|p| p.weight).sum();
    assert!(total > 0, "at least one tenant needs a positive weight");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x007E_4A97 /* tenant lane */);
    (0..ops)
        .map(|_| {
            let mut ticket = rng.gen_range(0..total);
            let tenant = profiles
                .iter()
                .position(|p| {
                    if ticket < p.weight {
                        true
                    } else {
                        ticket -= p.weight;
                        false
                    }
                })
                .expect("ticket drawn below the total weight");
            let profile = &profiles[tenant];
            assert!(profile.num_docs > 0, "tenant {tenant} has an empty pool");
            TenantOp {
                tenant,
                op: Op {
                    query: rng.gen_range(0..num_queries),
                    doc: rng.gen_range(0..profile.num_docs),
                    kind: profile.mix.sample(&mut rng),
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let mix = Mix::read_heavy();
        let a = closed_loop_schedule(3, 4, &mix, 500, 42);
        let b = closed_loop_schedule(3, 4, &mix, 500, 42);
        assert_eq!(a, b);
        let c = closed_loop_schedule(3, 4, &mix, 500, 43);
        assert_ne!(a, c, "different seeds give different schedules");
        assert!(a.iter().all(|op| op.query < 3 && op.doc < 4));
    }

    #[test]
    fn mixes_respect_their_weights_roughly() {
        let mix = Mix::new([(OpKind::Count, 3), (OpKind::NonEmptiness, 1)]);
        let schedule = closed_loop_schedule(1, 1, &mix, 4000, 7);
        let counts = schedule
            .iter()
            .filter(|op| op.kind == OpKind::Count)
            .count();
        // 3:1 weighting → ~3000 of 4000; allow generous slack.
        assert!((2600..3400).contains(&counts), "got {counts}");
    }

    #[test]
    fn open_loop_arrivals_are_monotone_with_sane_mean() {
        let arrivals = open_loop_arrivals(2000, 100, 11);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let last = *arrivals.last().unwrap();
        // 2000 gaps of mean 100µs ≈ 200ms total; expect the right order of
        // magnitude.
        assert!((100_000..400_000).contains(&last), "total {last}µs");
    }

    #[test]
    #[should_panic(expected = "at least one positive weight")]
    fn empty_mixes_are_rejected() {
        Mix::new([(OpKind::Count, 0)]);
    }

    #[test]
    fn multi_tenant_schedules_respect_weights_and_pools() {
        let profiles = [
            TenantProfile {
                weight: 3,
                mix: Mix::scan_heavy(),
                num_docs: 5,
            },
            TenantProfile {
                weight: 1,
                mix: Mix::read_heavy(),
                num_docs: 2,
            },
        ];
        let schedule = multi_tenant_schedule(2, &profiles, 4000, 99);
        assert_eq!(schedule, multi_tenant_schedule(2, &profiles, 4000, 99));
        let heavy = schedule.iter().filter(|o| o.tenant == 0).count();
        // 3:1 weighting → ~3000 of 4000; allow generous slack.
        assert!((2600..3400).contains(&heavy), "got {heavy}");
        for op in &schedule {
            assert!(op.op.doc < profiles[op.tenant].num_docs);
            assert!(op.op.query < 2);
        }
        // Each tenant draws from its *own* mix: the read-heavy tenant never
        // computes, the scan-heavy one never model-checks.
        assert!(schedule
            .iter()
            .filter(|o| o.tenant == 1)
            .all(|o| !matches!(o.op.kind, OpKind::Compute { .. })));
        assert!(schedule
            .iter()
            .filter(|o| o.tenant == 0)
            .all(|o| !matches!(o.op.kind, OpKind::ModelCheck)));
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_tenant_weights_are_rejected() {
        multi_tenant_schedule(
            1,
            &[TenantProfile {
                weight: 0,
                mix: Mix::read_heavy(),
                num_docs: 1,
            }],
            10,
            1,
        );
    }
}
