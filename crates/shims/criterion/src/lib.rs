//! # criterion (shim) — offline stand-in for the `criterion` bench harness
//!
//! The build environment of this workspace has no network access to a crate
//! registry, so the external `criterion` dev-dependency is replaced by this
//! minimal in-workspace shim.  It implements the API subset the `e1`–`e9`
//! benches use — [`Criterion::benchmark_group`], group configuration,
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports
//! mean/min/max wall-clock times per benchmark id on stdout.  Swap this
//! crate for the real `criterion` in `Cargo.toml` once a registry is
//! reachable; no source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; the shim ignores CLI args.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(id.to_string());
        g.bench_with_input(BenchmarkId::new("fn", ""), &(), |b, _| f(b));
        g.finish();
        self
    }
}

/// A benchmark identifier `function/parameter`, as printed in reports.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warm-up: run until the warm-up budget is spent, measuring the mean
        // iteration time to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b, input);
            warm_iters += b.iters.max(1);
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement: `sample_size` samples splitting the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            let mut iters = 0u64;
            while iters < iters_per_sample {
                let mut b = Bencher {
                    elapsed: Duration::ZERO,
                    iters: 0,
                };
                f(&mut b, input);
                total += b.elapsed;
                iters += b.iters.max(1);
            }
            samples.push(total.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{}/{:<50} mean {:>12}  min {:>12}  max {:>12}  ({} samples)",
            self.name,
            id.to_string(),
            format_time(mean),
            format_time(samples[0]),
            format_time(*samples.last().expect("non-empty samples")),
            samples.len(),
        );
        self
    }

    /// Benchmarks a function without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::new(id.to_string(), "");
        self.bench_with_input(id, &(), |b, _| f(b))
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Collects timing for one sample batch.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, preventing result elision.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundles benchmark functions into a runnable group, like the real
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, like the real
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_reports_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("count", 42), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn macros_compose() {
        fn sample_bench(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(shim_group, sample_bench);
        shim_group();
    }

    #[test]
    fn id_display_includes_parameter() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::new("f", "").to_string(), "f");
    }
}
