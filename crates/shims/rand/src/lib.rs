//! # rand (shim) — offline stand-in for the `rand` crate
//!
//! The build environment of this workspace has no network access to a crate
//! registry, so the external `rand` dependency is replaced by this minimal
//! in-workspace shim.  It implements exactly the API subset the workspace
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`] — with a
//! deterministic xoshiro256++ generator, so seeded workloads stay
//! reproducible.  Swap this crate for the real `rand` in `Cargo.toml` once a
//! registry is reachable; no source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the subset of `rand::Rng` used here.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value from an integer range (half-open or
    /// inclusive).  Panics on empty ranges, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.  Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random bits give a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// A seedable generator: the subset of `rand::SeedableRng` used here.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (integer types only).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the real rand does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..100);
            assert!(x < 100);
            let y: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
        }
        // All values of a small range are eventually hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
