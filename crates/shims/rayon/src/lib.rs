//! # rayon (shim) — offline stand-in for the `rayon` crate
//!
//! The build environment of this workspace has no network access to a crate
//! registry, so the external `rayon` dependency is replaced by this minimal
//! in-workspace shim built on `std::thread::scope`.  It provides the subset
//! the workspace uses — [`scope`], [`join`] and the convenience
//! [`par_map`] — with the same data-parallel semantics (no work stealing;
//! one OS thread per chunk, bounded by the available parallelism).  Swap
//! this crate for the real `rayon` in `Cargo.toml` once a registry is
//! reachable; `scope` and `join` are drop-in compatible.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

/// The number of worker threads the shim will use (available parallelism).
///
/// Queried from the OS once and cached: `par_map` is called in tight loops
/// (e.g. once per grammar stratum) and `available_parallelism` is a syscall.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A fork–join scope handing out [`Scope::spawn`], mirroring `rayon::scope`.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the scope waits
    /// for all tasks before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork–join scope: all tasks spawned inside have finished when
/// `scope` returns.  Mirrors `rayon::scope`, on OS threads.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs two closures, potentially in parallel, and returns both results.
/// Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("parallel task panicked"))
    })
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// This is the shim's stand-in for `items.par_iter().map(f).collect()`;
/// it splits the input into one contiguous chunk per worker thread.  Small
/// inputs are mapped serially to avoid spawn overhead.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    scope(|s| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move |_| {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by its chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let mapped = par_map(&items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(mapped, expected);
        // Tiny and empty inputs take the serial path.
        assert_eq!(par_map(&[3u64], |&x| x + 1), vec![4]);
        assert_eq!(par_map::<u64, u64, _>(&[], |&x| x), Vec::<u64>::new());
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn nested_spawns_are_allowed() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}
