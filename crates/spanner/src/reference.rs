//! Brute-force reference evaluation of a spanner on an explicit document.
//!
//! For every candidate span-tuple `t` (every variable is either undefined or
//! some span of the document) the reference evaluator materialises the
//! subword-marked word `m(D, t)` and checks membership in `L(M)`
//! (Proposition 3.3).  This is exponential in `|X|` and quadratic in `|D|`
//! per variable — useless in production but an unimpeachable ground truth
//! for the property-based tests of the evaluation crates.

use crate::marked_word::MarkedWord;
use crate::span::{Span, SpanTuple};
use crate::spanner_automaton::SpannerAutomaton;
use crate::variable::Variable;
use std::collections::BTreeSet;

/// Computes `⟦M⟧(D)` by brute force (see module docs).
///
/// Complexity: `O((d² / 2 + 2)^{|X|} · d · |M|)`; keep `d` and `|X|` small.
pub fn evaluate(automaton: &SpannerAutomaton<u8>, document: &[u8]) -> BTreeSet<SpanTuple> {
    let d = document.len() as u64;
    let num_vars = automaton.num_vars();
    // All possible values for a single variable: ⊥ or a span [i, j⟩.
    let mut choices: Vec<Option<Span>> = vec![None];
    for i in 1..=d + 1 {
        for j in i..=d + 1 {
            choices.push(Some(Span::new(i, j).expect("i <= j")));
        }
    }

    let mut out = BTreeSet::new();
    let mut assignment: Vec<Option<Span>> = vec![None; num_vars];
    enumerate(automaton, document, &choices, &mut assignment, 0, &mut out);
    out
}

fn enumerate(
    automaton: &SpannerAutomaton<u8>,
    document: &[u8],
    choices: &[Option<Span>],
    assignment: &mut Vec<Option<Span>>,
    var: usize,
    out: &mut BTreeSet<SpanTuple>,
) {
    if var == assignment.len() {
        let mut t = SpanTuple::empty(assignment.len());
        for (i, s) in assignment.iter().enumerate() {
            if let Some(s) = s {
                t.set(Variable(i as u8), *s);
            }
        }
        let w = MarkedWord::from_document_and_tuple(document, &t)
            .expect("spans were drawn within the document");
        if automaton.accepts_marked_word(&w) {
            out.insert(t);
        }
        return;
    }
    for &c in choices {
        assignment[var] = c;
        enumerate(automaton, document, choices, assignment, var + 1, out);
    }
    assignment[var] = None;
}

/// Counts `|⟦M⟧(D)|` by brute force (convenience wrapper).
pub fn count(automaton: &SpannerAutomaton<u8>, document: &[u8]) -> usize {
    evaluate(automaton, document).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::figure_2_spanner;

    #[test]
    fn figure_2_on_a_tiny_document() {
        // D = "ca": the only result is the y-branch spanning the single c
        // (the Figure 2 DFA has no transition on the combined set {⊿x, ◁x},
        // so empty x-spans are never extracted).
        let m = figure_2_spanner();
        let results = evaluate(&m, b"ca");
        let rendered: BTreeSet<String> = results
            .iter()
            .map(|t| t.display(m.variables()).to_string())
            .collect();
        let expected: BTreeSet<String> = ["(x ↦ ⊥, y ↦ [1, 2⟩)".to_string()].into_iter().collect();
        assert_eq!(rendered, expected);
    }

    #[test]
    fn empty_results_on_documents_without_a_or_b() {
        // Every accepting path ends with an a/b after the close marker.
        let m = figure_2_spanner();
        assert_eq!(count(&m, b"cccc"), 0);
    }

    #[test]
    fn result_count_grows_with_document_content() {
        let m = figure_2_spanner();
        // On "aab": x-spans are the *non-empty* a/b-blocks followed by another
        // a/b symbol: [1,2⟩, [1,3⟩ and [2,3⟩; no c's, so no y results.
        let results = evaluate(&m, b"aab");
        assert!(results.iter().all(|t| t.get(Variable(1)).is_none()));
        assert_eq!(results.len(), 3);
    }
}
