//! Partial marker sets `Λ ⊆ Γ_X × ℕ` (Section 6.1 of the paper): the
//! "pieces" of span-tuples that single non-terminals of the SLP contribute,
//! together with the right-shift `rs_ℓ`, the composition `⊗_s` and the total
//! order `⪯` that the computation algorithm (Theorem 7.1, appendix D) uses
//! for duplicate-free unions.

use crate::marker::{Marker, MarkerSet};
use std::cmp::Ordering;
use std::fmt;

/// A partial marker set `Λ`: a finite set of `(marker, position)` pairs,
/// stored as a position-sorted run-length list `(position, marker set)`.
///
/// Positions are 1-based, matching the paper's convention that a marker at
/// position `i` sits immediately before the `i`-th terminal (or after the
/// last terminal for position `d + 1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PartialMarkerSet {
    /// Sorted by position; every [`MarkerSet`] is non-empty; positions are
    /// pairwise distinct.
    entries: Vec<(u64, MarkerSet)>,
}

impl PartialMarkerSet {
    /// The empty partial marker set `∅`.
    pub fn empty() -> Self {
        PartialMarkerSet {
            entries: Vec::new(),
        }
    }

    /// Builds a partial marker set from `(position, marker)` pairs (in any
    /// order; duplicates are merged).
    pub fn from_marker_positions(pairs: impl IntoIterator<Item = (u64, Marker)>) -> Self {
        let mut pairs: Vec<(u64, Marker)> = pairs.into_iter().collect();
        pairs.sort_by_key(|&(p, _)| p);
        let mut entries: Vec<(u64, MarkerSet)> = Vec::new();
        for (p, m) in pairs {
            match entries.last_mut() {
                Some((lp, set)) if *lp == p => set.insert(m),
                _ => entries.push((p, MarkerSet::singleton(m))),
            }
        }
        PartialMarkerSet { entries }
    }

    /// Builds a partial marker set from `(position, marker set)` entries (in
    /// any order; empty sets are dropped, equal positions are merged).
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, MarkerSet)>) -> Self {
        let mut raw: Vec<(u64, MarkerSet)> =
            entries.into_iter().filter(|(_, s)| !s.is_empty()).collect();
        raw.sort_by_key(|&(p, _)| p);
        let mut entries: Vec<(u64, MarkerSet)> = Vec::new();
        for (p, s) in raw {
            match entries.last_mut() {
                Some((lp, set)) if *lp == p => *set = set.union(s),
                _ => entries.push((p, s)),
            }
        }
        PartialMarkerSet { entries }
    }

    /// The singleton `{(σ, 1) : σ ∈ set}` — the partial marker set of a
    /// marker-set symbol read right before the first (and only) terminal of
    /// a leaf non-terminal (used for the matrices `M_{T_x}` of Lemma 6.5).
    pub fn at_position_one(set: MarkerSet) -> Self {
        if set.is_empty() {
            PartialMarkerSet::empty()
        } else {
            PartialMarkerSet {
                entries: vec![(1, set)],
            }
        }
    }

    /// The `(position, marker set)` entries, sorted by position.
    pub fn entries(&self) -> impl Iterator<Item = (u64, MarkerSet)> + '_ {
        self.entries.iter().copied()
    }

    /// The number of `(marker, position)` pairs `|Λ|` (at most `2·|X|`).
    pub fn len(&self) -> usize {
        self.entries.iter().map(|(_, s)| s.len()).sum()
    }

    /// `true` if `Λ = ∅`.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct positions carrying at least one marker.
    pub fn num_positions(&self) -> usize {
        self.entries.len()
    }

    /// The largest position in the set (`0` if empty).
    pub fn max_position(&self) -> u64 {
        self.entries.last().map(|&(p, _)| p).unwrap_or(0)
    }

    /// The marker set at a given position (empty if none).
    pub fn at(&self, position: u64) -> MarkerSet {
        match self.entries.binary_search_by_key(&position, |&(p, _)| p) {
            Ok(i) => self.entries[i].1,
            Err(_) => MarkerSet::EMPTY,
        }
    }

    /// `Λ` is *compatible* with a document of length `d` if all positions
    /// are at most `d + 1` (Section 6.1).
    pub fn is_compatible_with(&self, document_len: u64) -> bool {
        self.max_position() <= document_len + 1
    }

    /// The `ℓ`-right-shift `rs_ℓ(Λ) = {(σ, k + ℓ) : (σ, k) ∈ Λ}`.
    pub fn right_shift(&self, shift: u64) -> Self {
        PartialMarkerSet {
            entries: self.entries.iter().map(|&(p, s)| (p + shift, s)).collect(),
        }
    }

    /// The composition `Λ ⊗_s Λ' = Λ ∪ rs_s(Λ')` (Section 6.2).
    ///
    /// In the evaluation algorithms `Λ` only has positions `≤ s` (it stems
    /// from a non-tail-spanning marked word for the left child of length
    /// `s`), so the concatenation is a cheap append; the general merging
    /// case is still handled correctly.
    pub fn compose(&self, shift: u64, right: &PartialMarkerSet) -> Self {
        if right.is_empty() {
            return self.clone();
        }
        let shifted = right.right_shift(shift);
        if self.is_empty() {
            return shifted;
        }
        if self.max_position() < shifted.entries[0].0 {
            // Fast path: strictly separated halves (the only case the
            // evaluation algorithms produce).
            let mut entries = self.entries.clone();
            entries.extend_from_slice(&shifted.entries);
            return PartialMarkerSet { entries };
        }
        PartialMarkerSet::from_entries(self.entries().chain(shifted.entries()))
    }

    /// Heap bytes owned by this partial marker set (the backing entry
    /// buffer), for cache size accounting.  The inline `size_of::<Self>()`
    /// part is accounted by whichever container holds the value.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, MarkerSet)>()
    }

    /// Expands into the sequence of `(position, marker)` pairs in the
    /// paper's `⪯`-order on `Γ_X × ℕ` (position-major, marker-minor).
    pub fn expand(&self) -> Vec<(u64, Marker)> {
        let mut out = Vec::with_capacity(self.len());
        for &(p, s) in &self.entries {
            for m in s.iter() {
                out.push((p, m));
            }
        }
        out
    }
}

/// The paper's total order `⪯` on partial marker sets (appendix D): compare
/// the expanded `(position, marker)` sequences at the leftmost position
/// where they differ; if one sequence is a *prefix* of the other, the prefix
/// is the **larger** one.  This ordering is compatible with `⊗_s`
/// composition, which is what makes merge-based duplicate elimination in the
/// computation algorithm sound.
impl Ord for PartialMarkerSet {
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.expand();
        let b = other.expand();
        for (x, y) in a.iter().zip(b.iter()) {
            let c = (x.0, marker_rank(x.1)).cmp(&(y.0, marker_rank(y.1)));
            if c != Ordering::Equal {
                return c;
            }
        }
        // One is a prefix of the other: the prefix is larger.
        b.len().cmp(&a.len())
    }
}

impl PartialOrd for PartialMarkerSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn marker_rank(m: Marker) -> u32 {
    match m {
        Marker::Open(v) => 2 * v.0 as u32,
        Marker::Close(v) => 2 * v.0 as u32 + 1,
    }
}

impl fmt::Display for PartialMarkerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (p, m) in self.expand() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "({m}, {p})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::Variable;

    fn open(v: u8) -> Marker {
        Marker::Open(Variable(v))
    }
    fn close(v: u8) -> Marker {
        Marker::Close(Variable(v))
    }

    #[test]
    fn construction_merges_positions() {
        let l = PartialMarkerSet::from_marker_positions(vec![
            (4, open(0)),
            (2, open(1)),
            (4, close(1)),
        ]);
        assert_eq!(l.num_positions(), 2);
        assert_eq!(l.len(), 3);
        assert_eq!(l.max_position(), 4);
        assert!(l.at(4).contains(open(0)));
        assert!(l.at(4).contains(close(1)));
        assert!(l.at(2).contains(open(1)));
        assert!(l.at(3).is_empty());
    }

    #[test]
    fn example_6_1_composition() {
        // Λ1 = {(⊿y,2), (⊿z,4), (⊿x,4), (◁z,6)}, Λ2 = {(◁x,2), (◁y,4)},
        // with x=0, y=1, z=2; |D1| = 6.
        let l1 = PartialMarkerSet::from_marker_positions(vec![
            (2, open(1)),
            (4, open(2)),
            (4, open(0)),
            (6, close(2)),
        ]);
        let l2 = PartialMarkerSet::from_marker_positions(vec![(2, close(0)), (4, close(1))]);
        let combined = l1.compose(6, &l2);
        let expected = PartialMarkerSet::from_marker_positions(vec![
            (2, open(1)),
            (4, open(2)),
            (4, open(0)),
            (6, close(2)),
            (8, close(0)),
            (10, close(1)),
        ]);
        assert_eq!(combined, expected);
        assert_eq!(combined.len(), 6);
        assert!(combined.is_compatible_with(10));
        assert!(!combined.is_compatible_with(8));
    }

    #[test]
    fn compose_with_empty_sides() {
        let l = PartialMarkerSet::from_marker_positions(vec![(1, open(0))]);
        let e = PartialMarkerSet::empty();
        assert_eq!(l.compose(5, &e), l);
        assert_eq!(e.compose(3, &l).max_position(), 4);
        assert_eq!(e.compose(0, &e), e);
    }

    #[test]
    fn compose_merges_overlapping_positions() {
        // General (non-evaluation) case: overlapping positions merge.
        let l1 = PartialMarkerSet::from_marker_positions(vec![(3, open(0))]);
        let l2 = PartialMarkerSet::from_marker_positions(vec![(1, close(0))]);
        let c = l1.compose(2, &l2);
        assert_eq!(c.num_positions(), 1);
        assert_eq!(c.len(), 2);
        assert!(c.at(3).contains(open(0)) && c.at(3).contains(close(0)));
    }

    #[test]
    fn right_shift_is_injective_on_positions() {
        let l = PartialMarkerSet::from_marker_positions(vec![(1, open(0)), (5, close(0))]);
        let s = l.right_shift(7);
        assert_eq!(s.expand(), vec![(8, open(0)), (12, close(0))]);
    }

    #[test]
    fn lemma_6_9_unique_decomposition() {
        // ΛB ⊗_s ΛC = Λ'B ⊗_s Λ'C  ⇔  ΛB = Λ'B and ΛC = Λ'C, provided both
        // ΛB, Λ'B only use positions ≤ s.
        let s = 5;
        let candidates_b = [
            PartialMarkerSet::empty(),
            PartialMarkerSet::from_marker_positions(vec![(1, open(0))]),
            PartialMarkerSet::from_marker_positions(vec![(5, open(0))]),
            PartialMarkerSet::from_marker_positions(vec![(2, open(0)), (4, close(0))]),
        ];
        let candidates_c = [
            PartialMarkerSet::empty(),
            PartialMarkerSet::from_marker_positions(vec![(1, close(0))]),
            PartialMarkerSet::from_marker_positions(vec![(3, open(1)), (4, close(1))]),
        ];
        let mut seen = std::collections::HashSet::new();
        for b in &candidates_b {
            for c in &candidates_c {
                let composed = b.compose(s, c);
                assert!(
                    seen.insert(composed.clone()),
                    "composition is not injective for {b} ⊗ {c}"
                );
            }
        }
    }

    #[test]
    fn order_is_total_and_prefix_is_larger() {
        let empty = PartialMarkerSet::empty();
        let a = PartialMarkerSet::from_marker_positions(vec![(1, open(0))]);
        let ab = PartialMarkerSet::from_marker_positions(vec![(1, open(0)), (4, close(0))]);
        let b = PartialMarkerSet::from_marker_positions(vec![(2, open(0))]);
        // The empty set is a prefix of everything, so it is the largest.
        assert!(empty > a);
        assert!(empty > ab);
        // A proper prefix is larger than its extension.
        assert!(a > ab);
        // Leftmost difference decides otherwise.
        assert!(a < b);
        assert!(ab < b);
        // Consistency with equality.
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn order_is_compatible_with_composition() {
        // ΛB ≺ Λ'B  ⇒  ΛB ⊗ ΛC ≺ Λ'B ⊗ Λ'C  (appendix D key property).
        let s = 6;
        let b1 = PartialMarkerSet::from_marker_positions(vec![(2, open(0))]);
        let b2 = PartialMarkerSet::from_marker_positions(vec![(3, open(0))]);
        let c1 = PartialMarkerSet::from_marker_positions(vec![(1, close(0))]);
        let c2 = PartialMarkerSet::from_marker_positions(vec![(4, close(0))]);
        for c_left in [&c1, &c2] {
            for c_right in [&c1, &c2] {
                assert!(b1.compose(s, c_left) < b2.compose(s, c_right));
            }
        }
        // Equal left halves: the right halves decide.
        assert!(b1.compose(s, &c1) < b1.compose(s, &c2));
        // Prefix case: b1 is a prefix of b1 ∪ {(5, ◁x)}.
        let b1_ext = PartialMarkerSet::from_marker_positions(vec![(2, open(0)), (5, close(0))]);
        assert!(b1.compose(s, &c1) > b1_ext.compose(s, &c1));
    }

    #[test]
    fn display_lists_pairs() {
        let l = PartialMarkerSet::from_marker_positions(vec![(2, open(1)), (4, close(1))]);
        let txt = l.to_string();
        assert!(txt.contains("2"));
        assert!(txt.contains("4"));
    }
}
