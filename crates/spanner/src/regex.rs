//! Variable regexes ("regex formulas"): a concise, user-facing syntax for
//! regular spanners, compiled to [`SpannerAutomaton`]s.
//!
//! # Syntax
//!
//! ```text
//! pattern   := alternation
//! alternation := concat ('|' concat)*
//! concat    := repeat*
//! repeat    := atom ('*' | '+' | '?')*
//! atom      := literal | '.' | class | '(' pattern ')' | capture
//! capture   := name '{' pattern '}'          e.g.  x{ a+ }
//! class     := '[' char-or-range+ ']'        e.g.  [a-z0-9_]
//! literal   := any byte except metacharacters, or '\' escaped
//! ```
//!
//! Unescaped whitespace in a pattern is *insignificant* (layout only, as in
//! verbose regex dialects); write `\ ` (escaped space) to match a literal
//! space.  `.` and negated character classes are interpreted relative to the
//! `alphabet` passed to [`compile`].  Each capture `x{e}` opens the span of
//! variable `x` before `e` and closes it after `e`; variables are registered
//! in order of first appearance and may be used only once per pattern
//! (matching the subword-marked-word condition that each marker occurs at
//! most once).
//!
//! # From sequences of markers to marker *sets*
//!
//! The Thompson construction naturally produces automata whose marker
//! transitions carry a *single* marker each; nested or adjacent captures
//! yield runs of consecutive marker transitions.  Such automata are the
//! paper's plain variable-set automata.  [`compile`] finishes with the
//! VA → "extended VA" conversion (Section 3.3): runs of ε/marker transitions
//! are contracted into single transitions labelled by the *set* of markers
//! read, which is the representation every evaluation algorithm in this
//! workspace expects.  The conversion is exponential only in `|X|`, which is
//! treated as small (combined complexity), never in the document.

use crate::error::SpannerError;
use crate::marker::{Marker, MarkerSet};
use crate::spanner_automaton::SpannerAutomaton;
use crate::symbol::MarkedSymbol;
use crate::variable::VariableSet;
use spanner_automata::nfa::{Label, Nfa, StateId};
use std::collections::{HashMap, HashSet};

/// A parsed variable-regex AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty word ε.
    Epsilon,
    /// A single literal byte.
    Literal(u8),
    /// Any byte of the document alphabet (the regex `.`).
    Any,
    /// Any byte of the given (sorted) set.
    Class(Vec<u8>),
    /// Any alphabet byte *not* in the given (sorted) set (`[^…]`).
    NegatedClass(Vec<u8>),
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
    /// One or more repetitions.
    Plus(Box<Ast>),
    /// Zero or one occurrence.
    Opt(Box<Ast>),
    /// A variable capture `x{e}`.
    Capture(String, Box<Ast>),
}

/// Parses a variable regex into an AST.
pub fn parse(pattern: &str) -> Result<Ast, SpannerError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(ast)
}

/// Compiles a variable regex into a (non-deterministic) spanner automaton
/// over the given document alphabet.  Returns the automaton; its
/// [`VariableSet`] lists the captures in order of first appearance.
pub fn compile(pattern: &str, alphabet: &[u8]) -> Result<SpannerAutomaton<u8>, SpannerError> {
    let ast = parse(pattern)?;
    compile_ast(&ast, alphabet)
}

/// Compiles a variable regex and determinises the result (what the
/// enumeration algorithm of Theorem 8.10 needs).
pub fn compile_deterministic(
    pattern: &str,
    alphabet: &[u8],
) -> Result<SpannerAutomaton<u8>, SpannerError> {
    Ok(compile(pattern, alphabet)?.determinized())
}

/// Compiles an already-parsed AST (see [`compile`]).
pub fn compile_ast(ast: &Ast, alphabet: &[u8]) -> Result<SpannerAutomaton<u8>, SpannerError> {
    // Collect capture names in order of first appearance and reject reuse.
    let mut vars = VariableSet::new();
    let mut seen: HashSet<String> = HashSet::new();
    collect_captures(ast, &mut vars, &mut seen)?;

    // Thompson construction over single markers + ε.
    let mut thompson: Nfa<ThompsonSymbol> = Nfa::with_states(1);
    let alphabet: Vec<u8> = {
        let mut a = alphabet.to_vec();
        a.sort();
        a.dedup();
        a
    };
    let (start, end) = build_thompson(ast, &mut thompson, &alphabet, &vars)?;
    thompson.set_start(start);
    thompson.set_accepting(end, true);

    // Contract ε/marker runs into marker-set transitions.
    let nfa = contract_markers(&thompson);
    SpannerAutomaton::new(nfa, vars)
}

fn collect_captures(
    ast: &Ast,
    vars: &mut VariableSet,
    seen: &mut HashSet<String>,
) -> Result<(), SpannerError> {
    collect_captures_inner(ast, vars, seen, false)
}

fn collect_captures_inner(
    ast: &Ast,
    vars: &mut VariableSet,
    seen: &mut HashSet<String>,
    under_repetition: bool,
) -> Result<(), SpannerError> {
    match ast {
        Ast::Capture(name, inner) => {
            if under_repetition {
                // A capture under * or + could emit the same marker at two
                // positions, which falls outside the subword-marked-word
                // formalism (Definition 3.1: every marker occurs at most
                // once).  Reject it up front.
                return Err(SpannerError::Parse {
                    offset: 0,
                    message: format!(
                        "capture `{name}` occurs under '*' or '+'; a span variable can be bound at most once per match"
                    ),
                });
            }
            if !seen.insert(name.clone()) {
                return Err(SpannerError::DuplicateVariable { name: name.clone() });
            }
            vars.add(name.clone())?;
            collect_captures_inner(inner, vars, seen, under_repetition)
        }
        Ast::Concat(parts) | Ast::Alt(parts) => {
            for p in parts {
                collect_captures_inner(p, vars, seen, under_repetition)?;
            }
            Ok(())
        }
        Ast::Star(inner) | Ast::Plus(inner) => collect_captures_inner(inner, vars, seen, true),
        Ast::Opt(inner) => collect_captures_inner(inner, vars, seen, under_repetition),
        Ast::Epsilon | Ast::Literal(_) | Ast::Any | Ast::Class(_) | Ast::NegatedClass(_) => Ok(()),
    }
}

/// Symbols of the intermediate Thompson automaton: a byte or a single marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum ThompsonSymbol {
    Byte(u8),
    Mark(Marker),
}

/// Builds the Thompson fragment for `ast`, returning its (start, end) states.
fn build_thompson(
    ast: &Ast,
    nfa: &mut Nfa<ThompsonSymbol>,
    alphabet: &[u8],
    vars: &VariableSet,
) -> Result<(StateId, StateId), SpannerError> {
    let fragment = match ast {
        Ast::Epsilon => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_epsilon(s, e);
            (s, e)
        }
        Ast::Literal(b) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_transition(s, ThompsonSymbol::Byte(*b), e);
            (s, e)
        }
        Ast::Any => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for &b in alphabet {
                nfa.add_transition(s, ThompsonSymbol::Byte(b), e);
            }
            (s, e)
        }
        Ast::Class(bytes) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for &b in bytes {
                nfa.add_transition(s, ThompsonSymbol::Byte(b), e);
            }
            (s, e)
        }
        Ast::NegatedClass(bytes) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for &b in alphabet {
                if !bytes.contains(&b) {
                    nfa.add_transition(s, ThompsonSymbol::Byte(b), e);
                }
            }
            (s, e)
        }
        Ast::Concat(parts) => {
            if parts.is_empty() {
                return build_thompson(&Ast::Epsilon, nfa, alphabet, vars);
            }
            let mut first: Option<StateId> = None;
            let mut prev_end: Option<StateId> = None;
            for p in parts {
                let (s, e) = build_thompson(p, nfa, alphabet, vars)?;
                if let Some(pe) = prev_end {
                    nfa.add_epsilon(pe, s);
                } else {
                    first = Some(s);
                }
                prev_end = Some(e);
            }
            (first.expect("non-empty"), prev_end.expect("non-empty"))
        }
        Ast::Alt(parts) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for p in parts {
                let (ps, pe) = build_thompson(p, nfa, alphabet, vars)?;
                nfa.add_epsilon(s, ps);
                nfa.add_epsilon(pe, e);
            }
            (s, e)
        }
        Ast::Star(inner) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (is, ie) = build_thompson(inner, nfa, alphabet, vars)?;
            nfa.add_epsilon(s, e);
            nfa.add_epsilon(s, is);
            nfa.add_epsilon(ie, is);
            nfa.add_epsilon(ie, e);
            (s, e)
        }
        Ast::Plus(inner) => {
            let (is, ie) = build_thompson(inner, nfa, alphabet, vars)?;
            let e = nfa.add_state();
            nfa.add_epsilon(ie, is);
            nfa.add_epsilon(ie, e);
            (is, e)
        }
        Ast::Opt(inner) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (is, ie) = build_thompson(inner, nfa, alphabet, vars)?;
            nfa.add_epsilon(s, is);
            nfa.add_epsilon(ie, e);
            nfa.add_epsilon(s, e);
            (s, e)
        }
        Ast::Capture(name, inner) => {
            let v = vars.get(name).expect("captures were collected beforehand");
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (is, ie) = build_thompson(inner, nfa, alphabet, vars)?;
            nfa.add_transition(s, ThompsonSymbol::Mark(Marker::Open(v)), is);
            nfa.add_transition(ie, ThompsonSymbol::Mark(Marker::Close(v)), e);
            (s, e)
        }
    };
    Ok(fragment)
}

/// Contracts runs of ε- and single-marker transitions into single
/// marker-*set* transitions (VA → extended VA), producing the automaton over
/// `Σ ∪ P(Γ_X)` that the evaluation algorithms expect.
fn contract_markers(thompson: &Nfa<ThompsonSymbol>) -> Nfa<MarkedSymbol<u8>> {
    let q = thompson.num_states();
    let mut out: Nfa<MarkedSymbol<u8>> = Nfa::with_states(q);
    out.set_start(thompson.start());

    // Plain ε-closure for terminal transitions and acceptance.
    for p in 0..q {
        let closure = thompson.epsilon_closure(&std::collections::BTreeSet::from([p]));
        if closure.iter().any(|&s| thompson.is_accepting(s)) {
            out.set_accepting(p, true);
        }
        let mut added: HashSet<(u8, StateId)> = HashSet::new();
        for &r in &closure {
            for &(l, t) in thompson.transitions_from(r) {
                if let Label::Symbol(ThompsonSymbol::Byte(b)) = l {
                    if added.insert((b, t)) {
                        out.add_transition(p, MarkedSymbol::Terminal(b), t);
                    }
                }
            }
        }
    }

    // Marker-set reachability: from p, following ε and marker transitions
    // and accumulating the set of markers read (each marker at most once),
    // which states are reachable with which non-empty marker set?
    for p in 0..q {
        let mut reached: HashMap<(StateId, MarkerSet), ()> = HashMap::new();
        let mut stack: Vec<(StateId, MarkerSet)> = vec![(p, MarkerSet::EMPTY)];
        let mut visited: HashSet<(StateId, MarkerSet)> = HashSet::new();
        visited.insert((p, MarkerSet::EMPTY));
        while let Some((s, set)) = stack.pop() {
            for &(l, t) in thompson.transitions_from(s) {
                let next_set = match l {
                    Label::Epsilon => set,
                    Label::Symbol(ThompsonSymbol::Mark(m)) => {
                        if set.contains(m) {
                            continue; // a marker may be read at most once
                        }
                        let mut s2 = set;
                        s2.insert(m);
                        s2
                    }
                    Label::Symbol(ThompsonSymbol::Byte(_)) => continue,
                };
                if visited.insert((t, next_set)) {
                    if !next_set.is_empty() {
                        reached.insert((t, next_set), ());
                    }
                    stack.push((t, next_set));
                }
            }
        }
        let mut dedup: HashSet<(StateId, MarkerSet)> = HashSet::new();
        for (t, set) in reached.keys() {
            if dedup.insert((*t, *set)) {
                out.add_transition(p, MarkedSymbol::Markers(*set), *t);
            }
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> SpannerError {
        SpannerError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\n')) {
            self.pos += 1;
        }
    }

    fn alternation(&mut self) -> Result<Ast, SpannerError> {
        let mut parts = vec![self.concat()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.bump();
                parts.push(self.concat()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Ast::Alt(parts)
        })
    }

    fn concat(&mut self) -> Result<Ast, SpannerError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(b'|') | Some(b')') | Some(b'}') => break,
                _ => parts.push(self.repeat()?),
            }
        }
        Ok(match parts.len() {
            0 => Ast::Epsilon,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, SpannerError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Ast::Opt(Box::new(atom));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn atom(&mut self) -> Result<Ast, SpannerError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of pattern")),
            Some(b'(') => {
                self.bump();
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class(),
            Some(b'.') => {
                self.bump();
                Ok(Ast::Any)
            }
            Some(b'\\') => {
                self.bump();
                match self.bump() {
                    Some(c) => Ok(Ast::Literal(unescape(c))),
                    None => Err(self.error("dangling escape")),
                }
            }
            Some(c) if is_meta(c) => Err(self.error("unexpected metacharacter")),
            Some(_) => {
                // Either a capture `name{...}` or a literal byte.
                if let Some(capture) = self.try_capture()? {
                    Ok(capture)
                } else {
                    let c = self.bump().expect("peeked");
                    Ok(Ast::Literal(c))
                }
            }
        }
    }

    fn try_capture(&mut self) -> Result<Option<Ast>, SpannerError> {
        let save = self.pos;
        // A capture starts with an identifier immediately followed by '{'.
        if !self
            .peek()
            .map(|c| c.is_ascii_alphabetic() || c == b'_')
            .unwrap_or(false)
        {
            return Ok(None);
        }
        let start = self.pos;
        while self
            .peek()
            .map(|c| c.is_ascii_alphanumeric() || c == b'_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self.peek() != Some(b'{') {
            self.pos = save;
            return Ok(None);
        }
        let name = String::from_utf8(self.bytes[start..self.pos].to_vec())
            .expect("identifier bytes are ASCII");
        self.bump(); // '{'
        let inner = self.alternation()?;
        if self.bump() != Some(b'}') {
            return Err(self.error("expected '}' closing a capture"));
        }
        Ok(Some(Ast::Capture(name, Box::new(inner))))
    }

    fn class(&mut self) -> Result<Ast, SpannerError> {
        self.bump(); // '['
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated character class")),
                Some(b']') => break,
                Some(b'\\') => match self.bump() {
                    Some(c) => bytes.push(unescape(c)),
                    None => return Err(self.error("dangling escape in class")),
                },
                Some(c) => {
                    if self.peek() == Some(b'-')
                        && self
                            .bytes
                            .get(self.pos + 1)
                            .copied()
                            .map(|n| n != b']')
                            .unwrap_or(false)
                    {
                        self.bump(); // '-'
                        let hi = self.bump().expect("checked above");
                        if hi < c {
                            return Err(self.error("descending range in character class"));
                        }
                        bytes.extend(c..=hi);
                    } else {
                        bytes.push(c);
                    }
                }
            }
        }
        bytes.sort();
        bytes.dedup();
        Ok(if negated {
            Ast::NegatedClass(bytes)
        } else {
            Ast::Class(bytes)
        })
    }
}

fn is_meta(c: u8) -> bool {
    matches!(
        c,
        b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'*' | b'+' | b'?' | b'|' | b'.' | b'\\'
    )
}

fn unescape(c: u8) -> u8 {
    match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::span::{Span, SpanTuple};

    fn eval(pattern: &str, alphabet: &[u8], doc: &[u8]) -> Vec<String> {
        let m = compile(pattern, alphabet).unwrap();
        reference::evaluate(&m, doc)
            .iter()
            .map(|t| t.display(m.variables()).to_string())
            .collect()
    }

    #[test]
    fn parses_basic_constructs() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal(b'a'), Ast::Literal(b'b')])
        );
        assert!(matches!(parse("a|b").unwrap(), Ast::Alt(_)));
        assert!(matches!(parse("a*").unwrap(), Ast::Star(_)));
        assert!(matches!(parse("(ab)+").unwrap(), Ast::Plus(_)));
        assert!(matches!(parse("x{a}").unwrap(), Ast::Capture(_, _)));
        assert!(parse("a)").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("[a-").is_err());
        assert!(parse("x{a").is_err());
    }

    #[test]
    fn simple_capture_extracts_spans() {
        // All occurrences of "b+" as x, anywhere in the document.
        let shown = eval(".*x{b+}.*", b"ab", b"abba");
        assert_eq!(shown, vec!["(x ↦ [2, 3⟩)", "(x ↦ [2, 4⟩)", "(x ↦ [3, 4⟩)"]);
    }

    #[test]
    fn two_variables_and_order() {
        // x captures an a-block, y captures a following b-block.
        let m = compile(".*x{a+}y{b+}.*", b"ab").unwrap();
        assert_eq!(m.num_vars(), 2);
        let results = reference::evaluate(&m, b"aab");
        // x and y are always defined and adjacent.
        for t in &results {
            let x = t.get(m.variables().get("x").unwrap()).unwrap();
            let y = t.get(m.variables().get("y").unwrap()).unwrap();
            assert_eq!(x.end, y.start);
        }
        assert_eq!(results.len(), 2); // x=[1,3⟩ or [2,3⟩, y=[3,4⟩
    }

    #[test]
    fn adjacent_markers_become_sets() {
        // Nested captures: both open markers sit at the same position, so the
        // compiled automaton must read them as one marker-set symbol.
        let m = compile("x{y{a}b}", b"ab").unwrap();
        let results = reference::evaluate(&m, b"ab");
        assert_eq!(results.len(), 1);
        let t = results.iter().next().unwrap();
        assert_eq!(
            t.get(m.variables().get("x").unwrap()),
            Some(Span::new(1, 3).unwrap())
        );
        assert_eq!(
            t.get(m.variables().get("y").unwrap()),
            Some(Span::new(1, 2).unwrap())
        );
    }

    #[test]
    fn optional_capture_gives_undefined_variables() {
        let m = compile("(x{a})?b", b"ab").unwrap();
        let results = reference::evaluate(&m, b"b");
        assert_eq!(results.len(), 1);
        assert!(results.iter().next().unwrap().is_empty());
        let results = reference::evaluate(&m, b"ab");
        assert_eq!(results.len(), 1);
        assert_eq!(
            results
                .iter()
                .next()
                .unwrap()
                .get(m.variables().get("x").unwrap()),
            Some(Span::new(1, 2).unwrap())
        );
    }

    #[test]
    fn character_classes_and_dot() {
        let m = compile("x{[0-9]+}", b"a0123b").unwrap();
        let results = reference::evaluate(&m, b"042");
        assert_eq!(results.len(), 1);
        let shown = eval(".*x{[ab]}.*", b"abc", b"cab");
        assert_eq!(shown, vec!["(x ↦ [2, 3⟩)", "(x ↦ [3, 4⟩)"]);
    }

    #[test]
    fn negated_class_uses_the_alphabet() {
        let m = compile("x{[^,]+},.*", b"ab,").unwrap();
        let results = reference::evaluate(&m, b"ab,ab");
        assert_eq!(results.len(), 1);
        assert_eq!(
            results
                .iter()
                .next()
                .unwrap()
                .get(m.variables().get("x").unwrap()),
            Some(Span::new(1, 3).unwrap())
        );
    }

    #[test]
    fn duplicate_captures_are_rejected() {
        assert!(matches!(
            compile("x{a}x{b}", b"ab"),
            Err(SpannerError::DuplicateVariable { .. })
        ));
    }

    #[test]
    fn empty_capture_of_empty_word() {
        let m = compile("a x{} b", b"ab").unwrap();
        let results = reference::evaluate(&m, b"ab");
        assert_eq!(results.len(), 1);
        assert_eq!(
            results
                .iter()
                .next()
                .unwrap()
                .get(m.variables().get("x").unwrap()),
            Some(Span::new(2, 2).unwrap())
        );
    }

    #[test]
    fn boolean_pattern_without_captures() {
        let m = compile("(a|b)*abb", b"ab").unwrap();
        assert_eq!(m.num_vars(), 0);
        let results = reference::evaluate(&m, b"aabb");
        assert_eq!(results.len(), 1); // the empty tuple
        let results = reference::evaluate(&m, b"aab");
        assert_eq!(results.len(), 0);
    }

    #[test]
    fn determinised_compilation_agrees() {
        let pattern = ".*x{a+b}.*";
        let m = compile(pattern, b"ab").unwrap();
        let d = compile_deterministic(pattern, b"ab").unwrap();
        assert!(d.is_deterministic());
        let doc = b"aababb";
        assert_eq!(reference::evaluate(&m, doc), reference::evaluate(&d, doc));
        let mut t = SpanTuple::empty(1);
        t.set(m.variables().get("x").unwrap(), Span::new(4, 6).unwrap());
        assert_eq!(m.matches(doc, &t).unwrap(), d.matches(doc, &t).unwrap());
    }
}

#[cfg(test)]
mod repetition_tests {
    use super::*;

    #[test]
    fn captures_under_repetition_are_rejected() {
        assert!(matches!(
            compile("(x{a})*b", b"ab"),
            Err(SpannerError::Parse { .. })
        ));
        assert!(matches!(
            compile("(x{a})+", b"ab"),
            Err(SpannerError::Parse { .. })
        ));
        // Under '?' a capture is fine (it fires at most once).
        assert!(compile("(x{a})?b", b"ab").is_ok());
    }
}
