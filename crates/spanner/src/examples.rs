//! The paper's example spanner: the DFA of Figure 2.

use crate::marker::{Marker, MarkerSet};
use crate::spanner_automaton::SpannerAutomaton;
use crate::symbol::MarkedSymbol;
use crate::variable::VariableSet;
use spanner_automata::nfa::Nfa;

/// The DFA of Figure 2 of the paper: a `({a,b,c}, {x, y})`-spanner with six
/// states (paper states `1..6` are ids `0..5` here), start state `1`/`0` and
/// accepting state `6`/`5`.
///
/// Structure (paper numbering):
///
/// * state 1: `Σ` self-loop, `{⊿x} → 2`, `{⊿y} → 4`;
/// * x-branch: `2 --a,b--> 2`, `2 --{◁x}--> 3`;
/// * y-branch: `4 --c--> 5`, `5 --c--> 5`, `5 --{◁y}--> 3`;
/// * `3 --a,b--> 6`, state 6: `Σ` self-loop, accepting.
///
/// In words: the spanner extracts either an `(a|b)*`-span for `x` or a
/// `c⁺`-span for `y`, provided the span is followed by at least one `a` or
/// `b`.  This is consistent with every use of the automaton in the paper
/// (Section 1.4 and Example 8.2 / Figure 4).
pub fn figure_2_spanner() -> SpannerAutomaton<u8> {
    let variables = VariableSet::from_names(["x", "y"]).expect("two variables");
    let x = variables.get("x").expect("x registered");
    let y = variables.get("y").expect("y registered");

    let open_x = MarkedSymbol::Markers(MarkerSet::singleton(Marker::Open(x)));
    let close_x = MarkedSymbol::Markers(MarkerSet::singleton(Marker::Close(x)));
    let open_y = MarkedSymbol::Markers(MarkerSet::singleton(Marker::Open(y)));
    let close_y = MarkedSymbol::Markers(MarkerSet::singleton(Marker::Close(y)));
    let term = MarkedSymbol::Terminal;

    // Paper states 1..6 = ids 0..5.
    let mut nfa: Nfa<MarkedSymbol<u8>> = Nfa::with_states(6);
    for c in [b'a', b'b', b'c'] {
        nfa.add_transition(0, term(c), 0); // 1 --Σ--> 1
        nfa.add_transition(5, term(c), 5); // 6 --Σ--> 6
    }
    nfa.add_transition(0, open_x, 1); // 1 --⊿x--> 2
    for c in [b'a', b'b'] {
        nfa.add_transition(1, term(c), 1); // 2 --a,b--> 2
        nfa.add_transition(2, term(c), 5); // 3 --a,b--> 6
    }
    nfa.add_transition(1, close_x, 2); // 2 --◁x--> 3
    nfa.add_transition(0, open_y, 3); // 1 --⊿y--> 4
    nfa.add_transition(3, term(b'c'), 4); // 4 --c--> 5
    nfa.add_transition(4, term(b'c'), 4); // 5 --c--> 5
    nfa.add_transition(4, close_y, 2); // 5 --◁y--> 3
    nfa.set_accepting(5, true);

    SpannerAutomaton::new(nfa, variables).expect("Figure 2 automaton is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marked_word::MarkedWord;
    use crate::partial::PartialMarkerSet;
    use crate::variable::Variable;

    #[test]
    fn figure_2_shape() {
        let m = figure_2_spanner();
        assert_eq!(m.num_states(), 6);
        // 6 Σ-loop arcs + 4 marker arcs + 2+2 a,b arcs + 2 c arcs = 16.
        assert_eq!(m.num_transitions(), 16);
        assert!(m.is_deterministic());
        assert_eq!(m.nfa().accepting_states(), vec![5]);
        assert_eq!(m.nfa().start(), 0);
    }

    #[test]
    fn example_8_2_marked_word_is_accepted() {
        // m(D, Λ) = aab ⊿y cc ◁y aabaa for D = aabccaabaa, Λ = {(⊿y,4),(◁y,6)}.
        let m = figure_2_spanner();
        let markers = PartialMarkerSet::from_marker_positions(vec![
            (4, Marker::Open(Variable(1))),
            (6, Marker::Close(Variable(1))),
        ]);
        let w = MarkedWord::from_document_and_markers(b"aabccaabaa", &markers).unwrap();
        assert!(m.accepts_marked_word(&w));
        // Dropping the closing marker must be rejected.
        let bad = PartialMarkerSet::from_marker_positions(vec![(4, Marker::Open(Variable(1)))]);
        let w = MarkedWord::from_document_and_markers(b"aabccaabaa", &bad).unwrap();
        assert!(!m.accepts_marked_word(&w));
    }

    #[test]
    fn section_1_4_marked_word_is_accepted() {
        // aabcca ⊿x aba ◁x a  i.e. x = [7, 10⟩ in aabccaabaa.
        let m = figure_2_spanner();
        let markers = PartialMarkerSet::from_marker_positions(vec![
            (7, Marker::Open(Variable(0))),
            (10, Marker::Close(Variable(0))),
        ]);
        let w = MarkedWord::from_document_and_markers(b"aabccaabaa", &markers).unwrap();
        assert!(m.accepts_marked_word(&w));
    }

    #[test]
    fn unmarked_documents_are_never_accepted() {
        let m = figure_2_spanner();
        for doc in [&b"aabccaabaa"[..], b"abc", b"cccc", b"a"] {
            let w = MarkedWord::unmarked(doc);
            assert!(!m.accepts_marked_word(&w), "doc {:?}", doc);
        }
    }

    #[test]
    fn the_spanner_is_non_tail_spanning() {
        // Any accepted word must end with at least one a/b *after* the close
        // marker, so no accepted word ends in a marker set.  Spot-check: a
        // close marker at the very end is rejected.
        let m = figure_2_spanner();
        let markers = PartialMarkerSet::from_marker_positions(vec![
            (7, Marker::Open(Variable(0))),
            (11, Marker::Close(Variable(0))),
        ]);
        let w = MarkedWord::from_document_and_markers(b"aabccaabaa", &markers).unwrap();
        assert!(!m.accepts_marked_word(&w));
    }
}
