//! # spanner — the document-spanner formalism
//!
//! Data model and representations for *regular document spanners* exactly as
//! used in the PODS 2021 paper *"Spanner Evaluation over SLP-Compressed
//! Documents"* (Sections 3 and 6.1):
//!
//! * [`Variable`] / [`VariableSet`] — the span variables `X`.
//! * [`Marker`] / [`MarkerSet`] — the marker alphabet `Γ_X = {⊿x, ◁x}` and
//!   the *sets* of markers that serve as single symbols (extended-VA style).
//! * [`Span`] / [`SpanTuple`] — spans `[i, j⟩` and (partial) span-tuples.
//! * [`PartialMarkerSet`] — the paper's partial marker sets `Λ`, with the
//!   right-shift `rs_ℓ`, the composition `⊗_s` (Section 6.1) and the total
//!   order `⪯` used for duplicate-free unions (appendix D).
//! * [`MarkedWord`] — subword-marked words and marked words with the
//!   translation functions `e(·)`, `p(·)` and `m(·,·)` of Section 3.1.
//! * [`MarkedSymbol`] — the alphabet `Σ ∪ P(Γ_X)` over which spanner
//!   automata run.
//! * [`SpannerAutomaton`] — NFAs/DFAs accepting subword-marked languages
//!   (Section 3.2), plus compilation from variable regexes
//!   ([`regex::compile`]) and the paper's Figure 2 automaton
//!   ([`examples::figure_2_spanner`]).
//! * [`reference`](mod@reference) — a brute-force reference evaluator used as ground truth
//!   by the test suites of the evaluation crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod examples;
pub mod marked_word;
pub mod marker;
pub mod partial;
pub mod reference;
pub mod regex;
pub mod span;
pub mod spanner_automaton;
pub mod symbol;
pub mod variable;

pub use error::SpannerError;
pub use marked_word::MarkedWord;
pub use marker::{Marker, MarkerSet};
pub use partial::PartialMarkerSet;
pub use span::{Span, SpanTuple};
pub use spanner_automaton::SpannerAutomaton;
pub use symbol::MarkedSymbol;
pub use variable::{Variable, VariableSet};
