//! Spanner automata: NFAs/DFAs accepting subword-marked languages over
//! `Σ ∪ P(Γ_X)` (Section 3.2 of the paper).

use crate::error::SpannerError;
use crate::marked_word::MarkedWord;
use crate::span::SpanTuple;
use crate::symbol::MarkedSymbol;
use crate::variable::VariableSet;
use spanner_automata::nfa::{Label, Nfa};
use std::fmt::Debug;
use std::hash::Hash;

/// An automaton representing a regular `(Σ, X)`-spanner: an NFA over the
/// extended alphabet `Σ ∪ P(Γ_X)` together with its variable set.
///
/// The enumeration algorithm of the paper (Theorem 8.10) requires the
/// automaton to be *deterministic*; [`SpannerAutomaton::is_deterministic`]
/// reports this and [`SpannerAutomaton::determinized`] converts (worst-case
/// exponential, affecting only combined complexity, cf. end of Section 8).
#[derive(Debug, Clone)]
pub struct SpannerAutomaton<T = u8> {
    nfa: Nfa<MarkedSymbol<T>>,
    variables: VariableSet,
}

impl<T: Copy + Eq + Ord + Hash + Debug> SpannerAutomaton<T> {
    /// Wraps an NFA over `Σ ∪ P(Γ_X)` as a spanner automaton.
    ///
    /// Rejects transitions labelled with the *empty* marker set (the paper's
    /// convention is to simply omit empty sets from subword-marked words, so
    /// such a transition could never fire on well-formed input and is almost
    /// certainly a construction bug) and marker transitions that use
    /// variables outside the given variable set.
    pub fn new(nfa: Nfa<MarkedSymbol<T>>, variables: VariableSet) -> Result<Self, SpannerError> {
        for (_, label, _) in nfa.arcs() {
            if let Label::Symbol(MarkedSymbol::Markers(m)) = label {
                if m.is_empty() {
                    return Err(SpannerError::InvalidAutomaton {
                        reason: "transition labelled with the empty marker set".into(),
                    });
                }
                for marker in m.iter() {
                    if marker.variable().index() >= variables.len() {
                        return Err(SpannerError::UnknownVariable {
                            index: marker.variable().0,
                        });
                    }
                }
            }
        }
        Ok(SpannerAutomaton { nfa, variables })
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa<MarkedSymbol<T>> {
        &self.nfa
    }

    /// The variable set `X`.
    pub fn variables(&self) -> &VariableSet {
        &self.variables
    }

    /// `|X|`.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of states `q`.
    pub fn num_states(&self) -> usize {
        self.nfa.num_states()
    }

    /// Number of transitions, the paper's `|M|`.
    pub fn num_transitions(&self) -> usize {
        self.nfa.num_transitions()
    }

    /// `true` if the automaton is deterministic (no ε, at most one successor
    /// per symbol) — the requirement of Theorem 8.10.
    pub fn is_deterministic(&self) -> bool {
        self.nfa.is_deterministic()
    }

    /// An equivalent ε-free spanner automaton.
    pub fn without_epsilon(&self) -> SpannerAutomaton<T> {
        SpannerAutomaton {
            nfa: self.nfa.without_epsilon(),
            variables: self.variables.clone(),
        }
    }

    /// An equivalent deterministic spanner automaton (subset construction
    /// followed by DFA minimisation).
    pub fn determinized(&self) -> SpannerAutomaton<T> {
        if self.is_deterministic() {
            return self.clone();
        }
        SpannerAutomaton {
            nfa: self.nfa.determinize().minimize().to_nfa(),
            variables: self.variables.clone(),
        }
    }

    /// `true` iff the automaton accepts the given marked word (read as its
    /// symbol sequence).
    pub fn accepts_marked_word(&self, word: &MarkedWord<T>) -> bool {
        self.nfa.accepts(&word.to_symbols())
    }

    /// Uncompressed model checking via Proposition 3.3: `t ∈ ⟦M⟧(D)` iff
    /// `m(D, t) ∈ L(M)`.  Runs the NFA on the explicit marked word, so this
    /// is `O(|D| · |M|)` — the baseline the compressed algorithm of
    /// Theorem 5.1(2) is compared against.
    pub fn matches(&self, document: &[T], tuple: &SpanTuple) -> Result<bool, SpannerError> {
        let w = MarkedWord::from_document_and_tuple(document, tuple)?;
        Ok(self.accepts_marked_word(&w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::figure_2_spanner;
    use crate::marker::{Marker, MarkerSet};
    use crate::span::Span;
    use crate::variable::Variable;

    #[test]
    fn empty_marker_set_transitions_are_rejected() {
        let mut nfa: Nfa<MarkedSymbol<u8>> = Nfa::with_states(2);
        nfa.add_transition(0, MarkedSymbol::Markers(MarkerSet::EMPTY), 1);
        let vars = VariableSet::from_names(["x"]).unwrap();
        assert!(matches!(
            SpannerAutomaton::new(nfa, vars),
            Err(SpannerError::InvalidAutomaton { .. })
        ));
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let mut nfa: Nfa<MarkedSymbol<u8>> = Nfa::with_states(2);
        nfa.add_transition(
            0,
            MarkedSymbol::Markers(MarkerSet::singleton(Marker::Open(Variable(3)))),
            1,
        );
        let vars = VariableSet::from_names(["x"]).unwrap();
        assert!(matches!(
            SpannerAutomaton::new(nfa, vars),
            Err(SpannerError::UnknownVariable { index: 3 })
        ));
    }

    #[test]
    fn figure_2_is_deterministic_and_matches_tuples() {
        let m = figure_2_spanner();
        assert!(m.is_deterministic());
        assert_eq!(m.num_states(), 6);
        assert_eq!(m.num_vars(), 2);

        // Section 1.4: the spanner extracts x = [7, 10⟩ from aabccaabaa
        // (the subword-marked word aabcca ⊿x aba ◁x a).
        let doc = b"aabccaabaa";
        let x = m.variables().get("x").unwrap();
        let y = m.variables().get("y").unwrap();
        let mut t = SpanTuple::empty(2);
        t.set(x, Span::new(7, 10).unwrap());
        assert!(m.matches(doc, &t).unwrap());

        // Example 8.2: y = [4, 6⟩ (the cc block) with x undefined.
        let mut t = SpanTuple::empty(2);
        t.set(y, Span::new(4, 6).unwrap());
        assert!(m.matches(doc, &t).unwrap());

        // y must span a non-empty block of c's.
        let mut t = SpanTuple::empty(2);
        t.set(y, Span::new(4, 4).unwrap());
        assert!(!m.matches(doc, &t).unwrap());

        // The all-undefined tuple is not extracted (a marker pair is
        // mandatory on every accepting path).
        assert!(!m.matches(doc, &SpanTuple::empty(2)).unwrap());
    }

    #[test]
    fn determinizing_a_deterministic_automaton_is_identity_like() {
        let m = figure_2_spanner();
        let d = m.determinized();
        assert!(d.is_deterministic());
        assert_eq!(d.num_vars(), 2);
        let doc = b"aabccaabaa";
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        assert_eq!(m.matches(doc, &t).unwrap(), d.matches(doc, &t).unwrap());
    }
}
