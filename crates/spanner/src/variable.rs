//! Span variables `X` and named variable sets.

use crate::error::SpannerError;

/// Maximum number of variables supported by the packed [`crate::MarkerSet`]
/// representation (two bits per variable in a `u64`).
pub const MAX_VARIABLES: usize = 32;

/// A span variable, identified by a dense index `0..|X|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(pub u8);

impl Variable {
    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite, ordered set of named span variables.
///
/// The evaluation algorithms only need the number of variables; names are
/// kept so that query results can be rendered readably.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VariableSet {
    names: Vec<String>,
}

impl VariableSet {
    /// The empty variable set (a Boolean spanner).
    pub fn new() -> Self {
        VariableSet { names: Vec::new() }
    }

    /// A variable set with `n` anonymous variables `x0..x{n-1}`.
    pub fn with_anonymous(n: usize) -> Result<Self, SpannerError> {
        if n > MAX_VARIABLES {
            return Err(SpannerError::TooManyVariables { requested: n });
        }
        Ok(VariableSet {
            names: (0..n).map(|i| format!("x{i}")).collect(),
        })
    }

    /// A variable set from explicit names.
    pub fn from_names<S: Into<String>>(
        names: impl IntoIterator<Item = S>,
    ) -> Result<Self, SpannerError> {
        let mut vs = VariableSet::new();
        for n in names {
            vs.add(n)?;
        }
        Ok(vs)
    }

    /// Registers a new variable and returns its handle.
    pub fn add(&mut self, name: impl Into<String>) -> Result<Variable, SpannerError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(SpannerError::DuplicateVariable { name });
        }
        if self.names.len() >= MAX_VARIABLES {
            return Err(SpannerError::TooManyVariables {
                requested: self.names.len() + 1,
            });
        }
        self.names.push(name);
        Ok(Variable((self.names.len() - 1) as u8))
    }

    /// Number of variables `|X|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if there are no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The handle of a variable by name, if registered.
    pub fn get(&self, name: &str) -> Option<Variable> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Variable(i as u8))
    }

    /// The name of a variable.
    pub fn name(&self, v: Variable) -> &str {
        &self.names[v.index()]
    }

    /// Iterates over the variables in index order.
    pub fn iter(&self) -> impl Iterator<Item = Variable> + '_ {
        (0..self.names.len()).map(|i| Variable(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut vs = VariableSet::new();
        let x = vs.add("x").unwrap();
        let y = vs.add("y").unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.get("x"), Some(x));
        assert_eq!(vs.get("y"), Some(y));
        assert_eq!(vs.get("z"), None);
        assert_eq!(vs.name(x), "x");
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut vs = VariableSet::new();
        vs.add("x").unwrap();
        assert_eq!(
            vs.add("x").unwrap_err(),
            SpannerError::DuplicateVariable { name: "x".into() }
        );
    }

    #[test]
    fn variable_limit_is_enforced() {
        assert!(VariableSet::with_anonymous(32).is_ok());
        assert!(matches!(
            VariableSet::with_anonymous(33),
            Err(SpannerError::TooManyVariables { requested: 33 })
        ));
        let mut vs = VariableSet::with_anonymous(32).unwrap();
        assert!(matches!(
            vs.add("one-too-many"),
            Err(SpannerError::TooManyVariables { .. })
        ));
    }

    #[test]
    fn from_names_and_iter() {
        let vs = VariableSet::from_names(["a", "b", "c"]).unwrap();
        let collected: Vec<&str> = vs.iter().map(|v| vs.name(v)).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
        assert!(!vs.is_empty());
        assert!(VariableSet::new().is_empty());
    }
}
