//! The extended alphabet `Σ ∪ P(Γ_X)` over which spanner automata run.

use crate::marker::MarkerSet;
use std::fmt;

/// A symbol of a subword-marked word: either a terminal of the document
/// alphabet or a non-empty set of markers (Section 3.1 of the paper).
///
/// The ordering puts all terminals before all marker sets; this is only used
/// for canonicalisation (e.g. sorted automaton alphabets), never for
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MarkedSymbol<T> {
    /// A terminal symbol of `Σ`.
    Terminal(T),
    /// A (non-empty) set of markers, used as a single symbol of `P(Γ_X)`.
    Markers(MarkerSet),
}

impl<T> MarkedSymbol<T> {
    /// `true` for terminal symbols.
    pub fn is_terminal(&self) -> bool {
        matches!(self, MarkedSymbol::Terminal(_))
    }

    /// `true` for marker-set symbols.
    pub fn is_markers(&self) -> bool {
        matches!(self, MarkedSymbol::Markers(_))
    }

    /// The terminal, if this is one.
    pub fn terminal(&self) -> Option<&T> {
        match self {
            MarkedSymbol::Terminal(t) => Some(t),
            MarkedSymbol::Markers(_) => None,
        }
    }

    /// The marker set, if this is one.
    pub fn markers(&self) -> Option<MarkerSet> {
        match self {
            MarkedSymbol::Terminal(_) => None,
            MarkedSymbol::Markers(m) => Some(*m),
        }
    }
}

impl fmt::Display for MarkedSymbol<u8> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkedSymbol::Terminal(t) => write!(f, "{}", *t as char),
            MarkedSymbol::Markers(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::Marker;
    use crate::variable::Variable;

    #[test]
    fn accessors() {
        let t: MarkedSymbol<u8> = MarkedSymbol::Terminal(b'a');
        let m: MarkedSymbol<u8> =
            MarkedSymbol::Markers(MarkerSet::singleton(Marker::Open(Variable(0))));
        assert!(t.is_terminal() && !t.is_markers());
        assert!(m.is_markers() && !m.is_terminal());
        assert_eq!(t.terminal(), Some(&b'a'));
        assert_eq!(t.markers(), None);
        assert!(m.markers().unwrap().contains(Marker::Open(Variable(0))));
        assert_eq!(t.to_string(), "a");
        assert!(m.to_string().contains("x0"));
    }

    #[test]
    fn ordering_separates_terminals_and_markers() {
        let t: MarkedSymbol<u8> = MarkedSymbol::Terminal(b'z');
        let m: MarkedSymbol<u8> = MarkedSymbol::Markers(MarkerSet::from_bits(1));
        assert!(t < m);
    }
}
