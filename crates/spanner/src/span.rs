//! Spans `[i, j⟩` and (partial) span-tuples (Section 3 of the paper).

use crate::error::SpannerError;
use crate::marker::Marker;
use crate::partial::PartialMarkerSet;
use crate::variable::{Variable, VariableSet};
use std::fmt;

/// A span `[start, end⟩` of a document: the interval of positions
/// `start, …, end − 1`, with `1 ≤ start ≤ end ≤ d + 1` (1-based, end
/// exclusive), exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Start position (1-based, inclusive).
    pub start: u64,
    /// End position (1-based, exclusive).
    pub end: u64,
}

impl Span {
    /// Creates the span `[start, end⟩`, validating `1 ≤ start ≤ end`.
    pub fn new(start: u64, end: u64) -> Result<Self, SpannerError> {
        if start == 0 || end < start {
            return Err(SpannerError::InvalidSpan { start, end });
        }
        Ok(Span { start, end })
    }

    /// Length of the spanned factor (`end − start`).
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// `true` if the span is empty (`[i, i⟩`).
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The value `D[start, end⟩` of this span in a document.
    pub fn value(self, doc: &[u8]) -> Result<&[u8], SpannerError> {
        if self.end > doc.len() as u64 + 1 {
            return Err(SpannerError::SpanOutOfBounds {
                position: self.end,
                document_len: doc.len() as u64,
            });
        }
        Ok(&doc[(self.start - 1) as usize..(self.end - 1) as usize])
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}⟩", self.start, self.end)
    }
}

/// A (partial) span-tuple: an assignment of spans to some of the variables
/// (`⊥` for the rest) — the paper's `(X, D)-tuple` with the schemaless
/// semantics of non-functional spanners.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanTuple {
    /// `assignment[v]` is the span of variable `v`, or `None` for `⊥`.
    assignment: Vec<Option<Span>>,
}

impl SpanTuple {
    /// The all-undefined tuple over `num_vars` variables.
    pub fn empty(num_vars: usize) -> Self {
        SpanTuple {
            assignment: vec![None; num_vars],
        }
    }

    /// Builds a tuple from an explicit assignment vector.
    pub fn from_assignment(assignment: Vec<Option<Span>>) -> Self {
        SpanTuple { assignment }
    }

    /// Number of variables of the underlying variable set.
    pub fn num_vars(&self) -> usize {
        self.assignment.len()
    }

    /// The span of variable `v` (or `None` for `⊥`).
    pub fn get(&self, v: Variable) -> Option<Span> {
        self.assignment.get(v.index()).copied().flatten()
    }

    /// Assigns a span to a variable.
    pub fn set(&mut self, v: Variable, span: Span) {
        if v.index() >= self.assignment.len() {
            self.assignment.resize(v.index() + 1, None);
        }
        self.assignment[v.index()] = Some(span);
    }

    /// Unassigns a variable.
    pub fn unset(&mut self, v: Variable) {
        if v.index() < self.assignment.len() {
            self.assignment[v.index()] = None;
        }
    }

    /// The variables with a defined span (`dom(t)`).
    pub fn defined_variables(&self) -> Vec<Variable> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| Variable(i as u8)))
            .collect()
    }

    /// `true` if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.iter().all(Option::is_none)
    }

    /// The marker set `t̂ = {(⊿x, i), (◁x, j) : t(x) = [i, j⟩}` of this
    /// tuple (Section 3).
    pub fn marker_set(&self) -> PartialMarkerSet {
        let mut pairs: Vec<(u64, Marker)> = Vec::new();
        for (i, span) in self.assignment.iter().enumerate() {
            if let Some(s) = span {
                pairs.push((s.start, Marker::Open(Variable(i as u8))));
                pairs.push((s.end, Marker::Close(Variable(i as u8))));
            }
        }
        PartialMarkerSet::from_marker_positions(pairs)
    }

    /// Reconstructs a span-tuple from a *complete* marker set (each defined
    /// variable has exactly one open and one close marker, with
    /// `open ≤ close`).
    pub fn from_marker_set(
        markers: &PartialMarkerSet,
        num_vars: usize,
    ) -> Result<Self, SpannerError> {
        let mut opens: Vec<Option<u64>> = vec![None; num_vars];
        let mut closes: Vec<Option<u64>> = vec![None; num_vars];
        for (pos, set) in markers.entries() {
            for m in set.iter() {
                let v = m.variable();
                if v.index() >= num_vars {
                    return Err(SpannerError::UnknownVariable { index: v.0 });
                }
                let slot = match m {
                    Marker::Open(_) => &mut opens[v.index()],
                    Marker::Close(_) => &mut closes[v.index()],
                };
                if slot.is_some() {
                    return Err(SpannerError::MalformedMarkedWord {
                        reason: format!("marker {m} occurs twice"),
                    });
                }
                *slot = Some(pos);
            }
        }
        let mut t = SpanTuple::empty(num_vars);
        for v in 0..num_vars {
            match (opens[v], closes[v]) {
                (None, None) => {}
                (Some(i), Some(j)) if i <= j => t.set(Variable(v as u8), Span::new(i, j)?),
                (Some(i), Some(j)) => {
                    return Err(SpannerError::InvalidSpan { start: i, end: j });
                }
                _ => {
                    return Err(SpannerError::MalformedMarkedWord {
                        reason: format!("variable x{v} has only one of its two markers"),
                    })
                }
            }
        }
        Ok(t)
    }

    /// Renders the tuple with variable names, e.g. `(x ↦ [1, 3⟩, y ↦ ⊥)`.
    pub fn display<'a>(&'a self, vars: &'a VariableSet) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SpanTuple, &'a VariableSet);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                for (i, v) in self.1.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match self.0.get(v) {
                        Some(s) => write!(f, "{} ↦ {}", self.1.name(v), s)?,
                        None => write!(f, "{} ↦ ⊥", self.1.name(v))?,
                    }
                }
                write!(f, ")")
            }
        }
        D(self, vars)
    }

    /// The marker set notation used by the paper, e.g. for checking all
    /// markers lie within a document of length `d` (positions in `[1, d+1]`).
    pub fn check_compatible(&self, document_len: u64) -> Result<(), SpannerError> {
        for span in self.assignment.iter().flatten() {
            if span.end > document_len + 1 {
                return Err(SpannerError::SpanOutOfBounds {
                    position: span.end,
                    document_len,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_validation_and_value() {
        assert!(Span::new(0, 2).is_err());
        assert!(Span::new(3, 2).is_err());
        let s = Span::new(2, 4).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.value(b"abcde").unwrap(), b"bc");
        assert_eq!(Span::new(3, 3).unwrap().value(b"abcde").unwrap(), b"");
        assert_eq!(Span::new(1, 6).unwrap().value(b"abcde").unwrap(), b"abcde");
        assert!(Span::new(1, 7).unwrap().value(b"abcde").is_err());
        assert_eq!(s.to_string(), "[2, 4⟩");
    }

    #[test]
    fn tuple_assignment_and_domain() {
        let mut t = SpanTuple::empty(3);
        assert!(t.is_empty());
        t.set(Variable(0), Span::new(1, 5).unwrap());
        t.set(Variable(2), Span::new(5, 7).unwrap());
        assert_eq!(t.get(Variable(0)), Some(Span::new(1, 5).unwrap()));
        assert_eq!(t.get(Variable(1)), None);
        assert_eq!(t.defined_variables(), vec![Variable(0), Variable(2)]);
        t.unset(Variable(0));
        assert_eq!(t.defined_variables(), vec![Variable(2)]);
    }

    #[test]
    fn marker_set_round_trip() {
        // The paper's example: t = ([6,8⟩, ⊥, [3,8⟩) over (x, y, z).
        let mut t = SpanTuple::empty(3);
        t.set(Variable(0), Span::new(6, 8).unwrap());
        t.set(Variable(2), Span::new(3, 8).unwrap());
        let m = t.marker_set();
        let back = SpanTuple::from_marker_set(&m, 3).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_marker_set_rejects_malformed_input() {
        // Only an open marker for x0.
        let m = PartialMarkerSet::from_marker_positions(vec![(2, Marker::Open(Variable(0)))]);
        assert!(matches!(
            SpanTuple::from_marker_set(&m, 1),
            Err(SpannerError::MalformedMarkedWord { .. })
        ));
        // Close before open.
        let m = PartialMarkerSet::from_marker_positions(vec![
            (5, Marker::Open(Variable(0))),
            (2, Marker::Close(Variable(0))),
        ]);
        assert!(matches!(
            SpanTuple::from_marker_set(&m, 1),
            Err(SpannerError::InvalidSpan { .. })
        ));
        // Unknown variable.
        let m = PartialMarkerSet::from_marker_positions(vec![
            (1, Marker::Open(Variable(4))),
            (2, Marker::Close(Variable(4))),
        ]);
        assert!(matches!(
            SpanTuple::from_marker_set(&m, 1),
            Err(SpannerError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn display_uses_names() {
        let vars = VariableSet::from_names(["x", "y"]).unwrap();
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        let shown = t.display(&vars).to_string();
        assert_eq!(shown, "(x ↦ ⊥, y ↦ [4, 6⟩)");
    }

    #[test]
    fn compatibility_check() {
        let mut t = SpanTuple::empty(1);
        t.set(Variable(0), Span::new(1, 12).unwrap());
        assert!(t.check_compatible(10).is_err());
        assert!(t.check_compatible(11).is_ok());
    }
}
