//! Error type for spanner construction and parsing.

use std::fmt;

/// Errors raised while building variables, span-tuples, marked words,
/// spanner automata or parsing variable regexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpannerError {
    /// More variables were requested than the packed `MarkerSet`
    /// representation supports (32).
    TooManyVariables {
        /// The number of variables requested.
        requested: usize,
    },
    /// A variable name was registered twice.
    DuplicateVariable {
        /// The offending name.
        name: String,
    },
    /// A variable index is not part of the variable set in use.
    UnknownVariable {
        /// The offending index.
        index: u8,
    },
    /// A span has `end < start` or starts at position 0 (spans are 1-based).
    InvalidSpan {
        /// Start position.
        start: u64,
        /// End position.
        end: u64,
    },
    /// A marker set / marked word violates the subword-marked-word
    /// well-formedness conditions of Definition 3.1.
    MalformedMarkedWord {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A span-tuple refers to positions outside the document.
    SpanOutOfBounds {
        /// The offending position.
        position: u64,
        /// Document length.
        document_len: u64,
    },
    /// Variable-regex parse error.
    Parse {
        /// Byte offset of the error in the pattern.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The automaton is not a valid spanner automaton (e.g. a transition is
    /// labelled with an empty marker set).
    InvalidAutomaton {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for SpannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpannerError::TooManyVariables { requested } => {
                write!(
                    f,
                    "at most 32 span variables are supported, {requested} requested"
                )
            }
            SpannerError::DuplicateVariable { name } => {
                write!(f, "variable `{name}` registered twice")
            }
            SpannerError::UnknownVariable { index } => write!(f, "unknown variable index {index}"),
            SpannerError::InvalidSpan { start, end } => {
                write!(
                    f,
                    "invalid span [{start}, {end}⟩ (spans are 1-based with start ≤ end)"
                )
            }
            SpannerError::MalformedMarkedWord { reason } => {
                write!(f, "malformed (subword-)marked word: {reason}")
            }
            SpannerError::SpanOutOfBounds {
                position,
                document_len,
            } => write!(
                f,
                "span position {position} is outside the document of length {document_len}"
            ),
            SpannerError::Parse { offset, message } => {
                write!(f, "variable-regex parse error at byte {offset}: {message}")
            }
            SpannerError::InvalidAutomaton { reason } => {
                write!(f, "invalid spanner automaton: {reason}")
            }
        }
    }
}

impl std::error::Error for SpannerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_details() {
        let e = SpannerError::Parse {
            offset: 7,
            message: "unbalanced parenthesis".into(),
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("unbalanced"));
        let e = SpannerError::InvalidSpan { start: 5, end: 3 };
        assert!(e.to_string().contains("[5, 3⟩"));
    }
}
