//! (Subword-)marked words and the translation functions `e(·)`, `p(·)`,
//! `m(·,·)` of Section 3.1 / Figure 1 of the paper.
//!
//! A marked word `w = A₁b₁A₂b₂…AₙbₙAₙ₊₁` interleaves marker sets `Aᵢ`
//! (possibly empty) with terminals `bᵢ`.  A *subword-marked* word is a
//! marked word whose markers form a valid span-tuple (Definition 3.1).

use crate::error::SpannerError;
use crate::marker::{Marker, MarkerSet};
use crate::partial::PartialMarkerSet;
use crate::span::SpanTuple;
use crate::symbol::MarkedSymbol;

/// A marked word over a generic terminal alphabet `T`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarkedWord<T> {
    /// `sets[i]` is the marker set `A_{i+1}` in front of terminal `i`
    /// (0-based); `sets[n]` is the trailing set `A_{n+1}`.
    sets: Vec<MarkerSet>,
    /// The terminals `b₁ … bₙ` (the document `e(w)`).
    terminals: Vec<T>,
}

impl<T: Copy + Eq> MarkedWord<T> {
    /// An unmarked word (all marker sets empty).
    pub fn unmarked(document: &[T]) -> Self {
        MarkedWord {
            sets: vec![MarkerSet::EMPTY; document.len() + 1],
            terminals: document.to_vec(),
        }
    }

    /// The paper's `m(D, Λ)`: the marked word obtained by placing the
    /// markers of `Λ` into the document `D`.  Fails if `Λ` is not compatible
    /// with `D` (a position exceeds `|D| + 1`).
    pub fn from_document_and_markers(
        document: &[T],
        markers: &PartialMarkerSet,
    ) -> Result<Self, SpannerError> {
        if !markers.is_compatible_with(document.len() as u64) {
            return Err(SpannerError::SpanOutOfBounds {
                position: markers.max_position(),
                document_len: document.len() as u64,
            });
        }
        let mut w = MarkedWord::unmarked(document);
        for (pos, set) in markers.entries() {
            w.sets[(pos - 1) as usize] = set;
        }
        Ok(w)
    }

    /// The paper's `m(D, t̂)` for a span-tuple `t`.
    pub fn from_document_and_tuple(
        document: &[T],
        tuple: &SpanTuple,
    ) -> Result<Self, SpannerError> {
        tuple.check_compatible(document.len() as u64)?;
        Self::from_document_and_markers(document, &tuple.marker_set())
    }

    /// Builds a marked word from a sequence of [`MarkedSymbol`]s (as read by
    /// a spanner automaton).  Two consecutive marker-set symbols or a
    /// marker-set symbol that is empty are rejected.
    pub fn from_symbols(symbols: &[MarkedSymbol<T>]) -> Result<Self, SpannerError> {
        let mut sets = vec![MarkerSet::EMPTY];
        let mut terminals = Vec::new();
        let mut pending_set = false;
        for s in symbols {
            match s {
                MarkedSymbol::Markers(m) => {
                    if m.is_empty() {
                        return Err(SpannerError::MalformedMarkedWord {
                            reason: "empty marker-set symbol".into(),
                        });
                    }
                    if pending_set {
                        return Err(SpannerError::MalformedMarkedWord {
                            reason: "two consecutive marker-set symbols".into(),
                        });
                    }
                    *sets.last_mut().expect("sets is never empty") = *m;
                    pending_set = true;
                }
                MarkedSymbol::Terminal(t) => {
                    terminals.push(*t);
                    sets.push(MarkerSet::EMPTY);
                    pending_set = false;
                }
            }
        }
        Ok(MarkedWord { sets, terminals })
    }

    /// The document-length `|w|_d = n` (number of terminals).
    pub fn document_len(&self) -> u64 {
        self.terminals.len() as u64
    }

    /// The paper's `e(w)`: the underlying document.
    pub fn document(&self) -> &[T] {
        &self.terminals
    }

    /// The paper's `p(w)`: the (partial) marker set encoded by the word.
    pub fn markers(&self) -> PartialMarkerSet {
        PartialMarkerSet::from_entries(
            self.sets
                .iter()
                .enumerate()
                .map(|(i, &s)| ((i + 1) as u64, s)),
        )
    }

    /// The marker set directly in front of the `i`-th terminal (1-based), or
    /// the trailing set for `i = |w|_d + 1`.
    pub fn marker_set_at(&self, position: u64) -> MarkerSet {
        self.sets[(position - 1) as usize]
    }

    /// `true` if the word is non-tail-spanning (the trailing marker set
    /// `A_{n+1}` is empty), cf. Section 6.1.
    pub fn is_non_tail_spanning(&self) -> bool {
        self.sets.last().map(|s| s.is_empty()).unwrap_or(true)
    }

    /// Checks the three conditions of Definition 3.1 (each marker occurs at
    /// most once, opens do not come after closes, markers come in pairs), i.e.
    /// whether the marked word is a *subword-marked* word.
    pub fn validate_subword_marked(&self) -> Result<(), SpannerError> {
        let mut seen = MarkerSet::EMPTY;
        let mut open_pos: Vec<Option<u64>> = vec![None; 32];
        let mut close_pos: Vec<Option<u64>> = vec![None; 32];
        for (i, set) in self.sets.iter().enumerate() {
            if !seen.is_disjoint(*set) {
                return Err(SpannerError::MalformedMarkedWord {
                    reason: "a marker occurs at two positions".into(),
                });
            }
            seen = seen.union(*set);
            for m in set.iter() {
                let v = m.variable().index();
                match m {
                    Marker::Open(_) => open_pos[v] = Some((i + 1) as u64),
                    Marker::Close(_) => close_pos[v] = Some((i + 1) as u64),
                }
            }
        }
        for v in 0..32 {
            match (open_pos[v], close_pos[v]) {
                (None, None) => {}
                (Some(i), Some(j)) if i <= j => {}
                (Some(_), Some(_)) => {
                    return Err(SpannerError::MalformedMarkedWord {
                        reason: format!("variable x{v} closes before it opens"),
                    })
                }
                _ => {
                    return Err(SpannerError::MalformedMarkedWord {
                        reason: format!("variable x{v} has only one of its two markers"),
                    })
                }
            }
        }
        Ok(())
    }

    /// The span-tuple encoded by this subword-marked word.
    pub fn span_tuple(&self, num_vars: usize) -> Result<SpanTuple, SpannerError> {
        self.validate_subword_marked()?;
        SpanTuple::from_marker_set(&self.markers(), num_vars)
    }

    /// The symbol sequence read by a spanner automaton: marker sets (when
    /// non-empty) interleaved with terminals.
    pub fn to_symbols(&self) -> Vec<MarkedSymbol<T>> {
        let mut out = Vec::with_capacity(self.terminals.len() * 2 + 1);
        for (i, &t) in self.terminals.iter().enumerate() {
            if !self.sets[i].is_empty() {
                out.push(MarkedSymbol::Markers(self.sets[i]));
            }
            out.push(MarkedSymbol::Terminal(t));
        }
        if let Some(&last) = self.sets.last() {
            if !last.is_empty() {
                out.push(MarkedSymbol::Markers(last));
            }
        }
        out
    }

    /// Splits the marked word after document position `k` (`0 ≤ k ≤ n`) into
    /// marked words `w₁, w₂` with `e(w₁) = D[1..k]` and `e(w₂) = D[k+1..n]`.
    /// The marker set sitting exactly at the cut goes to the *right* part, so
    /// the left part is always non-tail-spanning (the convention of
    /// Section 6.1).
    pub fn split_at(&self, k: u64) -> (MarkedWord<T>, MarkedWord<T>) {
        let k = k as usize;
        let left = MarkedWord {
            sets: {
                let mut s = self.sets[..k].to_vec();
                s.push(MarkerSet::EMPTY);
                s
            },
            terminals: self.terminals[..k].to_vec(),
        };
        let right = MarkedWord {
            sets: self.sets[k..].to_vec(),
            terminals: self.terminals[k..].to_vec(),
        };
        (left, right)
    }
}

impl std::fmt::Display for MarkedWord<u8> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, &t) in self.terminals.iter().enumerate() {
            if !self.sets[i].is_empty() {
                write!(f, "{}", self.sets[i])?;
            }
            write!(f, "{}", t as char)?;
        }
        if let Some(&last) = self.sets.last() {
            if !last.is_empty() {
                write!(f, "{last}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use crate::variable::Variable;

    fn open(v: u8) -> Marker {
        Marker::Open(Variable(v))
    }
    fn close(v: u8) -> Marker {
        Marker::Close(Variable(v))
    }

    /// Example 3.2 of the paper:
    /// `w = {⊿x} a b {⊿y,⊿z,◁x} b c {◁z} a b {◁y} a c` over x=0, y=1, z=2.
    fn example_3_2() -> MarkedWord<u8> {
        let markers = PartialMarkerSet::from_marker_positions(vec![
            (1, open(0)),
            (3, close(0)),
            (3, open(1)),
            (7, close(1)),
            (3, open(2)),
            (5, close(2)),
        ]);
        MarkedWord::from_document_and_markers(b"abbcabac", &markers).unwrap()
    }

    #[test]
    fn example_3_2_e_and_p() {
        let w = example_3_2();
        assert_eq!(w.document(), b"abbcabac");
        assert_eq!(w.document_len(), 8);
        let p = w.markers();
        assert_eq!(p.len(), 6);
        assert!(
            p.at(3).contains(close(0)) && p.at(3).contains(open(1)) && p.at(3).contains(open(2))
        );
        // The encoded span-tuple is ([1,3⟩, [3,7⟩, [3,5⟩).
        let t = w.span_tuple(3).unwrap();
        assert_eq!(t.get(Variable(0)), Some(Span::new(1, 3).unwrap()));
        assert_eq!(t.get(Variable(1)), Some(Span::new(3, 7).unwrap()));
        assert_eq!(t.get(Variable(2)), Some(Span::new(3, 5).unwrap()));
        assert!(w.is_non_tail_spanning());
    }

    #[test]
    fn example_3_2_m_round_trip() {
        // m(D, t̂) reproduces the word; and the second example of 3.2:
        // D = aaabcbb, t = ([6,8⟩, ⊥, [3,8⟩)  =>  aa{⊿z}abc{⊿x}bb{◁x,◁z}.
        let mut t = SpanTuple::empty(3);
        t.set(Variable(0), Span::new(6, 8).unwrap());
        t.set(Variable(2), Span::new(3, 8).unwrap());
        let w = MarkedWord::from_document_and_tuple(b"aaabcbb", &t).unwrap();
        assert_eq!(w.document(), b"aaabcbb");
        assert_eq!(w.span_tuple(3).unwrap(), t);
        assert!(!w.is_non_tail_spanning()); // markers at position 8 = d + 1
        assert!(w.marker_set_at(8).contains(close(0)));
        assert!(w.marker_set_at(8).contains(close(2)));
        assert!(w.marker_set_at(3).contains(open(2)));
        assert!(w.marker_set_at(6).contains(open(0)));
    }

    #[test]
    fn symbols_round_trip() {
        let w = example_3_2();
        let symbols = w.to_symbols();
        let back = MarkedWord::from_symbols(&symbols).unwrap();
        assert_eq!(back, w);
        // 8 terminals + 4 non-empty marker sets.
        assert_eq!(symbols.len(), 12);
    }

    #[test]
    fn from_symbols_rejects_consecutive_marker_sets() {
        let s1 = MarkedSymbol::Markers(MarkerSet::singleton(open(0)));
        let s2 = MarkedSymbol::Markers(MarkerSet::singleton(close(0)));
        let t: MarkedSymbol<u8> = MarkedSymbol::Terminal(b'a');
        assert!(MarkedWord::from_symbols(&[s1, s2, t]).is_err());
        assert!(
            MarkedWord::from_symbols(&[MarkedSymbol::<u8>::Markers(MarkerSet::EMPTY)]).is_err()
        );
        assert!(MarkedWord::from_symbols(&[s1, t, s2]).is_ok());
    }

    #[test]
    fn validation_rejects_bad_words() {
        // Close before open.
        let bad = PartialMarkerSet::from_marker_positions(vec![(4, open(0)), (2, close(0))]);
        let w = MarkedWord::from_document_and_markers(b"abcd", &bad).unwrap();
        assert!(w.validate_subword_marked().is_err());
        // Dangling open.
        let bad = PartialMarkerSet::from_marker_positions(vec![(1, open(0))]);
        let w = MarkedWord::from_document_and_markers(b"abcd", &bad).unwrap();
        assert!(w.validate_subword_marked().is_err());
        // Incompatible position.
        let far = PartialMarkerSet::from_marker_positions(vec![(9, open(0))]);
        assert!(MarkedWord::from_document_and_markers(b"abcd", &far).is_err());
    }

    #[test]
    fn splitting_matches_the_section_6_1_example() {
        // w = {⊿x}ab{⊿y,⊿z,◁x}b · c{◁z}ab{◁y}ac  split after position 3.
        let w = example_3_2();
        let (w1, w2) = w.split_at(3);
        assert_eq!(w1.document(), b"abb");
        assert_eq!(w2.document(), b"cabac");
        assert!(w1.is_non_tail_spanning());
        let p1 = w1.markers();
        let p2 = w2.markers();
        assert_eq!(p1.len(), 4); // ⊿x@1, ◁x@3, ⊿y@3, ⊿z@3
        assert_eq!(p2.len(), 2); // ◁z@2, ◁y@4
        assert!(p2.at(2).contains(close(2)));
        assert!(p2.at(4).contains(close(1)));
        // Recombination via ⊗ gives the original marker set.
        let combined = p1.compose(w1.document_len(), &p2);
        assert_eq!(combined, w.markers());
    }

    #[test]
    fn display_renders_markers_inline() {
        let w = example_3_2();
        let txt = w.to_string();
        assert!(txt.contains("a"));
        assert!(txt.contains("{"));
    }
}
