//! Markers `⊿x` / `◁x` and packed marker sets.
//!
//! The paper merges consecutive marker symbols into *sets* (one symbol of the
//! alphabet `P(Γ_X)`), which makes the representation of a document plus
//! span-tuple unique (Section 3.3).  A [`MarkerSet`] packs such a set into a
//! `u64`: bit `2·v` is the open marker of variable `v`, bit `2·v + 1` the
//! close marker.

use crate::variable::Variable;
use std::fmt;

/// A single marker symbol of `Γ_X`: `⊿x` (open) or `◁x` (close).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Marker {
    /// `⊿x` — the span of `x` starts here.
    Open(Variable),
    /// `◁x` — the span of `x` ends here.
    Close(Variable),
}

impl Marker {
    /// The variable this marker belongs to.
    pub fn variable(self) -> Variable {
        match self {
            Marker::Open(v) | Marker::Close(v) => v,
        }
    }

    /// The bit position of this marker inside a [`MarkerSet`].
    #[inline]
    fn bit(self) -> u32 {
        match self {
            Marker::Open(v) => 2 * v.0 as u32,
            Marker::Close(v) => 2 * v.0 as u32 + 1,
        }
    }

    /// The marker encoded by a bit position (inverse of [`Marker::bit`]).
    #[inline]
    fn from_bit(bit: u32) -> Marker {
        let v = Variable((bit / 2) as u8);
        if bit.is_multiple_of(2) {
            Marker::Open(v)
        } else {
            Marker::Close(v)
        }
    }
}

impl fmt::Display for Marker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Marker::Open(v) => write!(f, "⊢x{}", v.0),
            Marker::Close(v) => write!(f, "x{}⊣", v.0),
        }
    }
}

/// A set of markers, used as a *single* input symbol of the spanner
/// automaton (an element of `P(Γ_X)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MarkerSet(u64);

impl MarkerSet {
    /// The empty marker set.
    pub const EMPTY: MarkerSet = MarkerSet(0);

    /// The empty marker set.
    pub fn new() -> Self {
        MarkerSet(0)
    }

    /// The singleton `{m}`.
    pub fn singleton(m: Marker) -> Self {
        MarkerSet(1u64 << m.bit())
    }

    /// A marker set from an iterator of markers.
    pub fn from_markers(markers: impl IntoIterator<Item = Marker>) -> Self {
        let mut s = MarkerSet::new();
        for m in markers {
            s.insert(m);
        }
        s
    }

    /// The raw bit representation (stable across runs; used for hashing and
    /// ordering only).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a marker set from its raw bits.
    pub fn from_bits(bits: u64) -> Self {
        MarkerSet(bits)
    }

    /// Inserts a marker.
    pub fn insert(&mut self, m: Marker) {
        self.0 |= 1u64 << m.bit();
    }

    /// Removes a marker.
    pub fn remove(&mut self, m: Marker) {
        self.0 &= !(1u64 << m.bit());
    }

    /// `true` if the marker is in the set.
    pub fn contains(self, m: Marker) -> bool {
        (self.0 >> m.bit()) & 1 == 1
    }

    /// `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of markers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    pub fn union(self, other: MarkerSet) -> MarkerSet {
        MarkerSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: MarkerSet) -> MarkerSet {
        MarkerSet(self.0 & other.0)
    }

    /// `true` if the two sets share no marker.
    pub fn is_disjoint(self, other: MarkerSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the markers in the set, in bit order
    /// (`⊿x0, ◁x0, ⊿x1, ◁x1, …`).
    pub fn iter(self) -> impl Iterator<Item = Marker> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some(Marker::from_bit(bit))
            }
        })
    }

    /// Enumerates every non-empty subset of `Γ_X` for `num_vars` variables
    /// (used by tests and by the VA → extended-VA conversion).
    pub fn all_non_empty(num_vars: usize) -> impl Iterator<Item = MarkerSet> {
        let bits = 2 * num_vars as u32;
        (1u64..(1u64 << bits)).map(MarkerSet)
    }
}

impl fmt::Display for MarkerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Variable {
        Variable(0)
    }
    fn y() -> Variable {
        Variable(1)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = MarkerSet::new();
        assert!(s.is_empty());
        s.insert(Marker::Open(x()));
        s.insert(Marker::Close(y()));
        assert!(s.contains(Marker::Open(x())));
        assert!(s.contains(Marker::Close(y())));
        assert!(!s.contains(Marker::Close(x())));
        assert_eq!(s.len(), 2);
        s.remove(Marker::Open(x()));
        assert!(!s.contains(Marker::Open(x())));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_round_trips() {
        let markers = vec![
            Marker::Open(x()),
            Marker::Close(x()),
            Marker::Open(Variable(5)),
            Marker::Close(Variable(31)),
        ];
        let s = MarkerSet::from_markers(markers.clone());
        let collected: Vec<Marker> = s.iter().collect();
        assert_eq!(collected, markers);
        assert_eq!(MarkerSet::from_bits(s.bits()), s);
    }

    #[test]
    fn union_intersection_disjoint() {
        let a = MarkerSet::from_markers([Marker::Open(x()), Marker::Close(x())]);
        let b = MarkerSet::from_markers([Marker::Close(x()), Marker::Open(y())]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(!a.is_disjoint(b));
        let c = MarkerSet::singleton(Marker::Close(y()));
        assert!(a.is_disjoint(c));
    }

    #[test]
    fn all_non_empty_enumerates_the_powerset() {
        // 2 variables => 4 markers => 15 non-empty subsets.
        let subsets: Vec<MarkerSet> = MarkerSet::all_non_empty(2).collect();
        assert_eq!(subsets.len(), 15);
        assert!(subsets.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn display_is_braced() {
        let s = MarkerSet::from_markers([Marker::Open(x()), Marker::Close(y())]);
        let txt = s.to_string();
        assert!(txt.starts_with('{') && txt.ends_with('}'));
        assert!(txt.contains("x0"));
        assert!(txt.contains("x1"));
    }
}
