//! E1 — Theorem 5.1(1): non-emptiness in `O(size(S)·q³)`, i.e. time growing
//! with the SLP size (and hence only logarithmically with the document for
//! the highly compressible families).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_bench::{log_family, unary_family};
use spanner_slp_core::nonemptiness::is_non_empty;
use spanner_workloads::queries;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_nonemptiness");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let figure2 = queries::figure2().automaton;
    for case in unary_family(&[10, 14, 18, 22, 26]) {
        g.bench_with_input(
            BenchmarkId::new("unary/figure2", case.name.clone()),
            &case,
            |b, case| b.iter(|| is_non_empty(&figure2, &case.slp)),
        );
    }

    let log_query = queries::log_error_value().automaton;
    for case in log_family(&[100, 1000, 10_000]) {
        g.bench_with_input(
            BenchmarkId::new("log/error_value", case.name.clone()),
            &case,
            |b, case| b.iter(|| is_non_empty(&log_query, &case.slp)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
