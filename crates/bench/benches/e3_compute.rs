//! E3 — Theorem 7.1: computing `⟦M⟧(D)` in time `O(size(S)·q⁴·r)`; the
//! sweep varies the result count `r` at (almost) constant SLP size and the
//! SLP size at constant `r`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_bench::ab_family;
use spanner_slp_core::compute::compute_all;
use spanner_workloads::queries;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_compute");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    // r grows linearly with k, size(S) only logarithmically.
    let query = queries::ab_blocks().automaton;
    for case in ab_family(&[1 << 6, 1 << 8, 1 << 10, 1 << 12]) {
        g.bench_with_input(
            BenchmarkId::new("ab_blocks/r-sweep", case.name.clone()),
            &case,
            |b, case| b.iter(|| compute_all(&query, &case.slp).expect("evaluation succeeds")),
        );
    }

    // Constant r = 1: the single "ab" occurrence sits in a sea of c's whose
    // SLP size grows; time should track size(S), not d.
    let single = queries::ab_blocks().automaton;
    for n in [10u32, 14, 18] {
        let mut slp = slp::families::power_of_two_unary(b'c', n);
        slp = slp.append_terminal(b'a');
        let slp = slp.append_terminal(b'b');
        g.bench_with_input(
            BenchmarkId::new("ab_blocks/s-sweep-r1", format!("c^2^{n}ab")),
            &slp,
            |b, slp| b.iter(|| compute_all(&single, slp).expect("evaluation succeeds")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
