//! E4 — Theorem 8.10 (preprocessing): `O(|M| + size(S)·q³)` preprocessing
//! for enumeration, growing with the SLP size, not the document length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_bench::{ab_family, log_family, unary_family};
use spanner_slp_core::enumerate::Enumerator;
use spanner_workloads::queries;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_enum_preprocessing");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let figure2 = queries::figure2().automaton;
    for case in unary_family(&[10, 16, 22]) {
        g.bench_with_input(
            BenchmarkId::new("unary/figure2", case.name.clone()),
            &case,
            |b, case| b.iter(|| Enumerator::new(&figure2, &case.slp).expect("deterministic")),
        );
    }
    let ab = queries::ab_blocks().automaton;
    for case in ab_family(&[1 << 10, 1 << 16, 1 << 20]) {
        g.bench_with_input(
            BenchmarkId::new("ab/ab_blocks", case.name.clone()),
            &case,
            |b, case| b.iter(|| Enumerator::new(&ab, &case.slp).expect("deterministic")),
        );
    }
    let log_query = queries::key_value().automaton;
    for case in log_family(&[100, 1000]) {
        g.bench_with_input(
            BenchmarkId::new("log/key_value", case.name.clone()),
            &case,
            |b, case| b.iter(|| Enumerator::new(&log_query, &case.slp).expect("deterministic")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
