//! E2 — Theorem 5.1(2): model checking in `O((size(S) + |X|·depth(S))·q³)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner::{Span, SpanTuple};
use spanner_bench::ab_family;
use spanner_slp_core::model_check::check;
use spanner_workloads::queries;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_model_check");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let query = queries::ab_blocks().automaton;
    let x = query.variables().get("x").expect("variable x");
    for case in ab_family(&[1 << 8, 1 << 12, 1 << 16, 1 << 20]) {
        // A tuple in the middle of the document.
        let mid = (case.doc_len() / 2) | 1; // odd position = start of an "ab"
        let mut tuple = SpanTuple::empty(1);
        tuple.set(x, Span::new(mid, mid + 2).expect("valid span"));
        g.bench_with_input(
            BenchmarkId::new("ab_blocks/positive", case.name.clone()),
            &case,
            |b, case| b.iter(|| check(&query, &case.slp, &tuple).expect("in bounds")),
        );
        let mut negative = SpanTuple::empty(1);
        negative.set(x, Span::new(mid + 1, mid + 3).expect("valid span"));
        g.bench_with_input(
            BenchmarkId::new("ab_blocks/negative", case.name.clone()),
            &case,
            |b, case| b.iter(|| check(&query, &case.slp, &negative).expect("in bounds")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
