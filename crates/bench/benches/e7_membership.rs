//! E7 — the Lemma 4.5 substrate: membership of an SLP-compressed document
//! in a regular language, `O(size(S)·q³)` vs the `O(d·q²)` of
//! decompress-and-run, swept over the number of automaton states `q`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp::families;
use spanner_automata::membership::compressed_membership;
use spanner_bench::random_byte_nfa;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_membership");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let slp = families::power_word(b"ab", 1 << 19); // d = 2^20
    let doc = slp.derive();
    for q in [2usize, 8, 32, 64] {
        let nfa = random_byte_nfa(q, 0xBEEF + q as u64);
        g.bench_with_input(BenchmarkId::new("compressed", q), &nfa, |b, nfa| {
            b.iter(|| compressed_membership(nfa, &slp))
        });
        g.bench_with_input(BenchmarkId::new("decompress-and-run", q), &nfa, |b, nfa| {
            b.iter(|| nfa.accepts(&doc))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
