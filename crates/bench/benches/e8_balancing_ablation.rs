//! E8 — ablation of the balancing theorem (Theorem 4.3): enumeration delay
//! on a deliberately unbalanced chain SLP (depth Θ(d)) versus the same
//! document after AVL rebalancing (depth O(log d)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slp::balance::rebalance;
use slp::compress::{Chain, Compressor};
use spanner_slp_core::enumerate::Enumerator;
use spanner_workloads::queries;
use std::time::Duration;

const RESULTS_PER_ITER: usize = 200;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_balancing_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));

    let query = queries::ab_blocks().automaton;
    for exp in [10u32, 12, 14] {
        let doc: Vec<u8> = std::iter::repeat_n(b"ab".iter().copied(), 1 << exp)
            .flatten()
            .collect();
        let chain = Chain.compress(&doc);
        let balanced = rebalance(&chain);
        assert!(balanced.depth() < chain.depth());
        let chain_enum = Enumerator::new(&query, &chain).expect("deterministic");
        let balanced_enum = Enumerator::new(&query, &balanced).expect("deterministic");
        g.bench_with_input(
            BenchmarkId::new("chain-depth-d", format!("d=2^{}", exp + 1)),
            &chain_enum,
            |b, e| b.iter(|| e.iter().take(RESULTS_PER_ITER).count()),
        );
        g.bench_with_input(
            BenchmarkId::new("balanced-depth-logd", format!("d=2^{}", exp + 1)),
            &balanced_enum,
            |b, e| b.iter(|| e.iter().take(RESULTS_PER_ITER).count()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
