//! E5 — Theorem 8.10 (delay): `O(depth(S)·|X|) = O(|X|·log d)` delay per
//! result.  The benchmark draws a fixed number of results from documents of
//! exponentially growing length, so the per-result time should grow only
//! logarithmically with `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_bench::ab_family;
use spanner_slp_core::enumerate::Enumerator;
use spanner_workloads::queries;
use std::time::Duration;

const RESULTS_PER_ITER: usize = 1000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_enum_delay");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));

    let query = queries::ab_blocks().automaton;
    for case in ab_family(&[1 << 10, 1 << 14, 1 << 18, 1 << 22]) {
        let enumerator = Enumerator::new(&query, &case.slp).expect("deterministic");
        g.bench_with_input(
            BenchmarkId::new("ab_blocks/1000-results", case.name.clone()),
            &enumerator,
            |b, enumerator| {
                b.iter(|| {
                    let drawn = enumerator.iter().take(RESULTS_PER_ITER).count();
                    assert_eq!(drawn, RESULTS_PER_ITER);
                    drawn
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
