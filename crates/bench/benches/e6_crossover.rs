//! E6 — the paper's headline claim (Sections 1.3/1.4): on compressible
//! documents, evaluating directly on the SLP beats decompress-and-solve;
//! on incompressible documents the uncompressed algorithm wins.  The sweep
//! varies the repetitiveness of a fixed-length document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_bench::repetitiveness_family;
use spanner_slp_core::SlpSpanner;
use spanner_workloads::queries;
use std::time::Duration;

const DOC_LEN: usize = 1 << 15;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_crossover");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    let query = queries::adjacent_blocks().automaton;
    for (novelty, doc, slp) in repetitiveness_family(DOC_LEN, &[0.001, 0.01, 0.1, 1.0]) {
        let label = format!("novelty={novelty}");
        g.bench_with_input(
            BenchmarkId::new("compressed/enumerate-all", &label),
            &slp,
            |b, slp| {
                b.iter(|| {
                    let spanner = SlpSpanner::new(&query, slp).expect("well-formed");
                    spanner.enumerate().count()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("baseline/decompress-and-solve", &label),
            &(doc, slp.clone()),
            |b, (_doc, slp)| b.iter(|| spanner_baseline::compute_slp(&query, slp).len()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
