//! E9 — ablation: the direct computation algorithm (Theorem 7.1) versus
//! enumerate-and-collect (Theorem 8.10), as discussed in Section 1.3 of the
//! paper ("our direct algorithm for computing ⟦M⟧(D) is much simpler and
//! better in combined complexity").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spanner_bench::ab_family;
use spanner_slp_core::{compute::compute_all, enumerate::Enumerator};
use spanner_workloads::queries;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_compute_vs_enumerate");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500));

    let query = queries::ab_blocks().automaton;
    for case in ab_family(&[1 << 8, 1 << 10, 1 << 12]) {
        g.bench_with_input(
            BenchmarkId::new("compute", case.name.clone()),
            &case,
            |b, case| {
                b.iter(|| {
                    compute_all(&query, &case.slp)
                        .expect("evaluation succeeds")
                        .len()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("enumerate-and-collect", case.name.clone()),
            &case,
            |b, case| {
                b.iter(|| {
                    Enumerator::new(&query, &case.slp)
                        .expect("deterministic")
                        .iter()
                        .count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
