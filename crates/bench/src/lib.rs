//! # spanner-bench — shared harness for the experiment suite
//!
//! Workload construction and measurement helpers shared by the Criterion
//! benches (`benches/e*.rs`) and by the `experiments` report binary, which
//! regenerates every table of EXPERIMENTS.md.  The experiment ids (E1–E11)
//! are defined in DESIGN.md §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slp::compress::{Compressor, RePair};
use slp::{families, NormalFormSlp};
use spanner_automata::nfa::Nfa;
use spanner_workloads::documents;
use std::time::{Duration, Instant};

/// A named compressed document used as a benchmark case.
pub struct DocCase {
    /// Human-readable case name (used as the Criterion / table id).
    pub name: String,
    /// The compressed document.
    pub slp: NormalFormSlp<u8>,
}

impl DocCase {
    /// Document length `d`.
    pub fn doc_len(&self) -> u64 {
        self.slp.document_len()
    }

    /// SLP size `size(S)`.
    pub fn slp_size(&self) -> usize {
        self.slp.size()
    }
}

/// The unary family `a^(2^n)` — the paper's own example of exponential
/// compression (SLP size `O(n)`).
pub fn unary_family(exponents: &[u32]) -> Vec<DocCase> {
    exponents
        .iter()
        .map(|&n| DocCase {
            name: format!("a^2^{n}"),
            slp: families::power_of_two_unary(b'a', n),
        })
        .collect()
}

/// The `(ab)^k` family: every `ab` occurrence is one result of the
/// `ab_blocks` query, so the result count equals `k`.
pub fn ab_family(ks: &[u64]) -> Vec<DocCase> {
    ks.iter()
        .map(|&k| DocCase {
            name: format!("(ab)^{k}"),
            slp: families::power_word(b"ab", k),
        })
        .collect()
}

/// Synthetic server logs of growing size, compressed with batched Re-Pair.
pub fn log_family(line_counts: &[usize]) -> Vec<DocCase> {
    line_counts
        .iter()
        .map(|&lines| {
            let doc = documents::repetitive_log(&documents::LogOptions {
                lines,
                templates: 8,
                seed: 42,
            });
            DocCase {
                name: format!("log-{lines}"),
                slp: RePair::default().compress(&doc),
            }
        })
        .collect()
}

/// Documents of fixed length with a repetitiveness sweep (experiment E6);
/// returns `(novelty, explicit document, its Re-Pair SLP)` triples.
pub fn repetitiveness_family(
    length: usize,
    novelties: &[f64],
) -> Vec<(f64, Vec<u8>, NormalFormSlp<u8>)> {
    novelties
        .iter()
        .map(|&novelty| {
            let doc = documents::tunable_repetitiveness(length, 32, novelty, 7);
            let slp = RePair::default().compress(&doc);
            (novelty, doc, slp)
        })
        .collect()
}

/// A pseudo-random ε-free NFA over the byte alphabet `{a, b}` with `q`
/// states (used by the membership substrate experiment E7).
pub fn random_byte_nfa(q: usize, seed: u64) -> Nfa<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nfa = Nfa::with_states(q);
    for p in 0..q {
        for &c in b"ab" {
            // Between one and three successors per (state, symbol).
            let succs = 1 + (rng.gen_range(0..3usize));
            for _ in 0..succs {
                nfa.add_transition(p, c, rng.gen_range(0..q));
            }
        }
    }
    nfa.set_accepting(q - 1, true);
    nfa
}

/// Wall-clock timing of a closure.
pub fn time<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Delay statistics of an enumeration: time-to-first result, maximum and
/// mean delay between consecutive results, and the number of results drawn.
#[derive(Debug, Clone, Copy)]
pub struct DelayStats {
    /// Time from starting the iterator to the first result.
    pub first: Duration,
    /// Maximum delay between two consecutive results.
    pub max_delay: Duration,
    /// Mean delay between two consecutive results.
    pub mean_delay: Duration,
    /// Number of results drawn.
    pub results: usize,
}

/// Draws up to `limit` results from an iterator and records the delays.
pub fn measure_delays<I: Iterator>(mut iter: I, limit: usize) -> DelayStats {
    let mut last = Instant::now();
    let start = last;
    let mut first = Duration::ZERO;
    let mut max_delay = Duration::ZERO;
    let mut total = Duration::ZERO;
    let mut results = 0usize;
    while results < limit {
        match iter.next() {
            None => break,
            Some(_) => {
                let now = Instant::now();
                let delta = now - last;
                last = now;
                if results == 0 {
                    first = now - start;
                } else {
                    max_delay = max_delay.max(delta);
                    total += delta;
                }
                results += 1;
            }
        }
    }
    DelayStats {
        first,
        max_delay,
        mean_delay: if results > 1 {
            total / (results as u32 - 1)
        } else {
            Duration::ZERO
        },
        results,
    }
}

/// Formats a duration in microseconds with three decimals (table output).
pub fn us(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

/// Prints a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_expected_sizes() {
        let unary = unary_family(&[4, 8]);
        assert_eq!(unary[0].doc_len(), 16);
        assert_eq!(unary[1].doc_len(), 256);
        assert!(unary[1].slp_size() < 40);
        let ab = ab_family(&[3, 10]);
        assert_eq!(ab[0].doc_len(), 6);
        assert_eq!(ab[1].doc_len(), 20);
        let logs = log_family(&[10]);
        assert!(logs[0].doc_len() > 100);
    }

    #[test]
    fn repetitiveness_sweep_produces_decreasing_compressibility() {
        let sweep = repetitiveness_family(4096, &[0.0, 1.0]);
        assert!(sweep[0].2.size() < sweep[1].2.size());
        assert_eq!(sweep[0].1.len(), 4096);
    }

    #[test]
    fn random_nfa_is_reproducible() {
        let a = random_byte_nfa(8, 1);
        let b = random_byte_nfa(8, 1);
        assert_eq!(a.num_transitions(), b.num_transitions());
        assert_eq!(a.num_states(), 8);
    }

    #[test]
    fn delay_measurement_counts_results() {
        let stats = measure_delays(0..100, 10);
        assert_eq!(stats.results, 10);
        let stats = measure_delays(0..3, 10);
        assert_eq!(stats.results, 3);
    }
}
