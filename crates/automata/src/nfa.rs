//! Nondeterministic finite automata with ε-transitions (Section 2 of the
//! paper), generic over the alphabet.

use crate::dfa::Dfa;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

/// Index of an automaton state.  States are dense `0..num_states()`; the
/// paper numbers them `1..q` with start state `1`, we use `0..q` with a
/// configurable start state (default `0`).
pub type StateId = usize;

/// A transition label: a symbol of the (generic) alphabet or ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label<A> {
    /// A proper alphabet symbol.
    Symbol(A),
    /// The empty word ε.
    Epsilon,
}

/// A nondeterministic finite automaton `M = (Q, Σ, δ, q₀, F)` over a generic
/// alphabet `A`.
///
/// The size measure `|M|` used in the paper's bounds is the number of
/// transitions ([`Nfa::num_transitions`]).
#[derive(Debug, Clone)]
pub struct Nfa<A> {
    /// transitions[p] = list of (label, target) arcs leaving p.
    transitions: Vec<Vec<(Label<A>, StateId)>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl<A: Copy + Eq + Hash + Ord + Debug> Default for Nfa<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Copy + Eq + Hash + Ord + Debug> Nfa<A> {
    /// Creates an automaton with a single (non-accepting) start state `0`.
    pub fn new() -> Self {
        Nfa {
            transitions: vec![Vec::new()],
            start: 0,
            accepting: vec![false],
        }
    }

    /// Creates an automaton with `n ≥ 1` states and start state `0`.
    pub fn with_states(n: usize) -> Self {
        assert!(n >= 1, "an automaton needs at least one state");
        Nfa {
            transitions: vec![Vec::new(); n],
            start: 0,
            accepting: vec![false; n],
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(Vec::new());
        self.accepting.push(false);
        self.transitions.len() - 1
    }

    /// Number of states `q = |Q|`.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Number of transitions, the paper's `|M|`.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The start state `q₀`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        assert!(s < self.num_states());
        self.start = s;
    }

    /// Marks `s` as accepting (or not).
    pub fn set_accepting(&mut self, s: StateId, accepting: bool) {
        self.accepting[s] = accepting;
    }

    /// `true` if `s` is an accepting state.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s]
    }

    /// The set of accepting states `F`.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.num_states())
            .filter(|&s| self.accepting[s])
            .collect()
    }

    /// Adds the transition `p --x--> q`.
    pub fn add_transition(&mut self, p: StateId, x: A, q: StateId) {
        assert!(p < self.num_states() && q < self.num_states());
        self.transitions[p].push((Label::Symbol(x), q));
    }

    /// Adds the ε-transition `p --ε--> q`.
    pub fn add_epsilon(&mut self, p: StateId, q: StateId) {
        assert!(p < self.num_states() && q < self.num_states());
        self.transitions[p].push((Label::Epsilon, q));
    }

    /// The arcs leaving state `p`.
    pub fn transitions_from(&self, p: StateId) -> &[(Label<A>, StateId)] {
        &self.transitions[p]
    }

    /// Iterates over all arcs `(p, label, q)`.
    pub fn arcs(&self) -> impl Iterator<Item = (StateId, Label<A>, StateId)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .flat_map(|(p, arcs)| arcs.iter().map(move |&(l, q)| (p, l, q)))
    }

    /// `true` if the automaton has at least one ε-transition.
    pub fn has_epsilon(&self) -> bool {
        self.arcs().any(|(_, l, _)| matches!(l, Label::Epsilon))
    }

    /// The sorted set of alphabet symbols actually used on transitions.
    pub fn alphabet(&self) -> Vec<A> {
        let mut set: Vec<A> = self
            .arcs()
            .filter_map(|(_, l, _)| match l {
                Label::Symbol(a) => Some(a),
                Label::Epsilon => None,
            })
            .collect();
        set.sort();
        set.dedup();
        set
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = states.clone();
        let mut stack: Vec<StateId> = states.iter().copied().collect();
        while let Some(p) = stack.pop() {
            for &(l, q) in &self.transitions[p] {
                if matches!(l, Label::Epsilon) && closure.insert(q) {
                    stack.push(q);
                }
            }
        }
        closure
    }

    /// Simulates the automaton on a word (subset simulation,
    /// `O(|w| · |M|)`); returns `true` iff the word is accepted.
    pub fn accepts(&self, word: &[A]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for &x in word {
            let mut next = BTreeSet::new();
            for &p in &current {
                for &(l, q) in &self.transitions[p] {
                    if l == Label::Symbol(x) {
                        next.insert(q);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.epsilon_closure(&next);
        }
        current.iter().any(|&s| self.accepting[s])
    }

    /// `true` if the automaton is deterministic: no ε-transitions and at most
    /// one successor per (state, symbol).
    pub fn is_deterministic(&self) -> bool {
        for (p, arcs) in self.transitions.iter().enumerate() {
            let mut seen = HashSet::new();
            for &(l, _) in arcs {
                match l {
                    Label::Epsilon => return false,
                    Label::Symbol(a) => {
                        if !seen.insert(a) {
                            let _ = p;
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Returns an equivalent NFA without ε-transitions (standard closure
    /// construction; the language is unchanged).
    pub fn without_epsilon(&self) -> Nfa<A> {
        let mut out = Nfa::with_states(self.num_states());
        out.set_start(self.start);
        for p in 0..self.num_states() {
            let closure = self.epsilon_closure(&BTreeSet::from([p]));
            // p is accepting if its closure contains an accepting state.
            if closure.iter().any(|&s| self.accepting[s]) {
                out.set_accepting(p, true);
            }
            let mut added: HashSet<(A, StateId)> = HashSet::new();
            for &r in &closure {
                for &(l, q) in &self.transitions[r] {
                    if let Label::Symbol(a) = l {
                        if added.insert((a, q)) {
                            out.add_transition(p, a, q);
                        }
                    }
                }
            }
        }
        out
    }

    /// Subset construction: an equivalent DFA.  Only constructs reachable
    /// subset states; worst-case exponential, as noted in Section 8 of the
    /// paper (the blow-up affects only preprocessing / combined complexity).
    pub fn determinize(&self) -> Dfa<A> {
        let alphabet = self.alphabet();
        let start_set = self.epsilon_closure(&BTreeSet::from([self.start]));
        let mut index: HashMap<BTreeSet<StateId>, StateId> = HashMap::new();
        let mut sets: Vec<BTreeSet<StateId>> = vec![start_set.clone()];
        index.insert(start_set, 0);
        let mut dfa = Dfa::with_states(1);
        let mut queue = vec![0usize];
        while let Some(i) = queue.pop() {
            let set = sets[i].clone();
            if set.iter().any(|&s| self.accepting[s]) {
                dfa.set_accepting(i, true);
            }
            for &a in &alphabet {
                let mut next = BTreeSet::new();
                for &p in &set {
                    for &(l, q) in &self.transitions[p] {
                        if l == Label::Symbol(a) {
                            next.insert(q);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                let next = self.epsilon_closure(&next);
                let j = match index.get(&next) {
                    Some(&j) => j,
                    None => {
                        let j = dfa.add_state();
                        sets.push(next.clone());
                        index.insert(next, j);
                        queue.push(j);
                        j
                    }
                };
                dfa.add_transition(i, a, j);
            }
        }
        dfa
    }

    /// Reverses every transition and swaps start/accepting roles, producing
    /// an NFA for the reversed language.  (A fresh start state with
    /// ε-transitions to all former accepting states is added.)
    pub fn reversed(&self) -> Nfa<A> {
        let mut out = Nfa::with_states(self.num_states() + 1);
        let fresh_start = self.num_states();
        out.set_start(fresh_start);
        out.set_accepting(self.start, true);
        for (p, l, q) in self.arcs() {
            match l {
                Label::Symbol(a) => out.add_transition(q, a, p),
                Label::Epsilon => out.add_epsilon(q, p),
            }
        }
        for s in self.accepting_states() {
            out.add_epsilon(fresh_start, s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for the language (a|b)*abb over bytes.
    fn abb_nfa() -> Nfa<u8> {
        let mut n = Nfa::with_states(4);
        n.add_transition(0, b'a', 0);
        n.add_transition(0, b'b', 0);
        n.add_transition(0, b'a', 1);
        n.add_transition(1, b'b', 2);
        n.add_transition(2, b'b', 3);
        n.set_accepting(3, true);
        n
    }

    #[test]
    fn simulation_accepts_and_rejects() {
        let n = abb_nfa();
        assert!(n.accepts(b"abb"));
        assert!(n.accepts(b"aababb"));
        assert!(n.accepts(b"bbbbabb"));
        assert!(!n.accepts(b"ab"));
        assert!(!n.accepts(b""));
        assert!(!n.accepts(b"abba"));
    }

    #[test]
    fn epsilon_closure_and_removal() {
        // 0 --eps--> 1 --a--> 2(accepting), 0 --b--> 2
        let mut n = Nfa::with_states(3);
        n.add_epsilon(0, 1);
        n.add_transition(1, b'a', 2);
        n.add_transition(0, b'b', 2);
        n.set_accepting(2, true);
        assert!(n.has_epsilon());
        assert!(n.accepts(b"a"));
        assert!(n.accepts(b"b"));
        assert!(!n.accepts(b""));

        let e = n.without_epsilon();
        assert!(!e.has_epsilon());
        assert!(e.accepts(b"a"));
        assert!(e.accepts(b"b"));
        assert!(!e.accepts(b""));
        assert!(!e.accepts(b"ab"));
    }

    #[test]
    fn epsilon_removal_preserves_acceptance_of_empty_word() {
        // 0 --eps--> 1 (accepting): the empty word is accepted.
        let mut n = Nfa::with_states(2);
        n.add_epsilon(0, 1);
        n.set_accepting(1, true);
        assert!(n.accepts(b""));
        let e = n.without_epsilon();
        assert!(e.accepts(b""));
    }

    #[test]
    fn determinization_preserves_language() {
        let n = abb_nfa();
        let d = n.determinize();
        for w in [
            &b""[..],
            b"a",
            b"b",
            b"abb",
            b"aabb",
            b"ababb",
            b"abab",
            b"bbabb",
            b"abbabb",
            b"abbb",
        ] {
            assert_eq!(n.accepts(w), d.accepts(w), "word {:?}", w);
        }
        assert!(d.to_nfa().is_deterministic());
    }

    #[test]
    fn deterministic_check() {
        let mut n = Nfa::with_states(2);
        n.add_transition(0, b'a', 1);
        assert!(n.is_deterministic());
        n.add_transition(0, b'a', 0);
        assert!(!n.is_deterministic());
        let mut n2 = Nfa::<u8>::with_states(2);
        n2.add_epsilon(0, 1);
        assert!(!n2.is_deterministic());
    }

    #[test]
    fn arcs_and_alphabet() {
        let n = abb_nfa();
        assert_eq!(n.num_transitions(), 5);
        assert_eq!(n.alphabet(), vec![b'a', b'b']);
        assert_eq!(n.accepting_states(), vec![3]);
    }

    #[test]
    fn reversed_language() {
        let n = abb_nfa();
        let r = n.reversed();
        // The reverse of (a|b)*abb is bba(a|b)*.
        assert!(r.accepts(b"bba"));
        assert!(r.accepts(b"bbaba"));
        assert!(!r.accepts(b"abb"));
    }

    #[test]
    fn generic_alphabet_works() {
        // Alphabet of pairs, to make sure nothing assumes bytes.
        let mut n: Nfa<(u8, u8)> = Nfa::with_states(2);
        n.add_transition(0, (1, 2), 1);
        n.set_accepting(1, true);
        assert!(n.accepts(&[(1, 2)]));
        assert!(!n.accepts(&[(2, 1)]));
    }
}
