//! # spanner-automata — finite automata over spanner alphabets
//!
//! Finite-automata substrate for the PODS 2021 paper *"Spanner Evaluation
//! over SLP-Compressed Documents"*.  The paper represents regular spanners
//! as NFAs/DFAs over the extended alphabet `Σ ∪ P(Γ_X)` (terminals plus
//! marker-set symbols); this crate keeps the alphabet fully generic so the
//! same machinery serves
//!
//! * plain regular languages over bytes (for the membership substrate of
//!   Lemma 4.5),
//! * subword-marked languages over `Σ ∪ P(Γ_X)` (built by the `spanner`
//!   crate), and
//! * the "ended" alphabets the evaluator uses internally.
//!
//! Provided components:
//!
//! * [`Nfa`] — nondeterministic finite automata with ε-transitions
//!   (Section 2 of the paper), with simulation, ε-removal
//!   ([`Nfa::without_epsilon`]) and subset construction ([`Nfa::determinize`]).
//! * [`Dfa`] — deterministic automata with partition-refinement minimisation.
//! * [`BoolMatrix`] — `q × q` Boolean matrices with `u64`-blocked
//!   multiplication, the workhorse of Lemma 4.5.
//! * [`membership`] — checking whether the document derived by an SLP belongs
//!   to a regular language **without decompressing** (Lemma 4.5), in time
//!   `O(size(S) · q³ / 64)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod matrix;
pub mod membership;
pub mod nfa;

pub use dfa::Dfa;
pub use matrix::BoolMatrix;
pub use membership::{compressed_membership, transition_matrices};
pub use nfa::{Label, Nfa, StateId};
