//! Boolean `q × q` matrices with `u64`-blocked rows.
//!
//! These are the matrices `M_A` of Lemma 4.5: entry `(i, j)` records whether
//! the automaton can move from state `i` to state `j` while reading the word
//! derived by a non-terminal.  Multiplication composes readings, so the
//! matrix of `A → BC` is `M_B · M_C`.

/// A dense Boolean matrix of dimension `n × n`, rows packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BoolMatrix {
    /// The all-zero matrix of dimension `n × n`.
    pub fn zero(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BoolMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// The identity matrix of dimension `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of `u64` words per (padded) row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `i`.  Bits beyond column `n − 1` (the row
    /// padding up to the word boundary) are always zero.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Mutable access to the packed words of row `i`.  Callers must keep
    /// the padding bits (columns `≥ n`) zero — `PartialEq`, `Hash` and the
    /// word-parallel products all rely on rows being canonical.
    #[inline]
    pub fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Heap footprint of the packed bits in bytes (including the row
    /// padding words — what an admission-weighted cache must charge for).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * std::mem::size_of::<u64>()
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let w = self.bits[i * self.words_per_row + j / 64];
        (w >> (j % 64)) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(i < self.n && j < self.n);
        let idx = i * self.words_per_row + j / 64;
        let mask = 1u64 << (j % 64);
        if value {
            self.bits[idx] |= mask;
        } else {
            self.bits[idx] &= !mask;
        }
    }

    /// Boolean matrix product `self · other` (row-by-row, `u64`-blocked:
    /// `O(n³ / 64)` word operations).
    pub fn multiply(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = BoolMatrix::zero(self.n);
        for i in 0..self.n {
            let row_i = &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row];
            let out_row = i * self.words_per_row;
            for (k, &word) in row_i.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let k_state = k * 64 + bit;
                    let other_row = &other.bits
                        [k_state * other.words_per_row..(k_state + 1) * other.words_per_row];
                    for (j, &ow) in other_row.iter().enumerate() {
                        out.bits[out_row + j] |= ow;
                    }
                }
            }
        }
        out
    }

    /// Element-wise Boolean OR.
    pub fn or(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        out
    }

    /// Reflexive–transitive closure (Warshall with bit-parallel rows):
    /// entry `(i, j)` of the result is `true` iff `j` is reachable from `i`
    /// along edges of `self` (including the empty path).
    pub fn reflexive_transitive_closure(&self) -> BoolMatrix {
        let mut m = self.or(&BoolMatrix::identity(self.n));
        for k in 0..self.n {
            let row_k = m.bits[k * m.words_per_row..(k + 1) * m.words_per_row].to_vec();
            for i in 0..self.n {
                if m.get(i, k) {
                    let base = i * m.words_per_row;
                    for (j, &w) in row_k.iter().enumerate() {
                        m.bits[base + j] |= w;
                    }
                }
            }
        }
        m
    }

    /// Iterator over the column indices set in row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row];
        row.iter().enumerate().flat_map(|(k, &w)| {
            let mut w = w;
            let mut out = Vec::new();
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                out.push(k * 64 + bit);
            }
            out
        })
    }

    /// `true` if any entry in row `i` among the given columns is set.
    pub fn row_intersects(&self, i: usize, columns: &[usize]) -> bool {
        columns.iter().any(|&j| self.get(i, j))
    }
}

impl std::fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BoolMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut a = BoolMatrix::zero(5);
        a.set(0, 3, true);
        a.set(3, 4, true);
        a.set(2, 2, true);
        let id = BoolMatrix::identity(5);
        assert_eq!(a.multiply(&id), a);
        assert_eq!(id.multiply(&a), a);
    }

    #[test]
    fn multiplication_composes_paths() {
        // a: 0 -> 1, b: 1 -> 2  =>  a*b: 0 -> 2
        let mut a = BoolMatrix::zero(3);
        a.set(0, 1, true);
        let mut b = BoolMatrix::zero(3);
        b.set(1, 2, true);
        let ab = a.multiply(&b);
        assert!(ab.get(0, 2));
        assert!(!ab.get(0, 1));
        assert!(!ab.get(1, 2));
    }

    #[test]
    fn multiplication_matches_naive_on_random_matrices() {
        // Deterministic pseudo-random fill over a dimension crossing 64.
        let n = 70;
        let mut a = BoolMatrix::zero(n);
        let mut b = BoolMatrix::zero(n);
        let mut x = 0x12345678u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..n {
            for j in 0..n {
                if next() % 5 == 0 {
                    a.set(i, j, true);
                }
                if next() % 7 == 0 {
                    b.set(i, j, true);
                }
            }
        }
        let fast = a.multiply(&b);
        for i in 0..n {
            for j in 0..n {
                let mut expect = false;
                for k in 0..n {
                    if a.get(i, k) && b.get(k, j) {
                        expect = true;
                        break;
                    }
                }
                assert_eq!(fast.get(i, j), expect, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn closure_reaches_along_chains() {
        let mut a = BoolMatrix::zero(4);
        a.set(0, 1, true);
        a.set(1, 2, true);
        a.set(2, 3, true);
        let c = a.reflexive_transitive_closure();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(i, j), j >= i, "({i},{j})");
            }
        }
    }

    #[test]
    fn row_iter_yields_set_columns() {
        let mut a = BoolMatrix::zero(130);
        a.set(1, 0, true);
        a.set(1, 64, true);
        a.set(1, 129, true);
        let cols: Vec<usize> = a.row_iter(1).collect();
        assert_eq!(cols, vec![0, 64, 129]);
        assert!(a.row_intersects(1, &[5, 64]));
        assert!(!a.row_intersects(1, &[5, 63]));
    }

    #[test]
    fn set_and_clear() {
        let mut a = BoolMatrix::zero(2);
        a.set(1, 1, true);
        assert!(a.get(1, 1));
        a.set(1, 1, false);
        assert!(!a.get(1, 1));
        let dbg = format!("{:?}", a);
        assert!(dbg.contains("2x2"));
    }
}
