//! Deterministic finite automata, used by the enumeration algorithm of
//! Section 8 (Lemma 8.8 requires determinism to rule out duplicate results).

use crate::nfa::{Nfa, StateId};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// A deterministic finite automaton over a generic alphabet `A`.
///
/// Transitions are partial: a missing `(state, symbol)` entry means the run
/// dies (equivalently, moves to an implicit rejecting sink).
#[derive(Debug, Clone)]
pub struct Dfa<A> {
    transitions: Vec<HashMap<A, StateId>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl<A: Copy + Eq + Hash + Ord + Debug> Default for Dfa<A> {
    fn default() -> Self {
        Self::with_states(1)
    }
}

impl<A: Copy + Eq + Hash + Ord + Debug> Dfa<A> {
    /// Creates a DFA with `n ≥ 1` states and start state `0`.
    pub fn with_states(n: usize) -> Self {
        assert!(n >= 1);
        Dfa {
            transitions: vec![HashMap::new(); n],
            start: 0,
            accepting: vec![false; n],
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(HashMap::new());
        self.accepting.push(false);
        self.transitions.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Number of transitions (the paper's `|M|`).
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(HashMap::len).sum()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        assert!(s < self.num_states());
        self.start = s;
    }

    /// Marks a state as accepting (or not).
    pub fn set_accepting(&mut self, s: StateId, accepting: bool) {
        self.accepting[s] = accepting;
    }

    /// `true` if `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s]
    }

    /// The accepting states.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.num_states())
            .filter(|&s| self.accepting[s])
            .collect()
    }

    /// Adds (or overwrites) the transition `p --x--> q`.
    pub fn add_transition(&mut self, p: StateId, x: A, q: StateId) {
        assert!(p < self.num_states() && q < self.num_states());
        self.transitions[p].insert(x, q);
    }

    /// The successor `δ(p, x)`, if defined.
    pub fn step(&self, p: StateId, x: A) -> Option<StateId> {
        self.transitions[p].get(&x).copied()
    }

    /// Runs the DFA on a word from the start state; `None` if the run dies.
    pub fn run(&self, word: &[A]) -> Option<StateId> {
        let mut state = self.start;
        for &x in word {
            state = self.step(state, x)?;
        }
        Some(state)
    }

    /// `true` iff the word is accepted.
    pub fn accepts(&self, word: &[A]) -> bool {
        self.run(word).map(|s| self.accepting[s]).unwrap_or(false)
    }

    /// Iterates over all arcs `(p, symbol, q)`.
    pub fn arcs(&self) -> impl Iterator<Item = (StateId, A, StateId)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .flat_map(|(p, m)| m.iter().map(move |(&a, &q)| (p, a, q)))
    }

    /// The sorted alphabet of symbols used on transitions.
    pub fn alphabet(&self) -> Vec<A> {
        let mut set: Vec<A> = self.arcs().map(|(_, a, _)| a).collect();
        set.sort();
        set.dedup();
        set
    }

    /// `true` if every state has a transition for every symbol in `alphabet`.
    pub fn is_complete_for(&self, alphabet: &[A]) -> bool {
        self.transitions
            .iter()
            .all(|m| alphabet.iter().all(|a| m.contains_key(a)))
    }

    /// Converts to an equivalent [`Nfa`] (no ε-transitions, deterministic).
    pub fn to_nfa(&self) -> Nfa<A> {
        let mut n = Nfa::with_states(self.num_states());
        n.set_start(self.start);
        for (p, a, q) in self.arcs() {
            n.add_transition(p, a, q);
        }
        for s in self.accepting_states() {
            n.set_accepting(s, true);
        }
        n
    }

    /// Removes states not reachable from the start state.
    pub fn trim(&self) -> Dfa<A> {
        let mut reachable = vec![false; self.num_states()];
        reachable[self.start] = true;
        let mut stack = vec![self.start];
        while let Some(p) = stack.pop() {
            for (&_a, &q) in &self.transitions[p] {
                if !reachable[q] {
                    reachable[q] = true;
                    stack.push(q);
                }
            }
        }
        let mut remap = vec![usize::MAX; self.num_states()];
        let mut next = 0usize;
        for (i, &r) in reachable.iter().enumerate() {
            if r {
                remap[i] = next;
                next += 1;
            }
        }
        let mut out = Dfa::with_states(next.max(1));
        out.set_start(remap[self.start]);
        for (p, a, q) in self.arcs() {
            if reachable[p] && reachable[q] {
                out.add_transition(remap[p], a, remap[q]);
            }
        }
        for (i, &r) in reachable.iter().enumerate() {
            if r && self.accepting[i] {
                out.set_accepting(remap[i], true);
            }
        }
        out
    }

    /// Minimises the DFA with Moore's partition-refinement algorithm
    /// (`O(q² · |Σ|)`), after trimming unreachable states.  The language is
    /// unchanged.
    pub fn minimize(&self) -> Dfa<A> {
        let dfa = self.trim();
        let n = dfa.num_states();
        let alphabet = dfa.alphabet();
        // Initial partition: accepting vs non-accepting (class ids 0/1).
        let mut class: Vec<usize> = dfa
            .accepting
            .iter()
            .map(|&acc| if acc { 0 } else { 1 })
            .collect();
        loop {
            let old_count = class.iter().collect::<std::collections::HashSet<_>>().len();
            // Signature of a state: (its class, class of the successor per symbol).
            let mut signatures: HashMap<(usize, Vec<Option<usize>>), usize> = HashMap::new();
            let mut new_class = vec![0usize; n];
            for s in 0..n {
                let sig: Vec<Option<usize>> = alphabet
                    .iter()
                    .map(|&a| dfa.step(s, a).map(|t| class[t]))
                    .collect();
                let key = (class[s], sig);
                let next_id = signatures.len();
                let id = *signatures.entry(key).or_insert(next_id);
                new_class[s] = id;
            }
            // Moore's algorithm terminates when refining no longer splits any class.
            let stable = signatures.len() == old_count;
            class = new_class;
            if stable {
                break;
            }
        }
        let num_classes = class.iter().copied().max().unwrap_or(0) + 1;
        let mut out = Dfa::with_states(num_classes);
        out.set_start(class[dfa.start]);
        for (p, a, q) in dfa.arcs() {
            out.add_transition(class[p], a, class[q]);
        }
        for (s, &c) in class.iter().enumerate().take(n) {
            if dfa.accepting[s] {
                out.set_accepting(c, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA for (a|b)*abb.
    fn abb_dfa() -> Dfa<u8> {
        let mut d = Dfa::with_states(4);
        d.add_transition(0, b'a', 1);
        d.add_transition(0, b'b', 0);
        d.add_transition(1, b'a', 1);
        d.add_transition(1, b'b', 2);
        d.add_transition(2, b'a', 1);
        d.add_transition(2, b'b', 3);
        d.add_transition(3, b'a', 1);
        d.add_transition(3, b'b', 0);
        d.set_accepting(3, true);
        d
    }

    #[test]
    fn runs_and_accepts() {
        let d = abb_dfa();
        assert!(d.accepts(b"abb"));
        assert!(d.accepts(b"ababb"));
        assert!(!d.accepts(b"ab"));
        assert!(!d.accepts(b""));
        assert_eq!(d.run(b"ab"), Some(2));
        // A symbol without a transition kills the run.
        assert_eq!(d.run(b"xyz"), None);
        assert!(!d.accepts(b"x"));
    }

    #[test]
    fn completeness_check() {
        let d = abb_dfa();
        assert!(d.is_complete_for(b"ab"));
        assert!(!d.is_complete_for(b"abc"));
    }

    #[test]
    fn round_trip_through_nfa() {
        let d = abb_dfa();
        let n = d.to_nfa();
        assert!(n.is_deterministic());
        for w in [&b"abb"[..], b"ababb", b"ab", b"bbb"] {
            assert_eq!(d.accepts(w), n.accepts(w));
        }
    }

    #[test]
    fn trim_removes_unreachable_states() {
        let mut d = abb_dfa();
        let junk = d.add_state();
        d.add_transition(junk, b'a', junk);
        d.set_accepting(junk, true);
        let t = d.trim();
        assert_eq!(t.num_states(), 4);
        assert!(t.accepts(b"abb"));
        assert!(!t.accepts(b"a"));
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // Build a DFA for "words over {a} of even length" with redundant states:
        // 0 -a-> 1 -a-> 2 -a-> 3 -a-> 0, accepting {0, 2}: minimal has 2 states.
        let mut d = Dfa::with_states(4);
        d.add_transition(0, b'a', 1);
        d.add_transition(1, b'a', 2);
        d.add_transition(2, b'a', 3);
        d.add_transition(3, b'a', 0);
        d.set_accepting(0, true);
        d.set_accepting(2, true);
        let m = d.minimize();
        assert_eq!(m.num_states(), 2);
        for len in 0..10 {
            let w = vec![b'a'; len];
            assert_eq!(m.accepts(&w), len % 2 == 0, "len {len}");
        }
    }

    #[test]
    fn minimization_preserves_language_of_abb() {
        let d = abb_dfa();
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        for w in [
            &b""[..],
            b"a",
            b"b",
            b"abb",
            b"aabb",
            b"ababb",
            b"abab",
            b"bbabb",
            b"abbabb",
            b"abbb",
        ] {
            assert_eq!(d.accepts(w), m.accepts(w), "word {:?}", w);
        }
    }
}
