//! Membership of an SLP-compressed document in a regular language
//! (Lemma 4.5 of the paper), without decompression.
//!
//! For every non-terminal `A` of the SLP a Boolean matrix `M_A` is computed
//! whose entry `(i, j)` says whether the automaton can move from state `i`
//! to state `j` while reading `D(A)`.  Leaf matrices come from the
//! transition relation; for `A → BC` the matrix is the Boolean product
//! `M_B · M_C`.  The document is accepted iff some accepting state is
//! reachable from the start state in `M_{S₀}`.

use crate::matrix::BoolMatrix;
use crate::nfa::{Label, Nfa};
use slp::{NfRule, NormalFormSlp, Terminal};
use std::collections::HashMap;

/// Computes the per-non-terminal reachability matrices of Lemma 4.5 for an
/// NFA (ε-transitions are handled through closure matrices).
///
/// The result is indexed by non-terminal; entry `(i, j)` of `matrices[A]` is
/// `true` iff `j ∈ δ(i, D(A))` in the ε-free sense, i.e. reading `D(A)` with
/// arbitrary interleaved ε-moves can take the automaton from `i` to `j`
/// (a *leading* ε-closure is already folded in; apply
/// [`accepts_from_matrices`] for the acceptance check, which also accounts
/// for the trailing closure and the empty-word corner case).
pub fn transition_matrices<T: Terminal>(nfa: &Nfa<T>, slp: &NormalFormSlp<T>) -> Vec<BoolMatrix> {
    let q = nfa.num_states();
    // ε-closure matrix C (reflexive-transitive closure of ε-arcs).
    let mut eps = BoolMatrix::zero(q);
    for (p, l, r) in nfa.arcs() {
        if matches!(l, Label::Epsilon) {
            eps.set(p, r, true);
        }
    }
    let closure = eps.reflexive_transitive_closure();

    // Per-terminal one-step matrices  C · A_x · C.
    let mut per_terminal: HashMap<T, BoolMatrix> = HashMap::new();
    for x in slp.terminals() {
        let mut m = BoolMatrix::zero(q);
        for (p, l, r) in nfa.arcs() {
            if l == Label::Symbol(x) {
                m.set(p, r, true);
            }
        }
        let m = closure.multiply(&m).multiply(&closure);
        per_terminal.insert(x, m);
    }

    let mut matrices: Vec<BoolMatrix> = vec![BoolMatrix::zero(q); slp.num_non_terminals()];
    for &a in slp.bottom_up_order() {
        matrices[a.index()] = match slp.rule(a) {
            NfRule::Leaf(x) => per_terminal
                .get(&x)
                .expect("terminal matrix precomputed for every leaf")
                .clone(),
            NfRule::Pair(b, c) => matrices[b.index()].multiply(&matrices[c.index()]),
        };
    }
    matrices
}

/// Acceptance check from precomputed matrices: `true` iff the document
/// derived by the SLP is in `L(nfa)`.
pub fn accepts_from_matrices<T: Terminal>(
    nfa: &Nfa<T>,
    slp: &NormalFormSlp<T>,
    matrices: &[BoolMatrix],
) -> bool {
    let accepting = nfa.accepting_states();
    let root = &matrices[slp.start().index()];
    root.row_intersects(nfa.start(), &accepting)
}

/// Checks whether the SLP-compressed document belongs to the regular
/// language of the automaton (Lemma 4.5): time `O(size(S) · q³ / 64)` and
/// space `O(size(S) · q²)`, never decompressing the document.
pub fn compressed_membership<T: Terminal>(nfa: &Nfa<T>, slp: &NormalFormSlp<T>) -> bool {
    let matrices = transition_matrices(nfa, slp);
    accepts_from_matrices(nfa, slp, &matrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Compressor, RePair};
    use slp::families;

    /// NFA over {a,b} for the language (a|b)*abb.
    fn abb_nfa() -> Nfa<u8> {
        let mut n = Nfa::with_states(4);
        n.add_transition(0, b'a', 0);
        n.add_transition(0, b'b', 0);
        n.add_transition(0, b'a', 1);
        n.add_transition(1, b'b', 2);
        n.add_transition(2, b'b', 3);
        n.set_accepting(3, true);
        n
    }

    /// NFA with ε-transitions for a*b* .
    fn a_star_b_star() -> Nfa<u8> {
        let mut n = Nfa::with_states(2);
        n.add_transition(0, b'a', 0);
        n.add_epsilon(0, 1);
        n.add_transition(1, b'b', 1);
        n.set_accepting(1, true);
        n
    }

    #[test]
    fn compressed_membership_agrees_with_simulation() {
        let nfa = abb_nfa();
        for doc in [
            b"abb".to_vec(),
            b"aababb".to_vec(),
            b"abba".to_vec(),
            b"bbbb".to_vec(),
            b"abbabbabbabb".to_vec(),
        ] {
            let slp = RePair::default().compress(&doc);
            assert_eq!(
                compressed_membership(&nfa, &slp),
                nfa.accepts(&doc),
                "doc {:?}",
                String::from_utf8_lossy(&doc)
            );
        }
    }

    #[test]
    fn epsilon_transitions_are_respected() {
        let nfa = a_star_b_star();
        for (doc, expect) in [
            (&b"aaabbb"[..], true),
            (b"aaaa", true),
            (b"bbbb", true),
            (b"ab", true),
            (b"ba", false),
            (b"aba", false),
        ] {
            let slp = NormalFormSlp::from_document(doc).unwrap();
            assert_eq!(compressed_membership(&nfa, &slp), expect, "doc {:?}", doc);
        }
    }

    #[test]
    fn works_on_exponentially_compressed_documents() {
        // a^(2^30) is a member of a* but contains no b.
        let slp = families::power_of_two_unary(b'a', 30);
        let nfa = a_star_b_star();
        assert!(compressed_membership(&nfa, &slp));

        // (ab)^k ends with b, so it is not in (a|b)*abb unless ...bb occurs.
        let slp = families::power_word(b"ab", 1 << 25);
        assert!(!compressed_membership(&abb_nfa(), &slp));
        // but (ab)^k·b ends with "abb"; append one b via a tiny wrapper grammar.
        let appended = slp.append_terminal(b'b');
        assert!(compressed_membership(&abb_nfa(), &appended));
    }

    #[test]
    fn matrices_expose_intermediate_reachability() {
        let nfa = abb_nfa();
        let slp = NormalFormSlp::from_document(b"ab").unwrap();
        let matrices = transition_matrices(&nfa, &slp);
        let root = &matrices[slp.start().index()];
        // Reading "ab" from state 0 can end in state 0 (self-loops) or 2.
        assert!(root.get(0, 0));
        assert!(root.get(0, 2));
        assert!(!root.get(0, 3));
    }

    #[test]
    fn single_character_document() {
        let nfa = abb_nfa();
        let slp = NormalFormSlp::from_document(b"a").unwrap();
        assert!(!compressed_membership(&nfa, &slp));
        let mut accepts_a = Nfa::with_states(2);
        accepts_a.add_transition(0, b'a', 1);
        accepts_a.set_accepting(1, true);
        assert!(compressed_membership(&accepts_a, &slp));
    }
}
