//! Direct SLP constructions for classic highly compressible string families.
//!
//! These are the documents for which compressed evaluation shines: their
//! SLPs have size `O(log d)` (exponentially smaller than the document), so
//! the paper's `O(size(S))`-preprocessing algorithms become *sublinear* in
//! the document length.  They are used throughout the benchmark suite
//! (experiments E1–E5 in DESIGN.md).

use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};

/// SLP for the unary document `c^(2^n)`: `n + 1` rules, depth `n + 1`.
///
/// This is the paper's own example of exponential compression (Section 4.2).
pub fn power_of_two_unary(c: u8, n: u32) -> NormalFormSlp<u8> {
    let mut rules = vec![NfRule::Leaf(c)];
    for i in 0..n {
        rules.push(NfRule::Pair(NonTerminal(i), NonTerminal(i)));
    }
    NormalFormSlp::new(rules, NonTerminal(n)).expect("family construction is valid")
}

/// SLP for `w^k` (the word `w` repeated `k` times), built by binary
/// exponentiation: `O(|w| + log k)` rules.
pub fn power_word<T: Terminal>(w: &[T], k: u64) -> NormalFormSlp<T> {
    assert!(!w.is_empty(), "the repeated word must be non-empty");
    assert!(k >= 1, "the repetition count must be at least 1");
    let base = NormalFormSlp::from_document(w).expect("non-empty word");
    let mut rules: Vec<NfRule<T>> = base.rules().to_vec();
    let push_pair = |rules: &mut Vec<NfRule<T>>, l: NonTerminal, r: NonTerminal| {
        rules.push(NfRule::Pair(l, r));
        NonTerminal((rules.len() - 1) as u32)
    };
    // Binary exponentiation: maintain `square = w^(2^i)` and an accumulator.
    let mut square = base.start();
    let mut acc: Option<NonTerminal> = None;
    let mut remaining = k;
    loop {
        if remaining & 1 == 1 {
            acc = Some(match acc {
                None => square,
                Some(a) => push_pair(&mut rules, a, square),
            });
        }
        remaining >>= 1;
        if remaining == 0 {
            break;
        }
        square = push_pair(&mut rules, square, square);
    }
    NormalFormSlp::new(rules, acc.expect("k >= 1")).expect("family construction is valid")
}

/// SLP for the `n`-th Fibonacci word over `{a, b}`:
/// `F₁ = b`, `F₂ = a`, `Fₙ = Fₙ₋₁ · Fₙ₋₂`.  `n` rules, document length
/// `fib(n)` (exponential in `n`).
pub fn fibonacci_word(n: u32) -> NormalFormSlp<u8> {
    assert!(n >= 1);
    // Rule 0: leaf b (= F1), rule 1: leaf a (= F2), rule i: F_{i+1} = F_i F_{i-1}.
    let mut rules = vec![NfRule::Leaf(b'b'), NfRule::Leaf(b'a')];
    if n == 1 {
        return NormalFormSlp::new(rules, NonTerminal(0)).unwrap();
    }
    for i in 2..n {
        let prev = NonTerminal(i - 1);
        let prev2 = NonTerminal(i - 2);
        rules.push(NfRule::Pair(prev, prev2));
    }
    NormalFormSlp::new(rules, NonTerminal(n - 1)).expect("family construction is valid")
}

/// SLP for the Thue–Morse word of order `n` (length `2^n`) over `{a, b}`.
///
/// Uses the pair of mutually recursive families
/// `Aₙ = Aₙ₋₁·Bₙ₋₁`, `Bₙ = Bₙ₋₁·Aₙ₋₁`: `2n + 2` rules.
pub fn thue_morse(n: u32) -> NormalFormSlp<u8> {
    // Rules 0,1: leaves a, b.  For level i >= 1: A_i = 2i, B_i = 2i+1.
    let mut rules = vec![NfRule::Leaf(b'a'), NfRule::Leaf(b'b')];
    if n == 0 {
        return NormalFormSlp::new(rules, NonTerminal(0)).unwrap();
    }
    for i in 1..=n {
        let (prev_a, prev_b) = if i == 1 {
            (NonTerminal(0), NonTerminal(1))
        } else {
            (NonTerminal(2 * (i - 1)), NonTerminal(2 * (i - 1) + 1))
        };
        rules.push(NfRule::Pair(prev_a, prev_b)); // A_i at index 2i
        rules.push(NfRule::Pair(prev_b, prev_a)); // B_i at index 2i+1
    }
    NormalFormSlp::new(rules, NonTerminal(2 * n)).expect("family construction is valid")
}

/// A block-copy document: starts from `seed` and performs `rounds` rounds of
/// "append a copy of the current document"; with a distinct separator byte
/// appended after each round when `separator` is given.
/// Size `O(|seed| + rounds)`, length `≈ |seed| · 2^rounds`.
pub fn doubling_document(seed: &[u8], rounds: u32, separator: Option<u8>) -> NormalFormSlp<u8> {
    assert!(!seed.is_empty());
    let mut slp = NormalFormSlp::from_document(seed).expect("non-empty seed");
    for _ in 0..rounds {
        let mut rules = slp.rules().to_vec();
        let root = slp.start();
        rules.push(NfRule::Pair(root, root));
        let mut new_root = NonTerminal((rules.len() - 1) as u32);
        if let Some(sep) = separator {
            let leaf = rules
                .iter()
                .position(|r| matches!(r, NfRule::Leaf(x) if *x == sep))
                .map(|i| NonTerminal(i as u32))
                .unwrap_or_else(|| {
                    rules.push(NfRule::Leaf(sep));
                    NonTerminal((rules.len() - 1) as u32)
                });
            rules.push(NfRule::Pair(new_root, leaf));
            new_root = NonTerminal((rules.len() - 1) as u32);
        }
        slp = NormalFormSlp::new(rules, new_root).expect("family construction is valid");
    }
    slp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_unary_is_exact() {
        let s = power_of_two_unary(b'a', 0);
        assert_eq!(s.derive(), b"a".to_vec());
        let s = power_of_two_unary(b'a', 5);
        assert_eq!(s.document_len(), 32);
        assert_eq!(s.derive(), vec![b'a'; 32]);
        assert_eq!(s.num_non_terminals(), 6);
        let s = power_of_two_unary(b'x', 20);
        assert_eq!(s.document_len(), 1 << 20);
        assert_eq!(s.num_non_terminals(), 21);
    }

    #[test]
    fn power_word_matches_naive_repetition() {
        for (w, k) in [(&b"ab"[..], 1u64), (b"abc", 7), (b"x", 13), (b"hello ", 20)] {
            let s = power_word(w, k);
            let expected: Vec<u8> = std::iter::repeat_n(w.iter().copied(), k as usize)
                .flatten()
                .collect();
            assert_eq!(s.derive(), expected, "w={:?} k={k}", w);
            assert_eq!(s.document_len(), (w.len() as u64) * k);
        }
    }

    #[test]
    fn power_word_is_small_for_huge_k() {
        let s = power_word(b"log-entry;", 1 << 40);
        assert_eq!(s.document_len(), 10 << 40);
        assert!(s.num_non_terminals() < 120);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn power_word_rejects_empty_word() {
        let _ = power_word::<u8>(&[], 3);
    }

    #[test]
    fn fibonacci_words_are_correct() {
        assert_eq!(fibonacci_word(1).derive(), b"b".to_vec());
        assert_eq!(fibonacci_word(2).derive(), b"a".to_vec());
        assert_eq!(fibonacci_word(3).derive(), b"ab".to_vec());
        assert_eq!(fibonacci_word(4).derive(), b"aba".to_vec());
        assert_eq!(fibonacci_word(5).derive(), b"abaab".to_vec());
        assert_eq!(fibonacci_word(6).derive(), b"abaababa".to_vec());
        // Fibonacci recurrence on lengths.
        let f = fibonacci_word(30);
        let f1 = fibonacci_word(29);
        let f2 = fibonacci_word(28);
        assert_eq!(f.document_len(), f1.document_len() + f2.document_len());
    }

    #[test]
    fn thue_morse_is_correct() {
        assert_eq!(thue_morse(0).derive(), b"a".to_vec());
        assert_eq!(thue_morse(1).derive(), b"ab".to_vec());
        assert_eq!(thue_morse(2).derive(), b"abba".to_vec());
        assert_eq!(thue_morse(3).derive(), b"abbabaab".to_vec());
        let t = thue_morse(15);
        assert_eq!(t.document_len(), 1 << 15);
        // The Thue-Morse word is cube-free; spot-check balance of letters.
        let d = t.derive();
        let a_count = d.iter().filter(|&&c| c == b'a').count();
        assert_eq!(a_count, 1 << 14);
    }

    #[test]
    fn doubling_document_doubles() {
        let s = doubling_document(b"seed", 3, None);
        assert_eq!(s.document_len(), 4 * 8);
        assert_eq!(s.derive(), b"seedseedseedseedseedseedseedseed".to_vec());
        let s = doubling_document(b"ab", 2, Some(b'|'));
        // ab -> abab| -> abab|abab|| (copy then separator)
        assert_eq!(s.derive(), b"abab|abab||".to_vec());
    }

    #[test]
    fn families_have_logarithmic_depth() {
        assert!(power_of_two_unary(b'a', 20).depth() <= 21);
        assert!(thue_morse(20).depth() <= 21);
        // Fibonacci grammars have depth ~ n, document length ~ φ^n, so the
        // depth is ~ log_φ(d) which is still O(log d).
        let f = fibonacci_word(40);
        assert!((f.depth() as f64) <= 1.5 * (f.document_len() as f64).log2() + 2.0);
    }
}
