//! Error type shared by all SLP constructors and validators.

use std::fmt;

/// Errors raised when constructing or validating straight-line programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlpError {
    /// A rule references a non-terminal that has no rule of its own.
    UndefinedNonTerminal {
        /// The referencing non-terminal (rule index).
        referencing: u32,
        /// The referenced, undefined non-terminal.
        undefined: u32,
    },
    /// A rule has an empty right-hand side (SLP rules must derive a
    /// non-empty word, cf. `R ⊆ N × (N ∪ Σ)⁺` in Section 4.1).
    EmptyRule {
        /// The offending non-terminal.
        non_terminal: u32,
    },
    /// The derivation relation contains a cycle, so the grammar is not a
    /// straight-line program.
    Cyclic {
        /// A non-terminal that participates in a cycle.
        non_terminal: u32,
    },
    /// The grammar has no rules at all.
    Empty,
    /// The requested start symbol does not exist.
    InvalidStart {
        /// The requested start non-terminal.
        start: u32,
        /// Number of rules in the grammar.
        rules: usize,
    },
    /// A position-based query (random access, extraction, marker insertion)
    /// was outside of the derived document.
    PositionOutOfBounds {
        /// Requested (1-based) position.
        position: u64,
        /// Length of the derived document.
        document_len: u64,
    },
    /// The document was empty, which cannot be represented by an SLP.
    EmptyDocument,
}

impl fmt::Display for SlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlpError::UndefinedNonTerminal {
                referencing,
                undefined,
            } => write!(
                f,
                "rule for non-terminal {referencing} references undefined non-terminal {undefined}"
            ),
            SlpError::EmptyRule { non_terminal } => {
                write!(
                    f,
                    "rule for non-terminal {non_terminal} has an empty right-hand side"
                )
            }
            SlpError::Cyclic { non_terminal } => {
                write!(
                    f,
                    "non-terminal {non_terminal} participates in a derivation cycle"
                )
            }
            SlpError::Empty => write!(f, "grammar has no rules"),
            SlpError::InvalidStart { start, rules } => {
                write!(f, "start symbol {start} is not among the {rules} rules")
            }
            SlpError::PositionOutOfBounds {
                position,
                document_len,
            } => write!(
                f,
                "position {position} is outside the derived document of length {document_len}"
            ),
            SlpError::EmptyDocument => {
                write!(f, "the empty document cannot be represented by an SLP")
            }
        }
    }
}

impl std::error::Error for SlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SlpError::UndefinedNonTerminal {
            referencing: 3,
            undefined: 7,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('7'));
        let e = SlpError::PositionOutOfBounds {
            position: 10,
            document_len: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SlpError::Empty);
        assert_eq!(e.to_string(), "grammar has no rules");
    }
}
