//! Summary statistics of an SLP, used by the benchmark harness and the
//! examples to report compression ratios and the parameters entering the
//! paper's complexity bounds.

use crate::grammar::Terminal;
use crate::normal_form::{NfRule, NormalFormSlp};

/// Summary statistics of a normal-form SLP.
#[derive(Debug, Clone, PartialEq)]
pub struct SlpStats {
    /// Number of non-terminals `|N|`.
    pub non_terminals: usize,
    /// Number of leaf non-terminals (distinct terminals).
    pub leaves: usize,
    /// The paper's size measure `size(S)`.
    pub size: usize,
    /// Length `d` of the derived document.
    pub document_len: u64,
    /// Depth of the derivation tree, `depth(S)`.
    pub depth: u32,
    /// Compression ratio `size(S) / d` (smaller is better).
    pub ratio: f64,
    /// `log₂(d)`, the best possible depth up to constants.
    pub log2_len: f64,
}

impl SlpStats {
    /// Computes the statistics of an SLP.
    pub fn of<T: Terminal>(slp: &NormalFormSlp<T>) -> Self {
        let leaves = slp
            .rules()
            .iter()
            .filter(|r| matches!(r, NfRule::Leaf(_)))
            .count();
        let d = slp.document_len();
        SlpStats {
            non_terminals: slp.num_non_terminals(),
            leaves,
            size: slp.size(),
            document_len: d,
            depth: slp.depth(),
            ratio: slp.size() as f64 / d as f64,
            log2_len: (d as f64).log2(),
        }
    }
}

impl std::fmt::Display for SlpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "size(S)={} |N|={} depth={} d={} ratio={:.5} log2(d)={:.1}",
            self.size, self.non_terminals, self.depth, self.document_len, self.ratio, self.log2_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn stats_of_the_unary_family() {
        let s = families::power_of_two_unary(b'a', 10);
        let st = SlpStats::of(&s);
        assert_eq!(st.document_len, 1024);
        assert_eq!(st.non_terminals, 11);
        assert_eq!(st.leaves, 1);
        assert_eq!(st.depth, 11);
        assert!(st.ratio < 0.05);
        assert!((st.log2_len - 10.0).abs() < 1e-9);
        let text = st.to_string();
        assert!(text.contains("d=1024"));
    }
}
