//! Content addressing for grammars: a std-only FNV-1a 64-bit hasher and
//! the content hash of a [`NormalFormSlp`].
//!
//! The distributed shard-execution layer keys every standalone shard block
//! (and the query automaton) by content: two blocks with the same rules
//! and the same start symbol hash identically, independent of which
//! document or shard position they came from.  That one property carries
//! the whole fleet design:
//!
//! * **cross-shard sharing** — identical sub-grammars (power families cut
//!   into equal shards, repeated documents) are recognised before scatter
//!   and shipped once;
//! * **the worker block cache** — a worker that has decoded a block keyed
//!   by hash `h` can answer any later `shard_build` naming `h` without the
//!   bytes crossing the wire again;
//! * **rendezvous placement** — the shard→worker mapping hashes the block
//!   key against each worker's address, so the same block keeps landing on
//!   the same (cache-warm) worker as long as that worker lives.
//!
//! FNV-1a is not collision-resistant against adversaries; every consumer
//! that acts on a hash match therefore verifies it against the actual
//! rules (the coordinator compares blocks structurally before deduping,
//! the worker recomputes the hash of the bytes it was sent before caching
//! them).  A collision can at worst cost a round-trip, never correctness.

use crate::grammar::Terminal;
use crate::normal_form::NormalFormSlp;
use std::hash::{Hash, Hasher};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher ([`std::hash::Hasher`]), dependency
/// free and deterministic across processes — unlike
/// [`std::collections::hash_map::DefaultHasher`], which is randomly
/// seeded per process and therefore useless as a wire-visible key.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes one `&[u8]` in one call (the module's convenience form).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The content hash of a rule block: rules in index order plus the start
/// symbol, fed through [`Fnv64`].  Equal `(rules, start)` pairs hash
/// equally regardless of provenance; the rule count is mixed in first so
/// a prefix block cannot alias its extension.
pub fn block_content_hash<T: Terminal>(rules: &[crate::NfRule<T>], start: u32) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(rules.len() as u64);
    rules.hash(&mut h);
    h.write_u32(start);
    h.finish()
}

impl<T: Terminal> NormalFormSlp<T> {
    /// This grammar's content hash: a deterministic key over `(rules,
    /// start)`.  Two grammars compare equal **iff** their rules and start
    /// symbol are equal, and equal grammars always hash equally — the
    /// converse (collisions) is possible but must be caught by the caller
    /// with a structural comparison before anything correctness-critical
    /// happens.
    pub fn content_hash(&self) -> u64 {
        block_content_hash(self.rules(), self.start().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{families, NfRule, NonTerminal};

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn equal_grammars_hash_equally_and_position_does_not_matter() {
        let a = families::power_word(b"ab", 1 << 10);
        let b = families::power_word(b"ab", 1 << 10);
        assert_eq!(a.content_hash(), b.content_hash());
        let c = families::power_word(b"ab", 1 << 11);
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn start_symbol_and_rule_order_are_part_of_the_key() {
        let rules = vec![
            NfRule::Leaf(b'a'),
            NfRule::Leaf(b'b'),
            NfRule::Pair(NonTerminal(0), NonTerminal(1)),
            NfRule::Pair(NonTerminal(2), NonTerminal(2)),
        ];
        let h3 = block_content_hash(&rules, 3);
        let h2 = block_content_hash(&rules, 2);
        assert_ne!(h3, h2, "same rules, different root");
        let mut swapped = rules.clone();
        swapped.swap(0, 1);
        assert_ne!(
            block_content_hash(&swapped, 3),
            h3,
            "rule order is part of the key"
        );
    }

    #[test]
    fn identical_shard_blocks_of_a_power_family_collide_on_purpose() {
        // Cutting (ab)^n into equal shards produces standalone blocks that
        // are *equal grammars* — the cross-shard sharing pass relies on
        // their hashes agreeing.
        let doc = families::power_word(b"ab", 1 << 12);
        let sharded = crate::shard::split(&doc, 4);
        let (combined, layout) = sharded.compose();
        let blocks = layout.standalone_blocks(combined.rules());
        assert!(blocks.len() >= 2);
        let h0 = blocks[0].content_hash();
        assert!(
            blocks[1..].iter().all(|b| b.content_hash() == h0),
            "equal power-family shards must share one content key"
        );
    }
}
