//! The paper's own example grammars, reproduced verbatim so that tests and
//! the `paper_walkthrough` example can check against the exact values
//! printed in the paper.

use crate::grammar::{NonTerminal, Slp, Symbol};
use crate::normal_form::{NfRule, NormalFormSlp};

/// Non-terminal indices of [`example_4_2`], named as in the paper.
pub mod names_4_2 {
    use crate::grammar::NonTerminal;

    /// Leaf non-terminal `T_a → a`.
    pub const TA: NonTerminal = NonTerminal(0);
    /// Leaf non-terminal `T_b → b`.
    pub const TB: NonTerminal = NonTerminal(1);
    /// Leaf non-terminal `T_c → c`.
    pub const TC: NonTerminal = NonTerminal(2);
    /// `E → T_a T_a` (derives `aa`).
    pub const E: NonTerminal = NonTerminal(3);
    /// `D → T_c T_c` (derives `cc`).
    pub const D: NonTerminal = NonTerminal(4);
    /// `C → E T_b` (derives `aab`).
    pub const C: NonTerminal = NonTerminal(5);
    /// `B → C E` (derives `aabaa`).
    pub const B: NonTerminal = NonTerminal(6);
    /// `A → C D` (derives `aabcc`).
    pub const A: NonTerminal = NonTerminal(7);
    /// `S₀ → A B` (derives `aabccaabaa`).
    pub const S0: NonTerminal = NonTerminal(8);
}

/// Example 4.1 of the paper: the general (non-normal-form) SLP with rules
/// `S₀ → A b a A B b`, `A → B a B`, `B → baab`, deriving
/// `baababaabbabaababaabbaabb` (size 16, document length 25).
///
/// Non-terminal indices: `0 = S₀`, `1 = A`, `2 = B`.
pub fn example_4_1() -> Slp<u8> {
    use Symbol::{NonTerminal as N, Terminal as T};
    let rules = vec![
        vec![
            N(NonTerminal(1)),
            T(b'b'),
            T(b'a'),
            N(NonTerminal(1)),
            N(NonTerminal(2)),
            T(b'b'),
        ],
        vec![N(NonTerminal(2)), T(b'a'), N(NonTerminal(2))],
        vec![T(b'b'), T(b'a'), T(b'a'), T(b'b')],
    ];
    Slp::new(rules, NonTerminal(0)).expect("the paper's Example 4.1 is a valid SLP")
}

/// Example 4.2 of the paper: the normal-form SLP with rules
/// `S₀ → AB`, `A → CD`, `B → CE`, `C → E T_b`, `D → T_c T_c`, `E → T_a T_a`
/// plus the leaf rules, deriving `aabccaabaa` (see Figure 3).
///
/// Non-terminal indices follow [`names_4_2`].
pub fn example_4_2() -> NormalFormSlp<u8> {
    use names_4_2::*;
    let mut rules = vec![NfRule::Leaf(0u8); 9];
    rules[TA.index()] = NfRule::Leaf(b'a');
    rules[TB.index()] = NfRule::Leaf(b'b');
    rules[TC.index()] = NfRule::Leaf(b'c');
    rules[E.index()] = NfRule::Pair(TA, TA);
    rules[D.index()] = NfRule::Pair(TC, TC);
    rules[C.index()] = NfRule::Pair(E, TB);
    rules[B.index()] = NfRule::Pair(C, E);
    rules[A.index()] = NfRule::Pair(C, D);
    rules[S0.index()] = NfRule::Pair(A, B);
    NormalFormSlp::new(rules, S0).expect("the paper's Example 4.2 is a valid SLP")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_4_1_matches_the_paper() {
        let s = example_4_1();
        assert_eq!(s.derive(), b"baababaabbabaababaabbaabb".to_vec());
        assert_eq!(s.size(), 16);
        assert_eq!(s.document_len(), 25);
        // "D(B) = baab, D(A) = D(B) a D(B) = baababaab"
        assert_eq!(s.derive_from(NonTerminal(2)), b"baab".to_vec());
        assert_eq!(s.derive_from(NonTerminal(1)), b"baababaab".to_vec());
    }

    #[test]
    fn example_4_2_matches_the_paper() {
        use names_4_2::*;
        let s = example_4_2();
        assert_eq!(s.derive(), b"aabccaabaa".to_vec());
        assert_eq!(s.derive_from(E), b"aa".to_vec());
        assert_eq!(s.derive_from(D), b"cc".to_vec());
        assert_eq!(s.derive_from(C), b"aab".to_vec());
        assert_eq!(s.derive_from(B), b"aabaa".to_vec());
        assert_eq!(s.derive_from(A), b"aabcc".to_vec());
        assert_eq!(s.document_len(), 10);
    }

    #[test]
    fn example_4_2_derivation_tree_shape() {
        use names_4_2::*;
        let s = example_4_2();
        // Figure 3: the derivation tree has depth 5 (S0-A-C-E-Ta).
        assert_eq!(s.depth(), 5);
        assert_eq!(s.depth_of(E), 2);
        assert_eq!(s.depth_of(C), 3);
        assert_eq!(s.depth_of(A), 4);
    }
}
