//! Sharding: cutting one SLP at the start rule into `k` balanced
//! sub-grammars (the corpus layer of the evaluation service).
//!
//! The matrices of the paper's Lemma 6.5 compose under concatenation: if
//! `D = D₁·D₂`, the root summary `R` for `D` is the three-valued matrix
//! product of the root summaries for `D₁` and `D₂`.  A huge SLP can
//! therefore be cut into `k` balanced sub-grammars whose matrix passes run
//! independently (on other cores, or other machines) and are merged by
//! `k − 1` matrix products at the root.  [`split`] performs the cut;
//! [`ShardedDocument`] holds the shards plus the composition metadata and
//! round-trips back to the original text ([`ShardedDocument::derive`],
//! [`ShardedDocument::compose`]).
//!
//! The cut itself is the classic canonical-segment decomposition of the
//! derivation tree: a range `[lo, hi]` of document positions is covered by
//! maximal whole subtrees (`O(depth(S))` of them on balanced grammars),
//! which are joined back into one grammar by a *depth-aware fold* — the
//! shallowest neighbouring segments are paired first, the same height
//! bookkeeping as the AVL joins of [`crate::balance`].  Each shard
//! therefore has depth at most `depth(S) + O(log depth(S))`; for a
//! balanced input this stays `O(log d)`.
//!
//! ```
//! use slp::{families, shard};
//!
//! let doc = families::power_word(b"ab", 1000);
//! let sharded = shard::split(&doc, 4);
//! assert_eq!(sharded.k(), 4);
//! assert_eq!(sharded.derive(), doc.derive());      // text round-trips
//! let (combined, layout) = sharded.compose();
//! assert_eq!(combined.derive(), doc.derive());     // and composes back
//! assert_eq!(layout.ranges.len(), 4);
//! ```

use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};
use std::ops::Range;

/// An SLP split into `k` sub-grammars whose derived words concatenate to
/// the original document, plus the composition metadata needed to evaluate
/// them shard-by-shard and merge at the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedDocument<T> {
    shards: Vec<NormalFormSlp<T>>,
    /// 0-based start offset of every shard's text in the original document.
    offsets: Vec<u64>,
    total_len: u64,
}

/// Where each shard's rules live inside the grammar built by
/// [`ShardedDocument::compose`]: one contiguous, self-contained rule-index
/// range per shard (rules in a range reference only rules of the same
/// range), plus the shard roots the composition spine concatenates.  Rules
/// outside every range are the spine (and anything appended later, e.g. an
/// end-of-document sentinel); they are the "merge at the root" part of a
/// scatter-gather matrix build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// `ranges[i]` is the rule-index block of shard `i` in the composed
    /// grammar.
    pub ranges: Vec<Range<usize>>,
    /// `roots[i]` is the composed-grammar non-terminal deriving shard `i`'s
    /// text.
    pub roots: Vec<u32>,
}

impl ShardLayout {
    /// Number of shards in this layout.
    pub fn k(&self) -> usize {
        self.ranges.len()
    }

    /// Extracts shard `i` of a composed grammar's rule table as a
    /// *standalone* rule block: the block's rules rebased to local indices
    /// `0..len` plus the local index of the shard root.  Because every
    /// block is self-contained (rules reference only their own range), the
    /// result is a valid grammar on its own — this is what crosses a
    /// process boundary in distributed shard execution: the sub-grammar,
    /// never the document text it derives.
    ///
    /// # Panics
    /// If `i` is out of range or `rules` is shorter than the layout
    /// expects (the layout must come from the grammar the rules belong to).
    pub fn standalone_block<T: Terminal>(
        &self,
        rules: &[NfRule<T>],
        i: usize,
    ) -> (Vec<NfRule<T>>, NonTerminal) {
        let range = &self.ranges[i];
        let base = range.start as u32;
        let block: Vec<NfRule<T>> = rules[range.clone()]
            .iter()
            .map(|rule| match rule {
                NfRule::Leaf(t) => NfRule::Leaf(*t),
                NfRule::Pair(b, c) => {
                    NfRule::Pair(NonTerminal(b.0 - base), NonTerminal(c.0 - base))
                }
            })
            .collect();
        (block, NonTerminal(self.roots[i] - base))
    }

    /// [`ShardLayout::standalone_block`] assembled into a validated
    /// [`NormalFormSlp`], one per shard.
    pub fn standalone_blocks<T: Terminal>(&self, rules: &[NfRule<T>]) -> Vec<NormalFormSlp<T>> {
        (0..self.k())
            .map(|i| {
                let (block, root) = self.standalone_block(rules, i);
                NormalFormSlp::new(block, root)
                    .expect("shard blocks are self-contained sub-grammars")
            })
            .collect()
    }
}

impl<T: Terminal> ShardedDocument<T> {
    /// Number of shards `k`.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// The shard sub-grammars, in document order.
    pub fn shards(&self) -> &[NormalFormSlp<T>] {
        &self.shards
    }

    /// 0-based start offset of every shard's text in the original document.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Length of the original document.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Decompresses the original document by concatenating the shard
    /// expansions (the round-trip guarantee of [`split`]).
    pub fn derive(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.total_len as usize);
        for shard in &self.shards {
            out.extend(shard.derive());
        }
        out
    }

    /// Builds one grammar deriving the original document from the shards:
    /// the shard rule tables are placed in disjoint index blocks and the
    /// shard roots are concatenated by a depth-aware fold of fresh pair
    /// rules (the *composition spine*).  The returned [`ShardLayout`] maps
    /// every shard to its rule block, which is what lets a matrix build
    /// scatter over the shards and gather at the spine.
    pub fn compose(&self) -> (NormalFormSlp<T>, ShardLayout) {
        let mut rules: Vec<NfRule<T>> = Vec::new();
        let mut ranges = Vec::with_capacity(self.shards.len());
        let mut parts = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let base = rules.len();
            for rule in shard.rules() {
                rules.push(match rule {
                    NfRule::Leaf(t) => NfRule::Leaf(*t),
                    NfRule::Pair(b, c) => NfRule::Pair(
                        NonTerminal(b.0 + base as u32),
                        NonTerminal(c.0 + base as u32),
                    ),
                });
            }
            ranges.push(base..rules.len());
            let root = NonTerminal(shard.start().0 + base as u32);
            parts.push((root, shard.depth()));
        }
        let roots = parts.iter().map(|(root, _)| root.0).collect();
        let start = depth_aware_fold(&mut rules, &parts);
        let combined =
            NormalFormSlp::new(rules, start).expect("shard composition preserves validity");
        (combined, ShardLayout { ranges, roots })
    }

    /// [`ShardedDocument::compose`] without the layout.
    pub fn to_slp(&self) -> NormalFormSlp<T> {
        self.compose().0
    }
}

/// Minimum number of grammar rules a shard must be worth before the split
/// overhead (duplicated spine structure, per-shard leaf tables, the root
/// merge) can pay off.  Grammars below `2 ×` this size are never auto-split.
const MIN_SHARD_RULES: usize = 256;

/// Picks a shard count from the grammar size, the available cores and the
/// (estimated or measured) *critical ratio* — the fraction of the whole
/// matrix pass that the slowest shard still pays after a split:
///
/// * `critical_ratio ≈ 1/k`: the shards partition the grammar (block-like
///   documents) — the achievable speedup is `≈ 1/critical_ratio`, so use as
///   many shards as the cores allow.
/// * `critical_ratio ≈ 1`: the grammar shares its rules across the whole
///   document (power-like families) — every shard duplicates nearly the
///   full structure, sharding only adds work, keep the document monolithic.
///
/// The returned `k` is `1/critical_ratio` rounded, capped by `cores` and by
/// the grammar size (each shard must be worth ≥ 256 rules);
/// tiny grammars and single-core hosts always get `k = 1`.  Feed it
/// [`estimate_critical_ratio`] for a structural estimate at registration
/// time, or a measured `critical_path()/total()` from
/// `ShardBuildStats` to re-tune a live document.
pub fn auto_k(size: usize, cores: usize, critical_ratio: f64) -> usize {
    let cores = cores.max(1);
    if cores == 1 || size < 2 * MIN_SHARD_RULES {
        return 1;
    }
    let cap = cores.min(size / MIN_SHARD_RULES).max(1);
    let ratio = critical_ratio.clamp(0.0, 1.0);
    if ratio <= f64::EPSILON {
        return cap;
    }
    ((1.0 / ratio).round() as usize).clamp(1, cap)
}

/// Estimates the critical ratio of splitting `slp` into `k` shards without
/// building any matrices: the matrix pass costs `O(rules · q³)` per shard,
/// so `max(shard size) / size(S)` approximates the fraction of the
/// monolithic pass the slowest shard would still pay.  Near `1/k` when the
/// shards partition the grammar; near `1` (or above, clamped) when the
/// grammar's shared structure is duplicated into every shard.
///
/// The probe only runs grammar surgery ([`split`] + garbage collection),
/// no evaluation — cheap enough to call once per document registration.
pub fn estimate_critical_ratio<T: Terminal>(slp: &NormalFormSlp<T>, k: usize) -> f64 {
    critical_ratio(&split(slp, k), slp.size())
}

/// The [`estimate_critical_ratio`] of an already performed split, so a
/// caller that goes on to *use* the split (e.g. auto-tuned registration)
/// pays the grammar surgery once, not twice.  `original_size` is the rule
/// count of the unsplit grammar.
pub fn critical_ratio<T: Terminal>(sharded: &ShardedDocument<T>, original_size: usize) -> f64 {
    let size = original_size.max(1);
    let max_shard = sharded
        .shards()
        .iter()
        .map(|s| s.size())
        .max()
        .unwrap_or(size);
    (max_shard as f64 / size as f64).clamp(0.0, 1.0)
}

/// Splits an SLP at the start rule into `k` sub-grammars of balanced text
/// length (lengths differ by at most one symbol).  `k` is clamped to
/// `1..=document length`, so every shard derives a non-empty word.
///
/// The concatenation of the shard expansions is exactly the original
/// document; each shard is a compact, self-contained grammar (unreachable
/// rules are dropped and the remainder renumbered).
pub fn split<T: Terminal>(slp: &NormalFormSlp<T>, k: usize) -> ShardedDocument<T> {
    let d = slp.document_len();
    let k = (k.max(1) as u64).min(d);
    let mut shards = Vec::with_capacity(k as usize);
    let mut offsets = Vec::with_capacity(k as usize);
    for i in 0..k {
        // Shard i covers 1-based positions (i·d/k, (i+1)·d/k].
        let lo = i * d / k + 1;
        let hi = (i + 1) * d / k;
        offsets.push(lo - 1);
        shards.push(extract_range(slp, lo, hi));
    }
    ShardedDocument {
        shards,
        offsets,
        total_len: d,
    }
}

/// The canonical segment cover of positions `[lo, hi]` (1-based,
/// inclusive): maximal non-terminals whose expansions tile the range, in
/// document order.
fn cover<T: Terminal>(slp: &NormalFormSlp<T>, lo: u64, hi: u64) -> Vec<NonTerminal> {
    let mut out = Vec::new();
    // (node, 1-based global start of D(node)); right child pushed first so
    // the left child is processed first and the cover comes out in order.
    let mut stack: Vec<(NonTerminal, u64)> = vec![(slp.start(), 1)];
    while let Some((node, start)) = stack.pop() {
        let end = start + slp.derived_len(node) - 1;
        if end < lo || start > hi {
            continue;
        }
        if lo <= start && end <= hi {
            out.push(node);
            continue;
        }
        let (b, c) = slp
            .children(node)
            .expect("a partially covered node has length > 1, hence is inner");
        stack.push((c, start + slp.derived_len(b)));
        stack.push((b, start));
    }
    out
}

/// Builds the sub-grammar deriving `D[lo..=hi]` (1-based, inclusive):
/// cover segments joined by a depth-aware fold, then garbage-collected.
fn extract_range<T: Terminal>(slp: &NormalFormSlp<T>, lo: u64, hi: u64) -> NormalFormSlp<T> {
    debug_assert!(lo >= 1 && lo <= hi && hi <= slp.document_len());
    let segments = cover(slp, lo, hi);
    let mut rules: Vec<NfRule<T>> = slp.rules().to_vec();
    let parts: Vec<(NonTerminal, u32)> = segments
        .into_iter()
        .map(|node| (node, slp.depth_of(node)))
        .collect();
    let root = depth_aware_fold(&mut rules, &parts);
    garbage_collect(&rules, root)
}

/// Concatenates the expansions of `parts` (left to right) with fresh pair
/// rules, pairing the neighbours of smallest height first — the height
/// bookkeeping of the AVL joins in [`crate::balance`] — so the result's
/// depth exceeds the deepest part by only `O(log(number of parts))`.
fn depth_aware_fold<T: Terminal>(
    rules: &mut Vec<NfRule<T>>,
    parts: &[(NonTerminal, u32)],
) -> NonTerminal {
    assert!(!parts.is_empty(), "cannot fold an empty part list");
    let mut parts: Vec<(NonTerminal, u32)> = parts.to_vec();
    while parts.len() > 1 {
        // The adjacent pair whose merged node would be shallowest.
        let best = (0..parts.len() - 1)
            .min_by_key(|&i| parts[i].1.max(parts[i + 1].1))
            .expect("at least one adjacent pair");
        let (left, hl) = parts[best];
        let (right, hr) = parts[best + 1];
        rules.push(NfRule::Pair(left, right));
        let merged = NonTerminal((rules.len() - 1) as u32);
        parts[best] = (merged, 1 + hl.max(hr));
        parts.remove(best + 1);
    }
    parts[0].0
}

/// Keeps only the rules reachable from `root`, renumbering the survivors.
fn garbage_collect<T: Terminal>(rules: &[NfRule<T>], root: NonTerminal) -> NormalFormSlp<T> {
    let mut reachable = vec![false; rules.len()];
    let mut stack = vec![root];
    reachable[root.index()] = true;
    while let Some(a) = stack.pop() {
        if let NfRule::Pair(b, c) = rules[a.index()] {
            for child in [b, c] {
                if !reachable[child.index()] {
                    reachable[child.index()] = true;
                    stack.push(child);
                }
            }
        }
    }
    let mut remap = vec![u32::MAX; rules.len()];
    let mut next = 0u32;
    for (i, &keep) in reachable.iter().enumerate() {
        if keep {
            remap[i] = next;
            next += 1;
        }
    }
    let compact: Vec<NfRule<T>> = rules
        .iter()
        .enumerate()
        .filter(|(i, _)| reachable[*i])
        .map(|(_, rule)| match rule {
            NfRule::Leaf(t) => NfRule::Leaf(*t),
            NfRule::Pair(b, c) => {
                NfRule::Pair(NonTerminal(remap[b.index()]), NonTerminal(remap[c.index()]))
            }
        })
        .collect();
    NormalFormSlp::new(compact, NonTerminal(remap[root.index()]))
        .expect("range extraction preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{Chain, Compressor, RePair};
    use crate::families;

    fn documents() -> Vec<NormalFormSlp<u8>> {
        vec![
            crate::examples::example_4_2(),
            RePair::default().compress(b"abracadabra_abracadabra_abracadabra"),
            families::power_word(b"ab", 257),
            families::fibonacci_word(15),
            NormalFormSlp::from_document(b"x").unwrap(),
        ]
    }

    #[test]
    fn split_round_trips_for_all_k() {
        for doc in documents() {
            let text = doc.derive();
            for k in [1usize, 2, 3, 4, 8, 1000] {
                let sharded = split(&doc, k);
                assert_eq!(sharded.derive(), text, "k={k}");
                assert_eq!(sharded.to_slp().derive(), text, "composed, k={k}");
                assert_eq!(sharded.total_len(), text.len() as u64);
                assert_eq!(sharded.k(), k.max(1).min(text.len()));
            }
        }
    }

    #[test]
    fn shard_lengths_are_balanced_and_offsets_consistent() {
        let doc = families::power_word(b"abc", 341); // d = 1023
        let sharded = split(&doc, 8);
        let lens: Vec<u64> = sharded.shards().iter().map(|s| s.document_len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(max - min <= 1, "lengths {lens:?} must differ by at most 1");
        let mut expected_offset = 0;
        for (shard, &offset) in sharded.shards().iter().zip(sharded.offsets()) {
            assert_eq!(offset, expected_offset);
            expected_offset += shard.document_len();
        }
        assert_eq!(expected_offset, sharded.total_len());
    }

    #[test]
    fn compose_layout_is_disjoint_and_self_contained() {
        let doc = RePair::default().compress(b"the quick brown fox jumps over the lazy dog");
        let sharded = split(&doc, 4);
        let (combined, layout) = sharded.compose();
        assert_eq!(layout.ranges.len(), 4);
        assert_eq!(layout.roots.len(), 4);
        // Blocks are contiguous, disjoint and in order.
        let mut end = 0;
        for (range, &root) in layout.ranges.iter().zip(&layout.roots) {
            assert_eq!(range.start, end);
            end = range.end;
            assert!(range.contains(&(root as usize)), "root inside its block");
        }
        assert!(
            end <= combined.num_non_terminals(),
            "spine lives after the blocks"
        );
        // Self-containment: every rule in a block references only its block.
        for range in &layout.ranges {
            for i in range.clone() {
                if let NfRule::Pair(b, c) = combined.rules()[i] {
                    assert!(range.contains(&b.index()) && range.contains(&c.index()));
                }
            }
        }
        // The shard roots derive exactly the shard texts.
        for ((shard, &root), offset) in sharded
            .shards()
            .iter()
            .zip(&layout.roots)
            .zip(sharded.offsets())
        {
            assert_eq!(
                combined.derive_from(NonTerminal(root)),
                shard.derive(),
                "shard at offset {offset}"
            );
        }
    }

    #[test]
    fn standalone_blocks_are_valid_grammars_deriving_the_shard_texts() {
        for doc in documents() {
            for k in [2usize, 4, 8] {
                let sharded = split(&doc, k);
                let (combined, layout) = sharded.compose();
                assert_eq!(layout.k(), sharded.k());
                let blocks = layout.standalone_blocks(combined.rules());
                assert_eq!(blocks.len(), sharded.k());
                for (block, shard) in blocks.iter().zip(sharded.shards()) {
                    // The rebased block is exactly the shard sub-grammar:
                    // same text, same size, same depth.
                    assert_eq!(block.derive(), shard.derive());
                    assert_eq!(block.size(), shard.size());
                    assert_eq!(block.depth(), shard.depth());
                }
                // And the appended sentinel (evaluation adds one after the
                // blocks) does not disturb the block ranges.
                let ended = combined.append_terminal(*b"#".first().unwrap());
                let ended_blocks = layout.standalone_blocks(ended.rules());
                for (a, b) in blocks.iter().zip(&ended_blocks) {
                    assert_eq!(a.rules(), b.rules());
                }
            }
        }
    }

    #[test]
    fn sharding_keeps_balanced_grammars_shallow() {
        let doc = families::power_word(b"ab", 1 << 14);
        let sharded = split(&doc, 8);
        let slack = 2 * (2 * doc.depth().max(1)).ilog2() + 4;
        for shard in sharded.shards() {
            assert!(
                shard.depth() <= doc.depth() + slack,
                "shard depth {} vs original {} (+{slack} slack)",
                shard.depth(),
                doc.depth()
            );
        }
        let (combined, _) = sharded.compose();
        assert!(combined.depth() <= doc.depth() + slack + 4);
    }

    #[test]
    fn auto_k_keeps_power_families_monolithic() {
        // Exponentially compressed: the whole grammar is shared structure,
        // so every shard duplicates it.  Both gates fire: the grammar is
        // tiny, and the estimated critical ratio is ~1.
        let doc = families::power_word(b"ab", 1 << 20);
        assert!(doc.size() < 2 * MIN_SHARD_RULES);
        assert_eq!(auto_k(doc.size(), 8, estimate_critical_ratio(&doc, 8)), 1);
        // Even pretending the grammar were large, the ratio alone says "do
        // not shard".
        let ratio = estimate_critical_ratio(&doc, 8);
        assert!(ratio > 0.8, "power-family shards duplicate the grammar");
        assert_eq!(auto_k(1 << 20, 8, ratio), 1);
    }

    #[test]
    fn auto_k_scales_block_documents_to_the_cores() {
        // Low repetitiveness: shards partition the grammar, the estimated
        // critical ratio is ~1/k, so auto_k spends the cores.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let doc: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 26) as u8 + b'a'
            })
            .collect();
        let slp = NormalFormSlp::from_document(&doc).unwrap();
        assert!(slp.size() >= 2 * MIN_SHARD_RULES);
        let ratio = estimate_critical_ratio(&slp, 8);
        assert!(ratio < 0.5, "block shards partition the grammar: {ratio}");
        let k = auto_k(slp.size(), 8, ratio);
        assert!(k >= 4, "auto_k should spend the cores, got {k}");
        assert!(k <= 8);
    }

    #[test]
    fn auto_k_respects_cores_size_and_ratio_gates() {
        // Single core or tiny grammar: never shard.
        assert_eq!(auto_k(1 << 20, 1, 0.1), 1);
        assert_eq!(auto_k(MIN_SHARD_RULES, 16, 0.1), 1);
        // Serial critical path: never shard, whatever the cores.
        assert_eq!(auto_k(1 << 20, 16, 1.0), 1);
        // Perfect partition: bounded by the cores...
        assert_eq!(auto_k(1 << 20, 8, 0.0), 8);
        assert_eq!(auto_k(1 << 20, 8, 1.0 / 16.0), 8);
        // ...and by the per-shard minimum work.
        assert_eq!(auto_k(4 * MIN_SHARD_RULES, 16, 0.0), 4);
        // The ratio picks the sweet spot between 1 and the cap.
        assert_eq!(auto_k(1 << 20, 16, 0.25), 4);
        // Out-of-range ratios are clamped, not trusted.
        assert_eq!(auto_k(1 << 20, 8, 7.5), 1);
        assert_eq!(auto_k(1 << 20, 8, -3.0), 8);
    }

    #[test]
    fn splitting_a_chain_still_round_trips() {
        let doc: Vec<u8> = (0..500u32).map(|i| (i % 7) as u8 + b'a').collect();
        let chain = Chain.compress(&doc);
        let sharded = split(&chain, 4);
        assert_eq!(sharded.derive(), doc);
    }

    #[test]
    fn single_symbol_document_clamps_to_one_shard() {
        let doc = NormalFormSlp::from_document(b"z").unwrap();
        let sharded = split(&doc, 8);
        assert_eq!(sharded.k(), 1);
        assert_eq!(sharded.derive(), b"z".to_vec());
        let (combined, layout) = sharded.compose();
        assert_eq!(combined.derive(), b"z".to_vec());
        assert_eq!(layout.ranges.len(), 1);
    }
}
