//! SLP balancing: the crate's stand-in for the balancing theorem of
//! Ganardi, Jež and Lohrey (Theorem 4.3 of the paper).
//!
//! [`rebalance`] rebuilds a normal-form SLP bottom-up, replacing every inner
//! rule `A → BC` by an *AVL join* of the (already rebalanced) grammars for
//! `B` and `C`.  Joining two height-balanced grammar trees of heights `h₁`
//! and `h₂` adds `O(|h₁ − h₂|)` fresh rules and yields a height-balanced
//! result, so the rebuilt SLP
//!
//! * derives the same document,
//! * has depth at most `1.45·log₂(d) + 2` (AVL height bound), and
//! * has size `O(size(S) · log d)` in the worst case (in practice much less,
//!   thanks to hash-consing of the freshly created rules).
//!
//! This is the classic "AVL grammar" construction (Rytter 2003).  It is a
//! slightly weaker size guarantee than the `O(size(S))` of Theorem 4.3, but
//! it serves the same purpose in all experiments: it caps `depth(S)` at
//! `O(log d)` so the enumeration delay bound `O(depth(S)·|X|)` becomes
//! `O(|X|·log d)`.  See DESIGN.md §5.

use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};
use std::collections::HashMap;

/// Returns `true` if the SLP's depth is at most `c · log₂(document length) + 2`.
pub fn is_balanced<T: Terminal>(slp: &NormalFormSlp<T>, c: f64) -> bool {
    let d = slp.document_len() as f64;
    (slp.depth() as f64) <= c * d.log2().max(1.0) + 2.0
}

/// Rebalances an SLP with AVL joins (see module docs).  The derived document
/// is unchanged and the resulting depth is `O(log d)`.
pub fn rebalance<T: Terminal>(slp: &NormalFormSlp<T>) -> NormalFormSlp<T> {
    let mut b = AvlBuilder::new();
    // Image of every original non-terminal in the rebuilt grammar.
    let mut image: Vec<Option<NonTerminal>> = vec![None; slp.num_non_terminals()];
    for &a in slp.bottom_up_order() {
        let id = match slp.rule(a) {
            NfRule::Leaf(t) => b.leaf(t),
            NfRule::Pair(l, r) => {
                let li = image[l.index()].expect("bottom-up order");
                let ri = image[r.index()].expect("bottom-up order");
                b.join(li, ri)
            }
        };
        image[a.index()] = Some(id);
    }
    let root = image[slp.start().index()].expect("start was rebuilt");
    b.finish(root).garbage_collected()
}

/// Incremental builder of a hash-consed, height-annotated grammar supporting
/// AVL joins.
struct AvlBuilder<T> {
    rules: Vec<NfRule<T>>,
    heights: Vec<u32>,
    leaf_of: HashMap<T, NonTerminal>,
    pair_of: HashMap<(NonTerminal, NonTerminal), NonTerminal>,
}

impl<T: Terminal> AvlBuilder<T> {
    fn new() -> Self {
        AvlBuilder {
            rules: Vec::new(),
            heights: Vec::new(),
            leaf_of: HashMap::new(),
            pair_of: HashMap::new(),
        }
    }

    fn height(&self, a: NonTerminal) -> u32 {
        self.heights[a.index()]
    }

    fn leaf(&mut self, t: T) -> NonTerminal {
        if let Some(&id) = self.leaf_of.get(&t) {
            return id;
        }
        let id = NonTerminal(self.rules.len() as u32);
        self.rules.push(NfRule::Leaf(t));
        self.heights.push(1);
        self.leaf_of.insert(t, id);
        id
    }

    /// Creates (or reuses) the plain pair node `(l, r)` without rebalancing.
    fn node(&mut self, l: NonTerminal, r: NonTerminal) -> NonTerminal {
        if let Some(&id) = self.pair_of.get(&(l, r)) {
            return id;
        }
        let id = NonTerminal(self.rules.len() as u32);
        self.rules.push(NfRule::Pair(l, r));
        self.heights.push(1 + self.height(l).max(self.height(r)));
        self.pair_of.insert((l, r), id);
        id
    }

    fn children(&self, a: NonTerminal) -> (NonTerminal, NonTerminal) {
        match self.rules[a.index()] {
            NfRule::Pair(l, r) => (l, r),
            NfRule::Leaf(_) => unreachable!("children() called on a leaf"),
        }
    }

    /// AVL join ("just join" without keys): concatenates the expansions of
    /// `l` and `r` into a height-balanced grammar tree, creating
    /// `O(|height(l) − height(r)|)` fresh nodes.
    fn join(&mut self, l: NonTerminal, r: NonTerminal) -> NonTerminal {
        let (hl, hr) = (self.height(l) as i64, self.height(r) as i64);
        if (hl - hr).abs() <= 1 {
            self.node(l, r)
        } else if hl > hr {
            self.join_right(l, r)
        } else {
            self.join_left(l, r)
        }
    }

    /// Precondition: `height(tl) >= height(tr) + 2` (hence `tl` is inner).
    fn join_right(&mut self, tl: NonTerminal, tr: NonTerminal) -> NonTerminal {
        let (l, c) = self.children(tl);
        if self.height(c) <= self.height(tr) + 1 {
            let t1 = self.node(c, tr);
            if self.height(t1) <= self.height(l) + 1 {
                self.node(l, t1)
            } else {
                // Double rotation: c is inner here (see the AVL join
                // invariant analysis); redistribute as ((l, c.l), (c.r, tr)).
                let (c1, c2) = self.children(c);
                let left = self.node(l, c1);
                let right = self.node(c2, tr);
                self.node(left, right)
            }
        } else {
            let t1 = self.join_right(c, tr);
            if self.height(t1) <= self.height(l) + 1 {
                self.node(l, t1)
            } else {
                // Single left rotation of (l, t1).
                let (t1l, t1r) = self.children(t1);
                let left = self.node(l, t1l);
                self.node(left, t1r)
            }
        }
    }

    /// Mirror image of [`Self::join_right`]: `height(tr) >= height(tl) + 2`.
    fn join_left(&mut self, tl: NonTerminal, tr: NonTerminal) -> NonTerminal {
        let (c, r) = self.children(tr);
        if self.height(c) <= self.height(tl) + 1 {
            let t1 = self.node(tl, c);
            if self.height(t1) <= self.height(r) + 1 {
                self.node(t1, r)
            } else {
                let (c1, c2) = self.children(c);
                let left = self.node(tl, c1);
                let right = self.node(c2, r);
                self.node(left, right)
            }
        } else {
            let t1 = self.join_left(tl, c);
            if self.height(t1) <= self.height(r) + 1 {
                self.node(t1, r)
            } else {
                let (t1l, t1r) = self.children(t1);
                let right = self.node(t1r, r);
                self.node(t1l, right)
            }
        }
    }

    fn finish(self, root: NonTerminal) -> FinishedGrammar<T> {
        FinishedGrammar {
            rules: self.rules,
            root,
        }
    }
}

struct FinishedGrammar<T> {
    rules: Vec<NfRule<T>>,
    root: NonTerminal,
}

impl<T: Terminal> FinishedGrammar<T> {
    fn garbage_collected(self) -> NormalFormSlp<T> {
        // Keep only rules reachable from the root, renumbering.
        let mut reachable = vec![false; self.rules.len()];
        let mut stack = vec![self.root];
        reachable[self.root.index()] = true;
        while let Some(a) = stack.pop() {
            if let NfRule::Pair(l, r) = self.rules[a.index()] {
                for child in [l, r] {
                    if !reachable[child.index()] {
                        reachable[child.index()] = true;
                        stack.push(child);
                    }
                }
            }
        }
        let mut remap = vec![u32::MAX; self.rules.len()];
        let mut next = 0u32;
        for (i, &keep) in reachable.iter().enumerate() {
            if keep {
                remap[i] = next;
                next += 1;
            }
        }
        let rules: Vec<NfRule<T>> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(i, _)| reachable[*i])
            .map(|(_, r)| match r {
                NfRule::Leaf(t) => NfRule::Leaf(*t),
                NfRule::Pair(l, r) => {
                    NfRule::Pair(NonTerminal(remap[l.index()]), NonTerminal(remap[r.index()]))
                }
            })
            .collect();
        NormalFormSlp::new(rules, NonTerminal(remap[self.root.index()]))
            .expect("rebalancing preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{Chain, Compressor, Lz78, RePair};

    fn avl_depth_bound(d: u64) -> u32 {
        (1.45 * (d as f64).log2().max(1.0)).ceil() as u32 + 2
    }

    #[test]
    fn rebalancing_a_chain_makes_it_logarithmic() {
        let doc: Vec<u8> = (0..2000u32).map(|i| (i % 26) as u8 + b'a').collect();
        let chain = Chain.compress(&doc);
        assert_eq!(chain.depth(), 2000);
        let balanced = rebalance(&chain);
        assert_eq!(balanced.derive(), doc);
        assert!(
            balanced.depth() <= avl_depth_bound(doc.len() as u64),
            "depth {} exceeds AVL bound",
            balanced.depth()
        );
        assert!(is_balanced(&balanced, 1.5));
        assert!(!is_balanced(&chain, 1.5));
    }

    #[test]
    fn rebalancing_preserves_documents_of_all_compressors() {
        let doc: Vec<u8> = std::iter::repeat_n(b"lorem ipsum dolor sit amet ".iter().copied(), 40)
            .flatten()
            .collect();
        for c in [
            &Chain as &dyn Compressor,
            &RePair::default(),
            &Lz78,
            &crate::compress::Bisection,
        ] {
            let slp = c.compress(&doc);
            let balanced = rebalance(&slp);
            assert_eq!(balanced.derive(), doc, "compressor {}", c.name());
            assert!(
                balanced.depth() <= avl_depth_bound(doc.len() as u64),
                "{}: depth {} > bound",
                c.name(),
                balanced.depth()
            );
        }
    }

    #[test]
    fn rebalanced_chain_size_stays_moderate() {
        let doc = vec![b'a'; 4096];
        let chain = Chain.compress(&doc);
        let balanced = rebalance(&chain);
        assert_eq!(balanced.document_len(), 4096);
        // Hash-consing collapses the unary document to a small polylogarithmic
        // number of rules even though the input grammar had Θ(d) rules.
        assert!(
            balanced.num_non_terminals() <= 400,
            "rules: {}",
            balanced.num_non_terminals()
        );
    }

    #[test]
    fn already_balanced_grammars_stay_small() {
        let doc: Vec<u8> = (0..1024u32).map(|i| (i % 17) as u8).collect();
        let slp = crate::compress::Bisection.compress(&doc);
        let balanced = rebalance(&slp);
        assert_eq!(balanced.derive(), doc);
        assert!(balanced.num_non_terminals() <= 2 * slp.num_non_terminals());
    }

    #[test]
    fn avl_invariant_holds_everywhere() {
        let doc: Vec<u8> = (0..777u32).map(|i| (i % 5) as u8 + b'a').collect();
        let chain = Chain.compress(&doc);
        let balanced = rebalance(&chain);
        // Check the AVL balance factor on every inner rule.
        let mut heights = vec![0u32; balanced.num_non_terminals()];
        for &a in balanced.bottom_up_order() {
            heights[a.index()] = match balanced.rule(a) {
                NfRule::Leaf(_) => 1,
                NfRule::Pair(l, r) => 1 + heights[l.index()].max(heights[r.index()]),
            };
        }
        for &a in balanced.bottom_up_order() {
            if let NfRule::Pair(l, r) = balanced.rule(a) {
                let diff = heights[l.index()] as i64 - heights[r.index()] as i64;
                assert!(diff.abs() <= 1, "AVL violation at {:?}: {diff}", a);
            }
        }
    }
}
