//! General straight-line programs with arbitrary right-hand sides
//! (Section 4.1 of the paper).

use crate::error::SlpError;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Trait bound for SLP terminal symbols.
///
/// Documents in this workspace use `u8`; the spanner evaluator additionally
/// uses an "ended" alphabet that appends an end-of-document sentinel, and the
/// model-checking algorithm builds SLPs over marked symbols.  Any `Copy`
/// value with equality, ordering and hashing works; `Send + Sync` admits
/// the parallel matrix preprocessing of the evaluation engine.
pub trait Terminal: Copy + Eq + Ord + Hash + Debug + Send + Sync {}
impl<T: Copy + Eq + Ord + Hash + Debug + Send + Sync> Terminal for T {}

/// Identifier of a non-terminal (an index into the rule table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NonTerminal(pub u32);

impl NonTerminal {
    /// The rule-table index of this non-terminal.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbol occurring on the right-hand side of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol<T> {
    /// A terminal symbol of the document alphabet.
    Terminal(T),
    /// A reference to another non-terminal.
    NonTerminal(NonTerminal),
}

/// A general straight-line program: a context-free grammar
/// `G = (N, Σ, R, S₀)` in which `R` is a total function `N → (N ∪ Σ)⁺` and
/// the derivation relation is acyclic, so `G` derives exactly one word
/// (Section 4.1).
///
/// The rule table is indexed by [`NonTerminal`]; rule `A → w` is stored as
/// `rules[A] = w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slp<T> {
    rules: Vec<Vec<Symbol<T>>>,
    start: NonTerminal,
    /// Non-terminals in bottom-up (topological) order: every rule only
    /// references non-terminals that appear earlier in this list.
    topo: Vec<NonTerminal>,
    /// `|D(A)|` for every non-terminal (Lemma 4.4).
    lengths: Vec<u64>,
}

impl<T: Terminal> Slp<T> {
    /// Builds and validates an SLP from a rule table and a start symbol.
    ///
    /// Validation checks totality of the rule function, non-emptiness of all
    /// right-hand sides and acyclicity of the derivation relation; it also
    /// precomputes a bottom-up order and all derived lengths `|D(A)|`.
    pub fn new(rules: Vec<Vec<Symbol<T>>>, start: NonTerminal) -> Result<Self, SlpError> {
        if rules.is_empty() {
            return Err(SlpError::Empty);
        }
        if start.index() >= rules.len() {
            return Err(SlpError::InvalidStart {
                start: start.0,
                rules: rules.len(),
            });
        }
        for (i, rhs) in rules.iter().enumerate() {
            if rhs.is_empty() {
                return Err(SlpError::EmptyRule {
                    non_terminal: i as u32,
                });
            }
            for sym in rhs {
                if let Symbol::NonTerminal(nt) = sym {
                    if nt.index() >= rules.len() {
                        return Err(SlpError::UndefinedNonTerminal {
                            referencing: i as u32,
                            undefined: nt.0,
                        });
                    }
                }
            }
        }
        let topo = topological_order(&rules)?;
        let lengths = compute_lengths(&rules, &topo);
        Ok(Slp {
            rules,
            start,
            topo,
            lengths,
        })
    }

    /// The start symbol `S₀`.
    #[inline]
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// Number of non-terminals `|N|`.
    #[inline]
    pub fn num_non_terminals(&self) -> usize {
        self.rules.len()
    }

    /// The right-hand side of the rule for `A`.
    #[inline]
    pub fn rule(&self, a: NonTerminal) -> &[Symbol<T>] {
        &self.rules[a.index()]
    }

    /// All rules, indexed by non-terminal.
    #[inline]
    pub fn rules(&self) -> &[Vec<Symbol<T>>] {
        &self.rules
    }

    /// The paper's size measure `size(S) = |N| + Σ_A |D_S(A)|`.
    pub fn size(&self) -> usize {
        self.rules.len() + self.rules.iter().map(Vec::len).sum::<usize>()
    }

    /// Non-terminals in bottom-up order (every rule references only earlier
    /// entries).  The start symbol is the last entry reachable from itself.
    #[inline]
    pub fn bottom_up_order(&self) -> &[NonTerminal] {
        &self.topo
    }

    /// Length `|D(A)|` of the word derived by `A` (Lemma 4.4).
    #[inline]
    pub fn derived_len(&self, a: NonTerminal) -> u64 {
        self.lengths[a.index()]
    }

    /// Length of the derived document `|D(S₀)|`.
    #[inline]
    pub fn document_len(&self) -> u64 {
        self.derived_len(self.start)
    }

    /// Depth of a non-terminal: the height of its derivation tree (terminals
    /// have depth 0, so a rule `A → a` has depth 1).
    pub fn depth_of(&self, a: NonTerminal) -> u32 {
        let depths = self.all_depths();
        depths[a.index()]
    }

    /// Depth of the whole SLP, `depth(S) = depth(S₀)`.
    pub fn depth(&self) -> u32 {
        self.depth_of(self.start)
    }

    /// Depths of all non-terminals, indexed by non-terminal.
    pub fn all_depths(&self) -> Vec<u32> {
        let mut depths = vec![0u32; self.rules.len()];
        for &nt in &self.topo {
            let mut d = 0;
            for sym in &self.rules[nt.index()] {
                let child = match sym {
                    Symbol::Terminal(_) => 0,
                    Symbol::NonTerminal(b) => depths[b.index()],
                };
                d = d.max(child);
            }
            depths[nt.index()] = d + 1;
        }
        depths
    }

    /// Derives (decompresses) the word generated by non-terminal `A`.
    ///
    /// This fully expands the derivation and therefore takes time and space
    /// `Θ(|D(A)|)`; it is intended for testing, for small documents and for
    /// the decompress-and-solve baselines.
    pub fn derive_from(&self, a: NonTerminal) -> Vec<T> {
        let mut out = Vec::with_capacity(self.derived_len(a) as usize);
        // Explicit stack to avoid recursion depth limits on deep grammars.
        let mut stack: Vec<Symbol<T>> = vec![Symbol::NonTerminal(a)];
        while let Some(sym) = stack.pop() {
            match sym {
                Symbol::Terminal(t) => out.push(t),
                Symbol::NonTerminal(nt) => {
                    for s in self.rules[nt.index()].iter().rev() {
                        stack.push(*s);
                    }
                }
            }
        }
        out
    }

    /// Derives (decompresses) the full document `D(S)`.
    pub fn derive(&self) -> Vec<T> {
        self.derive_from(self.start)
    }

    /// The set of terminals that actually occur in the grammar, in sorted
    /// order.
    pub fn terminals(&self) -> Vec<T> {
        let mut set: Vec<T> = self
            .rules
            .iter()
            .flatten()
            .filter_map(|s| match s {
                Symbol::Terminal(t) => Some(*t),
                Symbol::NonTerminal(_) => None,
            })
            .collect();
        set.sort();
        set.dedup();
        set
    }

    /// Applies a function to every terminal, producing an SLP over a new
    /// alphabet with identical structure.
    pub fn map_terminals<U: Terminal>(&self, mut f: impl FnMut(T) -> U) -> Slp<U> {
        let rules = self
            .rules
            .iter()
            .map(|rhs| {
                rhs.iter()
                    .map(|s| match s {
                        Symbol::Terminal(t) => Symbol::Terminal(f(*t)),
                        Symbol::NonTerminal(nt) => Symbol::NonTerminal(*nt),
                    })
                    .collect()
            })
            .collect();
        Slp {
            rules,
            start: self.start,
            topo: self.topo.clone(),
            lengths: self.lengths.clone(),
        }
    }

    /// Removes non-terminals that are not reachable from the start symbol,
    /// renumbering the remaining ones (derivation is preserved).
    pub fn garbage_collect(&self) -> Slp<T> {
        let mut reachable = vec![false; self.rules.len()];
        let mut stack = vec![self.start];
        reachable[self.start.index()] = true;
        while let Some(nt) = stack.pop() {
            for sym in &self.rules[nt.index()] {
                if let Symbol::NonTerminal(b) = sym {
                    if !reachable[b.index()] {
                        reachable[b.index()] = true;
                        stack.push(*b);
                    }
                }
            }
        }
        let mut remap = vec![u32::MAX; self.rules.len()];
        let mut next = 0u32;
        for (i, &r) in reachable.iter().enumerate() {
            if r {
                remap[i] = next;
                next += 1;
            }
        }
        let rules = self
            .rules
            .iter()
            .enumerate()
            .filter(|(i, _)| reachable[*i])
            .map(|(_, rhs)| {
                rhs.iter()
                    .map(|s| match s {
                        Symbol::Terminal(t) => Symbol::Terminal(*t),
                        Symbol::NonTerminal(b) => {
                            Symbol::NonTerminal(NonTerminal(remap[b.index()]))
                        }
                    })
                    .collect()
            })
            .collect();
        Slp::new(rules, NonTerminal(remap[self.start.index()]))
            .expect("garbage collection preserves validity")
    }
}

/// Computes a bottom-up topological order over the rule table, failing with
/// [`SlpError::Cyclic`] if the derivation relation has a cycle.
pub(crate) fn topological_order<T: Terminal>(
    rules: &[Vec<Symbol<T>>],
) -> Result<Vec<NonTerminal>, SlpError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; rules.len()];
    let mut order = Vec::with_capacity(rules.len());
    // Iterative DFS with an explicit stack of (node, child-cursor) pairs to
    // avoid recursion limits on very deep (chain-shaped) grammars.
    for root in 0..rules.len() {
        if marks[root] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        marks[root] = Mark::Grey;
        loop {
            let (node, next_child) = {
                let Some(top) = stack.last_mut() else { break };
                let node = top.0;
                if top.1 < rules[node].len() {
                    let idx = top.1;
                    top.1 += 1;
                    (node, Some(idx))
                } else {
                    (node, None)
                }
            };
            match next_child {
                Some(idx) => {
                    if let Symbol::NonTerminal(child) = rules[node][idx] {
                        match marks[child.index()] {
                            Mark::White => {
                                marks[child.index()] = Mark::Grey;
                                stack.push((child.index(), 0));
                            }
                            Mark::Grey => {
                                return Err(SlpError::Cyclic {
                                    non_terminal: child.0,
                                });
                            }
                            Mark::Black => {}
                        }
                    }
                }
                None => {
                    stack.pop();
                    marks[node] = Mark::Black;
                    order.push(NonTerminal(node as u32));
                }
            }
        }
    }
    Ok(order)
}

/// Computes all derived lengths `|D(A)|` in one bottom-up pass (Lemma 4.4).
pub(crate) fn compute_lengths<T: Terminal>(
    rules: &[Vec<Symbol<T>>],
    topo: &[NonTerminal],
) -> Vec<u64> {
    let mut lengths = vec![0u64; rules.len()];
    for &nt in topo {
        let mut len = 0u64;
        for sym in &rules[nt.index()] {
            len += match sym {
                Symbol::Terminal(_) => 1,
                Symbol::NonTerminal(b) => lengths[b.index()],
            };
        }
        lengths[nt.index()] = len;
    }
    lengths
}

/// Convenience constructor for rule tables written as slices of symbols.
pub fn rule<T: Terminal>(symbols: &[Symbol<T>]) -> Vec<Symbol<T>> {
    symbols.to_vec()
}

/// Shorthand for a terminal symbol.
pub fn t<T: Terminal>(x: T) -> Symbol<T> {
    Symbol::Terminal(x)
}

/// Shorthand for a non-terminal symbol.
pub fn nt<T: Terminal>(i: u32) -> Symbol<T> {
    Symbol::NonTerminal(NonTerminal(i))
}

/// Deduplicates structurally identical rules (hash-consing pass): repeatedly
/// merges non-terminals with identical right-hand sides.  Preserves the
/// derived document and never increases the size.
pub fn deduplicate_rules<T: Terminal>(slp: &Slp<T>) -> Slp<T> {
    let mut rules: Vec<Vec<Symbol<T>>> = slp.rules().to_vec();
    let mut start = slp.start();
    loop {
        let mut canon: HashMap<Vec<Symbol<T>>, NonTerminal> = HashMap::new();
        let mut remap: Vec<NonTerminal> = (0..rules.len() as u32).map(NonTerminal).collect();
        let mut changed = false;
        for (i, rhs) in rules.iter().enumerate() {
            match canon.get(rhs) {
                Some(&existing) => {
                    remap[i] = existing;
                    changed = true;
                }
                None => {
                    canon.insert(rhs.clone(), NonTerminal(i as u32));
                }
            }
        }
        if !changed {
            break;
        }
        for rhs in rules.iter_mut() {
            for sym in rhs.iter_mut() {
                if let Symbol::NonTerminal(b) = sym {
                    *b = remap[b.index()];
                }
            }
        }
        start = remap[start.index()];
        let slp2 = Slp::new(rules, start).expect("deduplication preserves validity");
        let slp2 = slp2.garbage_collect();
        rules = slp2.rules().to_vec();
        start = slp2.start();
    }
    Slp::new(rules, start).expect("deduplication preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_41() -> Slp<u8> {
        // Example 4.1: S0 -> A b a A B b, A -> B a B, B -> baab
        // Non-terminals: 0 = S0, 1 = A, 2 = B.
        let rules = vec![
            vec![nt(1), t(b'b'), t(b'a'), nt(1), nt(2), t(b'b')],
            vec![nt(2), t(b'a'), nt(2)],
            vec![t(b'b'), t(b'a'), t(b'a'), t(b'b')],
        ];
        Slp::new(rules, NonTerminal(0)).unwrap()
    }

    #[test]
    fn example_4_1_derives_expected_document() {
        let s = example_41();
        assert_eq!(s.derive(), b"baababaabbabaababaabbaabb".to_vec());
        assert_eq!(s.document_len(), 25);
        assert_eq!(s.size(), 3 + 6 + 3 + 4); // |N| + rhs lengths = 16
        assert_eq!(s.size(), 16);
    }

    #[test]
    fn lengths_and_depths() {
        let s = example_41();
        assert_eq!(s.derived_len(NonTerminal(2)), 4);
        assert_eq!(s.derived_len(NonTerminal(1)), 9);
        assert_eq!(s.derived_len(NonTerminal(0)), 25);
        assert_eq!(s.depth_of(NonTerminal(2)), 1);
        assert_eq!(s.depth_of(NonTerminal(1)), 2);
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn bottom_up_order_is_consistent() {
        let s = example_41();
        let order = s.bottom_up_order();
        let pos: Vec<usize> = {
            let mut pos = vec![0; s.num_non_terminals()];
            for (i, nt) in order.iter().enumerate() {
                pos[nt.index()] = i;
            }
            pos
        };
        for (a, rhs) in s.rules().iter().enumerate() {
            for sym in rhs {
                if let Symbol::NonTerminal(b) = sym {
                    assert!(pos[b.index()] < pos[a], "child must come before parent");
                }
            }
        }
    }

    #[test]
    fn rejects_empty_grammar() {
        assert_eq!(
            Slp::<u8>::new(vec![], NonTerminal(0)).unwrap_err(),
            SlpError::Empty
        );
    }

    #[test]
    fn rejects_empty_rule() {
        let err = Slp::<u8>::new(vec![vec![]], NonTerminal(0)).unwrap_err();
        assert_eq!(err, SlpError::EmptyRule { non_terminal: 0 });
    }

    #[test]
    fn rejects_undefined_non_terminal() {
        let err = Slp::<u8>::new(vec![vec![nt(5)]], NonTerminal(0)).unwrap_err();
        assert_eq!(
            err,
            SlpError::UndefinedNonTerminal {
                referencing: 0,
                undefined: 5
            }
        );
    }

    #[test]
    fn rejects_invalid_start() {
        let err = Slp::<u8>::new(vec![vec![t(b'a')]], NonTerminal(3)).unwrap_err();
        assert_eq!(err, SlpError::InvalidStart { start: 3, rules: 1 });
    }

    #[test]
    fn rejects_cycles() {
        // 0 -> 1, 1 -> 0 a
        let rules = vec![vec![nt(1)], vec![nt(0), t(b'a')]];
        let err = Slp::<u8>::new(rules, NonTerminal(0)).unwrap_err();
        matches!(err, SlpError::Cyclic { .. });
        // self-loop
        let rules = vec![vec![nt(0), t(b'a')]];
        let err = Slp::<u8>::new(rules, NonTerminal(0)).unwrap_err();
        assert!(matches!(err, SlpError::Cyclic { .. }));
    }

    #[test]
    fn terminals_are_collected_sorted() {
        let s = example_41();
        assert_eq!(s.terminals(), vec![b'a', b'b']);
    }

    #[test]
    fn map_terminals_preserves_structure() {
        let s = example_41();
        let mapped = s.map_terminals(|c| c as u16 + 1000);
        assert_eq!(
            mapped.derive(),
            s.derive()
                .iter()
                .map(|&c| c as u16 + 1000)
                .collect::<Vec<_>>()
        );
        assert_eq!(mapped.size(), s.size());
    }

    #[test]
    fn garbage_collect_drops_unreachable() {
        // 0 -> a, 1 -> b (unreachable), start = 0
        let rules = vec![vec![t(b'a')], vec![t(b'b')]];
        let s = Slp::new(rules, NonTerminal(0)).unwrap();
        let gc = s.garbage_collect();
        assert_eq!(gc.num_non_terminals(), 1);
        assert_eq!(gc.derive(), b"a".to_vec());
    }

    #[test]
    fn deduplicate_merges_identical_rules() {
        // 0 -> 1 2, 1 -> ab, 2 -> ab  => 1 and 2 merge
        let rules = vec![
            vec![nt(1), nt(2)],
            vec![t(b'a'), t(b'b')],
            vec![t(b'a'), t(b'b')],
        ];
        let s = Slp::new(rules, NonTerminal(0)).unwrap();
        let d = deduplicate_rules(&s);
        assert_eq!(d.derive(), b"abab".to_vec());
        assert_eq!(d.num_non_terminals(), 2);
    }

    #[test]
    fn deep_grammar_does_not_overflow_stack() {
        // A chain of 100_000 rules: X_i -> X_{i-1} a
        let n = 100_000u32;
        let mut rules: Vec<Vec<Symbol<u8>>> = vec![vec![t(b'a')]];
        for i in 1..n {
            rules.push(vec![nt(i - 1), t(b'a')]);
        }
        let s = Slp::new(rules, NonTerminal(n - 1)).unwrap();
        assert_eq!(s.document_len(), n as u64);
        assert_eq!(s.depth(), n);
        assert_eq!(s.derive().len(), n as usize);
    }
}
