//! A batched Re-Pair grammar compressor.
//!
//! Classic Re-Pair repeatedly replaces the single most frequent adjacent
//! pair of symbols by a fresh non-terminal.  This implementation performs
//! *batched* rounds: in each round it counts all adjacent pairs, then
//! replaces every pair occurring at least [`RePair::min_count`] times in one
//! left-to-right sweep (greedy, non-overlapping).  The sequence typically
//! shrinks geometrically, giving `O(d log d)` behaviour on repetitive
//! documents; when no pair repeats any more, the remaining sequence is
//! folded into a balanced binary grammar.

use super::Compressor;
use crate::error::SlpError;
use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};
use std::collections::HashMap;

/// Batched Re-Pair compressor (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RePair {
    /// A pair must occur at least this often (non-overlapping) in a round to
    /// be replaced.  Must be at least 2.
    pub min_count: usize,
    /// Upper bound on the number of replacement rounds (a safety valve; the
    /// default is effectively unbounded).
    pub max_rounds: usize,
}

impl Default for RePair {
    fn default() -> Self {
        RePair {
            min_count: 2,
            max_rounds: usize::MAX,
        }
    }
}

impl Compressor for RePair {
    fn try_compress(&self, doc: &[u8]) -> Result<NormalFormSlp<u8>, SlpError> {
        if doc.is_empty() {
            return Err(SlpError::EmptyDocument);
        }
        let min_count = self.min_count.max(2);
        let mut rules: Vec<NfRule<u8>> = Vec::new();
        let mut leaf_of: HashMap<u8, NonTerminal> = HashMap::new();
        let mut pair_of: HashMap<(NonTerminal, NonTerminal), NonTerminal> = HashMap::new();

        // The working sequence of non-terminals, initially the leaves.
        let mut seq: Vec<NonTerminal> = doc
            .iter()
            .map(|&c| {
                *leaf_of.entry(c).or_insert_with(|| {
                    rules.push(NfRule::Leaf(c));
                    NonTerminal((rules.len() - 1) as u32)
                })
            })
            .collect();

        let mut rounds = 0usize;
        while seq.len() > 1 && rounds < self.max_rounds {
            rounds += 1;
            // Count adjacent pairs (overlapping occurrences counted once per
            // position; the greedy sweep below takes care of overlaps).
            let mut counts: HashMap<(NonTerminal, NonTerminal), usize> = HashMap::new();
            for w in seq.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            let frequent: std::collections::HashSet<(NonTerminal, NonTerminal)> = counts
                .into_iter()
                .filter(|&(_, c)| c >= min_count)
                .map(|(p, _)| p)
                .collect();
            if frequent.is_empty() {
                break;
            }
            // Greedy non-overlapping left-to-right replacement sweep.
            let mut next = Vec::with_capacity(seq.len() / 2 + 1);
            let mut i = 0usize;
            let mut replaced_any = false;
            while i < seq.len() {
                if i + 1 < seq.len() && frequent.contains(&(seq[i], seq[i + 1])) {
                    let key = (seq[i], seq[i + 1]);
                    let id = *pair_of.entry(key).or_insert_with(|| {
                        rules.push(NfRule::Pair(key.0, key.1));
                        NonTerminal((rules.len() - 1) as u32)
                    });
                    next.push(id);
                    i += 2;
                    replaced_any = true;
                } else {
                    next.push(seq[i]);
                    i += 1;
                }
            }
            seq = next;
            if !replaced_any {
                break;
            }
        }

        // Fold whatever is left into a balanced binary grammar.
        let root = fold_balanced(&seq, &mut rules, &mut pair_of);
        NormalFormSlp::new(rules, root)
    }

    fn name(&self) -> &'static str {
        "repair"
    }
}

fn fold_balanced<T: Terminal>(
    seq: &[NonTerminal],
    rules: &mut Vec<NfRule<T>>,
    pair_of: &mut HashMap<(NonTerminal, NonTerminal), NonTerminal>,
) -> NonTerminal {
    debug_assert!(!seq.is_empty());
    if seq.len() == 1 {
        return seq[0];
    }
    let mid = seq.len() / 2;
    let left = fold_balanced(&seq[..mid], rules, pair_of);
    let right = fold_balanced(&seq[mid..], rules, pair_of);
    *pair_of.entry((left, right)).or_insert_with(|| {
        rules.push(NfRule::Pair(left, right));
        NonTerminal((rules.len() - 1) as u32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_on_plain_text() {
        let doc = b"how much wood would a woodchuck chuck if a woodchuck could chuck wood".to_vec();
        let slp = RePair::default().compress(&doc);
        assert_eq!(slp.derive(), doc);
    }

    #[test]
    fn unary_document_compresses_to_logarithmic_size() {
        let doc = vec![b'z'; 1 << 16];
        let slp = RePair::default().compress(&doc);
        assert_eq!(slp.document_len(), 1 << 16);
        assert!(slp.size() < 100, "size was {}", slp.size());
        assert!(slp.depth() <= 20, "depth was {}", slp.depth());
    }

    #[test]
    fn periodic_document_compresses_well() {
        let doc: Vec<u8> = std::iter::repeat_n(b"0123456789".iter().copied(), 1000)
            .flatten()
            .collect();
        let slp = RePair::default().compress(&doc);
        assert_eq!(slp.derive(), doc);
        assert!(slp.size() < 300, "size was {}", slp.size());
    }

    #[test]
    fn max_rounds_limits_work_but_stays_correct() {
        let doc: Vec<u8> = std::iter::repeat_n(b"ab".iter().copied(), 64)
            .flatten()
            .collect();
        let limited = RePair {
            min_count: 2,
            max_rounds: 1,
        };
        let slp = limited.compress(&doc);
        assert_eq!(slp.derive(), doc);
    }

    #[test]
    fn min_count_below_two_is_clamped() {
        let doc = b"abcdefgh".to_vec();
        let aggressive = RePair {
            min_count: 0,
            max_rounds: usize::MAX,
        };
        let slp = aggressive.compress(&doc);
        assert_eq!(slp.derive(), doc);
    }

    #[test]
    fn random_like_document_round_trips() {
        // A de Bruijn-ish sequence with few repeated pairs.
        let doc: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let slp = RePair::default().compress(&doc);
        assert_eq!(slp.derive(), doc);
    }
}
