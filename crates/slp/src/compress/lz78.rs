//! An LZ78-derived grammar compressor.
//!
//! The document is parsed into LZ78 phrases (each phrase is a previously
//! seen phrase extended by one terminal); every phrase becomes one
//! non-terminal `P_i → P_j · T_c`, and the sequence of phrases is folded into
//! a balanced binary grammar.  This mirrors the paper's remark (Section 1.1)
//! that dictionary compressors of the LZ family convert to SLPs of similar
//! size.

use super::Compressor;
use crate::error::SlpError;
use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};
use std::collections::HashMap;

/// The LZ78-based compressor (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lz78;

impl Compressor for Lz78 {
    fn try_compress(&self, doc: &[u8]) -> Result<NormalFormSlp<u8>, SlpError> {
        if doc.is_empty() {
            return Err(SlpError::EmptyDocument);
        }
        let mut rules: Vec<NfRule<u8>> = Vec::new();
        let mut leaf_of: HashMap<u8, NonTerminal> = HashMap::new();
        let mut pair_of: HashMap<(NonTerminal, NonTerminal), NonTerminal> = HashMap::new();
        let mut leaf = |c: u8, rules: &mut Vec<NfRule<u8>>| -> NonTerminal {
            *leaf_of.entry(c).or_insert_with(|| {
                rules.push(NfRule::Leaf(c));
                NonTerminal((rules.len() - 1) as u32)
            })
        };

        // LZ78 dictionary: maps (phrase id, next terminal) -> phrase id.
        // Phrase id 0 is the empty phrase.
        let mut dict: HashMap<(usize, u8), usize> = HashMap::new();
        // For each non-empty phrase, the non-terminal deriving it.
        let mut phrase_nt: Vec<Option<NonTerminal>> = vec![None];
        // The sequence of phrases the document factorises into.
        let mut phrase_seq: Vec<NonTerminal> = Vec::new();

        let mut current = 0usize; // current phrase id (0 = empty)
        for &c in doc {
            if let Some(&next) = dict.get(&(current, c)) {
                current = next;
            } else {
                // New phrase: current extended by c.
                let leaf_nt = leaf(c, &mut rules);
                let nt = match phrase_nt[current] {
                    None => leaf_nt, // extension of the empty phrase
                    Some(prev) => *pair_of.entry((prev, leaf_nt)).or_insert_with(|| {
                        rules.push(NfRule::Pair(prev, leaf_nt));
                        NonTerminal((rules.len() - 1) as u32)
                    }),
                };
                let id = phrase_nt.len();
                phrase_nt.push(Some(nt));
                dict.insert((current, c), id);
                phrase_seq.push(nt);
                current = 0;
            }
        }
        // A possibly unfinished phrase at the end of the document.
        if current != 0 {
            phrase_seq.push(phrase_nt[current].expect("non-empty phrase has a non-terminal"));
        }

        let root = fold_balanced(&phrase_seq, &mut rules, &mut pair_of);
        NormalFormSlp::new(rules, root)
    }

    fn name(&self) -> &'static str {
        "lz78"
    }
}

fn fold_balanced<T: Terminal>(
    seq: &[NonTerminal],
    rules: &mut Vec<NfRule<T>>,
    pair_of: &mut HashMap<(NonTerminal, NonTerminal), NonTerminal>,
) -> NonTerminal {
    debug_assert!(!seq.is_empty());
    if seq.len() == 1 {
        return seq[0];
    }
    let mid = seq.len() / 2;
    let left = fold_balanced(&seq[..mid], rules, pair_of);
    let right = fold_balanced(&seq[mid..], rules, pair_of);
    *pair_of.entry((left, right)).or_insert_with(|| {
        rules.push(NfRule::Pair(left, right));
        NonTerminal((rules.len() - 1) as u32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_lz78_example_round_trips() {
        let doc = b"abababababababab".to_vec();
        let slp = Lz78.compress(&doc);
        assert_eq!(slp.derive(), doc);
    }

    #[test]
    fn unfinished_final_phrase_is_emitted() {
        // "aa" -> phrase "a", then the trailing "a" matches an existing
        // phrase and must still be emitted.
        let doc = b"aa".to_vec();
        let slp = Lz78.compress(&doc);
        assert_eq!(slp.derive(), doc);
        let doc = b"abcabcabcab".to_vec();
        let slp = Lz78.compress(&doc);
        assert_eq!(slp.derive(), doc);
    }

    #[test]
    fn phrase_count_is_sublinear_on_unary_input() {
        let doc = vec![b'a'; 10_000];
        let slp = Lz78.compress(&doc);
        assert_eq!(slp.derive(), doc);
        // LZ78 produces O(sqrt(d)) phrases on unary input.
        assert!(
            slp.num_non_terminals() < 1000,
            "rules: {}",
            slp.num_non_terminals()
        );
    }

    #[test]
    fn mixed_text_round_trips() {
        let doc =
            b"she sells sea shells by the sea shore; the shells she sells are sea shells".to_vec();
        let slp = Lz78.compress(&doc);
        assert_eq!(slp.derive(), doc);
    }
}
