//! The chain (left-deep) grammar: a deliberately *unbalanced*, uncompressed
//! SLP used as an ablation baseline (experiment E8 in DESIGN.md).
//!
//! `X_1 → c_1`, `X_i → X_{i-1} · T_{c_i}`: size `Θ(d)`, depth `Θ(d)`.  It
//! exercises the worst case of every `depth(S)` factor in the paper's bounds
//! and is the input on which the balancing pass (Theorem 4.3 substitute)
//! matters most.

use super::Compressor;
use crate::error::SlpError;
use crate::grammar::NonTerminal;
use crate::normal_form::{NfRule, NormalFormSlp};
use std::collections::HashMap;

/// The chain compressor (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chain;

impl Compressor for Chain {
    fn try_compress(&self, doc: &[u8]) -> Result<NormalFormSlp<u8>, SlpError> {
        if doc.is_empty() {
            return Err(SlpError::EmptyDocument);
        }
        let mut rules: Vec<NfRule<u8>> = Vec::new();
        let mut leaf_of: HashMap<u8, NonTerminal> = HashMap::new();
        let mut leaf = |c: u8, rules: &mut Vec<NfRule<u8>>| -> NonTerminal {
            *leaf_of.entry(c).or_insert_with(|| {
                rules.push(NfRule::Leaf(c));
                NonTerminal((rules.len() - 1) as u32)
            })
        };
        let mut acc = leaf(doc[0], &mut rules);
        for &c in &doc[1..] {
            let l = leaf(c, &mut rules);
            rules.push(NfRule::Pair(acc, l));
            acc = NonTerminal((rules.len() - 1) as u32);
        }
        NormalFormSlp::new(rules, acc)
    }

    fn name(&self) -> &'static str {
        "chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_maximally_deep() {
        let doc = b"abcdefghij".to_vec();
        let slp = Chain.compress(&doc);
        assert_eq!(slp.derive(), doc);
        assert_eq!(slp.depth(), doc.len() as u32);
    }

    #[test]
    fn single_symbol_chain() {
        let slp = Chain.compress(b"q");
        assert_eq!(slp.derive(), b"q".to_vec());
        assert_eq!(slp.depth(), 1);
    }

    #[test]
    fn chain_size_is_linear() {
        let doc = vec![b'a'; 500];
        let slp = Chain.compress(&doc);
        assert!(slp.num_non_terminals() >= 500);
    }
}
