//! Grammar compressors: algorithms that turn an explicit document into a
//! (hopefully much smaller) normal-form SLP.
//!
//! The paper (Section 1.1) assumes documents arrive already compressed, e.g.
//! converted from LZ-family compressors; computing a *minimal* SLP is NP-hard
//! but good approximations are easy.  This module provides four compressors
//! with different size/speed/depth trade-offs:
//!
//! | Compressor | size on repetitive input | depth | speed |
//! |---|---|---|---|
//! | [`Bisection`] | good (hash-consed) | `⌈log₂ d⌉+1` (always balanced) | `O(d)` |
//! | [`RePair`] (batched) | best | `O(log d)` typically | `O(d log d)` typically |
//! | [`Lz78`] | moderate | up to `O(√d)` | `O(d)` |
//! | [`Chain`] | none (size `Θ(d)`) | `Θ(d)` | `O(d)` — ablation baseline |

mod bisection;
mod chain;
mod lz78;
mod repair;

pub use bisection::{bisection_slp, Bisection};
pub use chain::Chain;
pub use lz78::Lz78;
pub use repair::RePair;

use crate::error::SlpError;
use crate::normal_form::NormalFormSlp;

/// A grammar compressor: turns an explicit byte document into a normal-form
/// SLP that derives it.
///
/// The trait is object-safe (`Box<dyn Compressor>`), so benchmark sweeps can
/// iterate over compressors; it is specialised to byte documents, which is
/// what all workloads use.  Grammars over other alphabets can be built with
/// [`bisection_slp`], [`crate::SlpBuilder`] or [`crate::NormalFormSlp::from_document`].
pub trait Compressor {
    /// Compresses `doc` into a normal-form SLP.
    ///
    /// # Panics
    /// Panics if `doc` is empty (use [`Compressor::try_compress`] to get an
    /// error instead); SLPs cannot represent the empty document.
    fn compress(&self, doc: &[u8]) -> NormalFormSlp<u8> {
        self.try_compress(doc).expect("document must be non-empty")
    }

    /// Compresses `doc`, returning an error on the empty document.
    fn try_compress(&self, doc: &[u8]) -> Result<NormalFormSlp<u8>, SlpError>;

    /// A short human-readable name for reports and benchmarks.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_compressors() -> Vec<Box<dyn Compressor>> {
        vec![
            Box::new(Bisection),
            Box::new(RePair::default()),
            Box::new(Lz78),
            Box::new(Chain),
        ]
    }

    fn test_docs() -> Vec<Vec<u8>> {
        vec![
            b"a".to_vec(),
            b"ab".to_vec(),
            b"aaaaaaaaaaaaaaaa".to_vec(),
            b"abcabcabcabcabcabcabcabc".to_vec(),
            b"mississippi mississippi mississippi".to_vec(),
            b"the quick brown fox jumps over the lazy dog".to_vec(),
            (0..=255u8).collect(),
            std::iter::repeat_n(b"GATTACA".iter().copied(), 50)
                .flatten()
                .collect(),
        ]
    }

    #[test]
    fn all_compressors_round_trip() {
        for c in all_compressors() {
            for doc in test_docs() {
                let slp = c.compress(&doc);
                assert_eq!(slp.derive(), doc, "compressor {} round-trip", c.name());
                assert_eq!(slp.document_len(), doc.len() as u64);
            }
        }
    }

    #[test]
    fn all_compressors_reject_empty() {
        for c in all_compressors() {
            assert!(c.try_compress(&[]).is_err(), "{}", c.name());
        }
    }

    #[test]
    fn repetitive_documents_compress_well() {
        let doc: Vec<u8> = std::iter::repeat_n(b"abcd".iter().copied(), 1 << 12)
            .flatten()
            .collect(); // 16384 symbols, period 4
        for c in [&Bisection as &dyn Compressor, &RePair::default(), &Lz78] {
            let slp = c.compress(&doc);
            assert!(
                slp.size() < doc.len() / 4,
                "{} produced size {} for doc of length {}",
                c.name(),
                slp.size(),
                doc.len()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_compressors().iter().map(|c| c.name()).collect();
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
