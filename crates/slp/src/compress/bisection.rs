//! Bisection grammars: recursive halving with hash-consing.
//!
//! The document is split at the midpoint recursively; structurally equal
//! sub-grammars are shared (hash-consing on `(left, right)` rule pairs), so
//! equal substrings of equal length produced anywhere in the recursion reuse
//! the same non-terminal.  The resulting SLP is always perfectly balanced
//! (depth `⌈log₂ d⌉ + 1`), construction is `O(d)`, and periodic or
//! block-repetitive documents compress to `O(polylog d)` rules.

use super::Compressor;
use crate::error::SlpError;
use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};
use std::collections::HashMap;

/// The bisection compressor (see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bisection;

impl Compressor for Bisection {
    fn try_compress(&self, doc: &[u8]) -> Result<NormalFormSlp<u8>, SlpError> {
        bisection_slp(doc)
    }

    fn name(&self) -> &'static str {
        "bisection"
    }
}

/// Builds the hash-consed bisection SLP of a document (used by
/// [`NormalFormSlp::from_document`](crate::NormalFormSlp::from_document)).
pub fn bisection_slp<T: Terminal>(doc: &[T]) -> Result<NormalFormSlp<T>, SlpError> {
    if doc.is_empty() {
        return Err(SlpError::EmptyDocument);
    }
    let mut rules: Vec<NfRule<T>> = Vec::new();
    let mut leaf_of: HashMap<T, NonTerminal> = HashMap::new();
    let mut pair_of: HashMap<(NonTerminal, NonTerminal), NonTerminal> = HashMap::new();
    let root = build(doc, &mut rules, &mut leaf_of, &mut pair_of);
    NormalFormSlp::new(rules, root)
}

fn build<T: Terminal>(
    doc: &[T],
    rules: &mut Vec<NfRule<T>>,
    leaf_of: &mut HashMap<T, NonTerminal>,
    pair_of: &mut HashMap<(NonTerminal, NonTerminal), NonTerminal>,
) -> NonTerminal {
    if doc.len() == 1 {
        return *leaf_of.entry(doc[0]).or_insert_with(|| {
            rules.push(NfRule::Leaf(doc[0]));
            NonTerminal((rules.len() - 1) as u32)
        });
    }
    // Split at the largest power of two strictly below the length, so that
    // identical substrings occurring at different positions still produce
    // identical sub-grammars for their power-of-two aligned prefixes.
    let mid = largest_power_of_two_below(doc.len());
    let left = build(&doc[..mid], rules, leaf_of, pair_of);
    let right = build(&doc[mid..], rules, leaf_of, pair_of);
    *pair_of.entry((left, right)).or_insert_with(|| {
        rules.push(NfRule::Pair(left, right));
        NonTerminal((rules.len() - 1) as u32)
    })
}

fn largest_power_of_two_below(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut p = 1usize;
    while p * 2 < n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_split_points() {
        assert_eq!(largest_power_of_two_below(2), 1);
        assert_eq!(largest_power_of_two_below(3), 2);
        assert_eq!(largest_power_of_two_below(4), 2);
        assert_eq!(largest_power_of_two_below(5), 4);
        assert_eq!(largest_power_of_two_below(8), 4);
        assert_eq!(largest_power_of_two_below(9), 8);
    }

    #[test]
    fn unary_document_compresses_logarithmically() {
        let doc = vec![b'a'; 1 << 14];
        let slp = bisection_slp(&doc).unwrap();
        assert_eq!(slp.derive(), doc);
        assert!(slp.size() <= 3 * 15, "size was {}", slp.size());
        assert_eq!(slp.depth(), 15);
    }

    #[test]
    fn depth_is_logarithmic_for_any_document() {
        for len in [1usize, 2, 3, 5, 17, 100, 1000, 4097] {
            let doc: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let slp = bisection_slp(&doc).unwrap();
            assert_eq!(slp.derive(), doc);
            let bound = (len as f64).log2().ceil() as u32 + 1;
            assert!(
                slp.depth() <= bound.max(1),
                "len={len} depth={} bound={bound}",
                slp.depth()
            );
        }
    }

    #[test]
    fn sharing_keeps_size_near_linear_in_distinct_content() {
        // Two identical halves: the second half reuses the first half's rules.
        let half: Vec<u8> = (0..1024u32).map(|i| (i % 7) as u8).collect();
        let mut doc = half.clone();
        doc.extend_from_slice(&half);
        let slp = bisection_slp(&doc).unwrap();
        let half_slp = bisection_slp(&half).unwrap();
        // Only a constant number of extra rules on top of the half grammar.
        assert!(slp.num_non_terminals() <= half_slp.num_non_terminals() + 2);
    }
}
