//! # slp — straight-line programs (grammar-compressed strings)
//!
//! A *straight-line program* (SLP) is a context-free grammar that derives
//! exactly one word.  SLPs are the compression substrate of the PODS 2021
//! paper *"Spanner Evaluation over SLP-Compressed Documents"* (Schmid &
//! Schweikardt): a document `D` of length `d` is stored as an SLP `S` whose
//! size can be as small as `O(log d)`, and all evaluation tasks are solved
//! directly on `S` without decompressing.
//!
//! This crate provides everything the paper's Section 4 relies on:
//!
//! * [`Slp`] — general SLPs with arbitrary right-hand sides, validation and
//!   derivation ([`Slp::derive`], Section 4.1 of the paper).
//! * [`NormalFormSlp`] — SLPs in the paper's *normal form* (Chomsky normal
//!   form with one leaf non-terminal per terminal), the representation all
//!   evaluation algorithms operate on.  Lengths `|D(A)|` (Lemma 4.4), depths
//!   and a topological (bottom-up) order are precomputed.
//! * Random access and substring extraction on compressed documents
//!   ([`NormalFormSlp::symbol_at`], [`NormalFormSlp::extract`]), used by the
//!   paper's model-checking algorithm (Theorem 5.1(2)).
//! * Grammar compressors ([`compress`]): Re-Pair, LZ78-derived grammars,
//!   hash-consed bisection grammars and a trivial chain grammar, plus
//!   direct constructions of classic highly compressible families
//!   ([`families`]).
//! * Sharding ([`shard`]): cutting one SLP at the start rule into `k`
//!   balanced sub-grammars (and composing them back), the substrate of the
//!   evaluation service's scatter-gather corpus layer.
//! * A balancing pass ([`balance`]) standing in for the
//!   Ganardi–Jež–Lohrey balancing theorem (Theorem 4.3 of the paper); see
//!   `DESIGN.md` §4 for the substitution argument.
//! * The paper's own example grammars ([`examples`], Examples 4.1 and 4.2).
//!
//! ## Quick example
//!
//! ```
//! use slp::{families, compress::{Compressor, RePair}};
//!
//! // The document a^(2^10) has an SLP with 11 inner rules.
//! let s = families::power_of_two_unary(b'a', 10);
//! assert_eq!(s.document_len(), 1024);
//! assert!(s.size() < 40);
//!
//! // Compress an explicit document with Re-Pair and get it back.
//! let doc = b"abcabcabcabcabcabc".to_vec();
//! let g = RePair::default().compress(&doc);
//! assert_eq!(g.derive(), doc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod builder;
pub mod compress;
pub mod error;
pub mod examples;
pub mod families;
pub mod grammar;
pub mod hash;
pub mod normal_form;
pub mod shard;
pub mod stats;

pub use builder::SlpBuilder;
pub use error::SlpError;
pub use grammar::{NonTerminal, Slp, Symbol, Terminal};
pub use hash::{block_content_hash, Fnv64};
pub use normal_form::{NfRule, NormalFormSlp};
pub use shard::{ShardLayout, ShardedDocument};
pub use stats::SlpStats;
