//! SLPs in the paper's *normal form*: Chomsky normal form where every rule is
//! either `A → BC` (inner non-terminal) or `A → a` (leaf non-terminal), and
//! by construction at most one leaf non-terminal exists per terminal
//! (Section 4.1).  All evaluation algorithms of the paper operate on this
//! representation.

use crate::error::SlpError;
use crate::grammar::{NonTerminal, Slp, Symbol, Terminal};

/// A rule of a normal-form SLP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfRule<T> {
    /// Leaf rule `T_x → x`.
    Leaf(T),
    /// Inner rule `A → BC`.
    Pair(NonTerminal, NonTerminal),
}

/// One step of a root-to-leaf descent in the derivation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// The inner non-terminal visited at this step.
    pub node: NonTerminal,
    /// `true` if the descent continued into the *right* child.
    pub went_right: bool,
    /// Length of the left child's expansion `|D(B)|` (the shift that applies
    /// to positions when descending right).
    pub left_len: u64,
}

/// A straight-line program in normal form (Chomsky normal form with leaf
/// non-terminals), with derived lengths, depths and a bottom-up order
/// precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalFormSlp<T> {
    rules: Vec<NfRule<T>>,
    start: NonTerminal,
    topo: Vec<NonTerminal>,
    lengths: Vec<u64>,
    depths: Vec<u32>,
}

impl<T: Terminal> NormalFormSlp<T> {
    /// Builds and validates a normal-form SLP from its rule table.
    pub fn new(rules: Vec<NfRule<T>>, start: NonTerminal) -> Result<Self, SlpError> {
        if rules.is_empty() {
            return Err(SlpError::Empty);
        }
        if start.index() >= rules.len() {
            return Err(SlpError::InvalidStart {
                start: start.0,
                rules: rules.len(),
            });
        }
        for (i, r) in rules.iter().enumerate() {
            if let NfRule::Pair(b, c) = r {
                for child in [b, c] {
                    if child.index() >= rules.len() {
                        return Err(SlpError::UndefinedNonTerminal {
                            referencing: i as u32,
                            undefined: child.0,
                        });
                    }
                }
            }
        }
        let general: Vec<Vec<Symbol<T>>> = rules
            .iter()
            .map(|r| match r {
                NfRule::Leaf(t) => vec![Symbol::Terminal(*t)],
                NfRule::Pair(b, c) => vec![Symbol::NonTerminal(*b), Symbol::NonTerminal(*c)],
            })
            .collect();
        let topo = crate::grammar::topological_order(&general)?;
        let lengths = crate::grammar::compute_lengths(&general, &topo);
        let mut depths = vec![0u32; rules.len()];
        for &a in &topo {
            depths[a.index()] = match rules[a.index()] {
                NfRule::Leaf(_) => 1,
                NfRule::Pair(b, c) => 1 + depths[b.index()].max(depths[c.index()]),
            };
        }
        Ok(NormalFormSlp {
            rules,
            start,
            topo,
            lengths,
            depths,
        })
    }

    /// Converts a general SLP into normal form.
    ///
    /// Unit rules are eliminated by aliasing, terminals are factored through
    /// unique leaf non-terminals and longer right-hand sides are binarised by
    /// balanced folding (so the conversion increases the depth of a rule of
    /// length `ℓ` only by `O(log ℓ)`).
    pub fn from_slp(slp: &Slp<T>) -> Result<Self, SlpError> {
        let n = slp.num_non_terminals();
        let mut rules: Vec<NfRule<T>> = Vec::with_capacity(n * 2);
        // Unique leaf non-terminal per terminal.
        let mut leaf_of: std::collections::HashMap<T, NonTerminal> =
            std::collections::HashMap::new();
        // Final normal-form non-terminal that each original non-terminal maps to.
        let mut image: Vec<Option<NonTerminal>> = vec![None; n];

        fn leaf_for<T: Terminal>(
            t: T,
            rules: &mut Vec<NfRule<T>>,
            leaf_of: &mut std::collections::HashMap<T, NonTerminal>,
        ) -> NonTerminal {
            *leaf_of.entry(t).or_insert_with(|| {
                let id = NonTerminal(rules.len() as u32);
                rules.push(NfRule::Leaf(t));
                id
            })
        }

        /// Balanced binarisation of a sequence of already-converted symbols.
        fn fold<T: Terminal>(syms: &[NonTerminal], rules: &mut Vec<NfRule<T>>) -> NonTerminal {
            match syms.len() {
                0 => unreachable!("empty rules are rejected during Slp construction"),
                1 => syms[0],
                _ => {
                    let mid = syms.len() / 2;
                    let left = fold(&syms[..mid], rules);
                    let right = fold(&syms[mid..], rules);
                    let id = NonTerminal(rules.len() as u32);
                    rules.push(NfRule::Pair(left, right));
                    id
                }
            }
        }

        for &a in slp.bottom_up_order() {
            let rhs = slp.rule(a);
            let converted: Vec<NonTerminal> =
                rhs.iter()
                    .map(|sym| match sym {
                        Symbol::Terminal(t) => leaf_for(*t, &mut rules, &mut leaf_of),
                        Symbol::NonTerminal(b) => image[b.index()]
                            .expect("bottom-up order guarantees children are converted"),
                    })
                    .collect();
            image[a.index()] = Some(fold(&converted, &mut rules));
        }

        let start = image[slp.start().index()].expect("start is converted");
        NormalFormSlp::new(rules, start)
    }

    /// Builds a normal-form SLP for an explicit document by balanced binary
    /// splitting with hash-consing of repeated sub-grammars.  The result has
    /// depth `⌈log₂ d⌉ + 1` and size at most `O(d)` (much smaller on
    /// repetitive inputs thanks to the hash-consing).
    pub fn from_document(doc: &[T]) -> Result<Self, SlpError> {
        crate::compress::bisection_slp(doc)
    }

    /// The start symbol.
    #[inline]
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// Number of non-terminals `|N|`.
    #[inline]
    pub fn num_non_terminals(&self) -> usize {
        self.rules.len()
    }

    /// The rule for non-terminal `a`.
    #[inline]
    pub fn rule(&self, a: NonTerminal) -> NfRule<T> {
        self.rules[a.index()]
    }

    /// All rules, indexed by non-terminal.
    #[inline]
    pub fn rules(&self) -> &[NfRule<T>] {
        &self.rules
    }

    /// `true` if `a` is a leaf non-terminal (`a → x` for a terminal `x`).
    #[inline]
    pub fn is_leaf(&self, a: NonTerminal) -> bool {
        matches!(self.rules[a.index()], NfRule::Leaf(_))
    }

    /// The terminal of a leaf non-terminal, if `a` is one.
    #[inline]
    pub fn leaf_terminal(&self, a: NonTerminal) -> Option<T> {
        match self.rules[a.index()] {
            NfRule::Leaf(t) => Some(t),
            NfRule::Pair(..) => None,
        }
    }

    /// The children `(B, C)` of an inner non-terminal `A → BC`, if `a` is one.
    #[inline]
    pub fn children(&self, a: NonTerminal) -> Option<(NonTerminal, NonTerminal)> {
        match self.rules[a.index()] {
            NfRule::Pair(b, c) => Some((b, c)),
            NfRule::Leaf(_) => None,
        }
    }

    /// The paper's size measure `size(S) = |N| + Σ_A |D_S(A)|`; for Chomsky
    /// normal form this is at most `3·|N|`.
    pub fn size(&self) -> usize {
        self.rules.len()
            + self
                .rules
                .iter()
                .map(|r| match r {
                    NfRule::Leaf(_) => 1,
                    NfRule::Pair(..) => 2,
                })
                .sum::<usize>()
    }

    /// Non-terminals in bottom-up (topological) order.
    #[inline]
    pub fn bottom_up_order(&self) -> &[NonTerminal] {
        &self.topo
    }

    /// Length `|D(A)|` of the expansion of `a` (Lemma 4.4).
    #[inline]
    pub fn derived_len(&self, a: NonTerminal) -> u64 {
        self.lengths[a.index()]
    }

    /// Length of the derived document.
    #[inline]
    pub fn document_len(&self) -> u64 {
        self.lengths[self.start.index()]
    }

    /// Depth of non-terminal `a` (leaves have depth 1).
    #[inline]
    pub fn depth_of(&self, a: NonTerminal) -> u32 {
        self.depths[a.index()]
    }

    /// Depth of the SLP, `depth(S) = depth(S₀)`.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depths[self.start.index()]
    }

    /// The sorted set of terminals used by leaf rules.
    pub fn terminals(&self) -> Vec<T> {
        let mut ts: Vec<T> = self
            .rules
            .iter()
            .filter_map(|r| match r {
                NfRule::Leaf(t) => Some(*t),
                NfRule::Pair(..) => None,
            })
            .collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Converts back to a general [`Slp`] with the same non-terminal indices.
    pub fn to_general(&self) -> Slp<T> {
        let rules = self
            .rules
            .iter()
            .map(|r| match r {
                NfRule::Leaf(t) => vec![Symbol::Terminal(*t)],
                NfRule::Pair(b, c) => vec![Symbol::NonTerminal(*b), Symbol::NonTerminal(*c)],
            })
            .collect();
        Slp::new(rules, self.start).expect("normal-form SLPs are valid general SLPs")
    }

    /// Fully expands the word derived by non-terminal `a` (Θ(|D(A)|)).
    pub fn derive_from(&self, a: NonTerminal) -> Vec<T> {
        let mut out = Vec::with_capacity(self.derived_len(a) as usize);
        let mut stack = vec![a];
        while let Some(x) = stack.pop() {
            match self.rules[x.index()] {
                NfRule::Leaf(t) => out.push(t),
                NfRule::Pair(b, c) => {
                    stack.push(c);
                    stack.push(b);
                }
            }
        }
        out
    }

    /// Fully expands (decompresses) the document.
    pub fn derive(&self) -> Vec<T> {
        self.derive_from(self.start)
    }

    /// Random access: the terminal `D[pos]` at 1-based position `pos`,
    /// obtained by a root-to-leaf descent in `O(depth(S))` time
    /// (Section 4.2).
    pub fn symbol_at(&self, pos: u64) -> Result<T, SlpError> {
        if pos == 0 || pos > self.document_len() {
            return Err(SlpError::PositionOutOfBounds {
                position: pos,
                document_len: self.document_len(),
            });
        }
        let (_, leaf) = self.descend(pos);
        Ok(self
            .leaf_terminal(leaf)
            .expect("descent always ends at a leaf"))
    }

    /// The root-to-leaf path for a 1-based position: the inner non-terminals
    /// visited (with the direction taken and the left-child length, i.e. the
    /// position shift) and the leaf reached.
    ///
    /// This is exactly the traversal used in the proof of Theorem 5.1(2) to
    /// splice marker symbols into the compressed document.
    pub fn path_to(&self, pos: u64) -> Result<(Vec<PathStep>, NonTerminal), SlpError> {
        if pos == 0 || pos > self.document_len() {
            return Err(SlpError::PositionOutOfBounds {
                position: pos,
                document_len: self.document_len(),
            });
        }
        Ok(self.descend(pos))
    }

    fn descend(&self, pos: u64) -> (Vec<PathStep>, NonTerminal) {
        let mut steps = Vec::with_capacity(self.depth() as usize);
        let mut node = self.start;
        let mut offset = pos; // 1-based position within D(node)
        loop {
            match self.rules[node.index()] {
                NfRule::Leaf(_) => return (steps, node),
                NfRule::Pair(b, c) => {
                    let left_len = self.lengths[b.index()];
                    if offset <= left_len {
                        steps.push(PathStep {
                            node,
                            went_right: false,
                            left_len,
                        });
                        node = b;
                    } else {
                        steps.push(PathStep {
                            node,
                            went_right: true,
                            left_len,
                        });
                        offset -= left_len;
                        node = c;
                    }
                }
            }
        }
    }

    /// Extracts the substring `D[from..=to]` (1-based, inclusive) without
    /// decompressing the whole document; runs in `O(depth(S) + (to-from))`.
    pub fn extract(&self, from: u64, to: u64) -> Result<Vec<T>, SlpError> {
        let d = self.document_len();
        if from == 0 || from > d {
            return Err(SlpError::PositionOutOfBounds {
                position: from,
                document_len: d,
            });
        }
        if to < from || to > d {
            return Err(SlpError::PositionOutOfBounds {
                position: to,
                document_len: d,
            });
        }
        let want = (to - from + 1) as usize;
        let mut out = Vec::with_capacity(want);
        // Stack of (non-terminal, 1-based start offset of the remaining
        // range within its expansion).
        self.extract_rec(self.start, from, &mut out, want);
        Ok(out)
    }

    fn extract_rec(&self, node: NonTerminal, from: u64, out: &mut Vec<T>, want: usize) {
        // Iterative traversal: (node, from) where `from` is the 1-based first
        // wanted position inside D(node); collects until `out.len() == want`.
        let mut stack: Vec<(NonTerminal, u64)> = vec![(node, from)];
        while let Some((n, from)) = stack.pop() {
            if out.len() >= want {
                return;
            }
            match self.rules[n.index()] {
                NfRule::Leaf(t) => {
                    debug_assert_eq!(from, 1);
                    out.push(t);
                }
                NfRule::Pair(b, c) => {
                    let left_len = self.lengths[b.index()];
                    if from > left_len {
                        stack.push((c, from - left_len));
                    } else {
                        // Right child first on the stack so the left child is
                        // processed first.
                        stack.push((c, 1));
                        stack.push((b, from));
                    }
                }
            }
        }
    }

    /// Applies a function to every terminal, keeping the grammar structure.
    pub fn map_terminals<U: Terminal>(&self, mut f: impl FnMut(T) -> U) -> NormalFormSlp<U> {
        let rules = self
            .rules
            .iter()
            .map(|r| match r {
                NfRule::Leaf(t) => NfRule::Leaf(f(*t)),
                NfRule::Pair(b, c) => NfRule::Pair(*b, *c),
            })
            .collect();
        NormalFormSlp {
            rules,
            start: self.start,
            topo: self.topo.clone(),
            lengths: self.lengths.clone(),
            depths: self.depths.clone(),
        }
    }

    /// Returns a new SLP deriving `D(S) · t` (the document with one terminal
    /// appended).  Used by the evaluator to realise the paper's
    /// "non-tail-spanning via `#`" transformation (Section 6.1) in `O(1)`
    /// additional rules.
    pub fn append_terminal(&self, t: T) -> NormalFormSlp<T> {
        let mut rules = self.rules.clone();
        let leaf = self
            .rules
            .iter()
            .position(|r| matches!(r, NfRule::Leaf(x) if *x == t))
            .map(|i| NonTerminal(i as u32))
            .unwrap_or_else(|| {
                rules.push(NfRule::Leaf(t));
                NonTerminal((rules.len() - 1) as u32)
            });
        let new_start = NonTerminal(rules.len() as u32);
        rules.push(NfRule::Pair(self.start, leaf));
        NormalFormSlp::new(rules, new_start).expect("appending preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{nt, t};

    /// The paper's Example 4.2 normal-form SLP for `aabccaabaa`.
    fn example_42() -> NormalFormSlp<u8> {
        crate::examples::example_4_2()
    }

    #[test]
    fn example_4_2_derives_expected_document() {
        let s = example_42();
        assert_eq!(s.derive(), b"aabccaabaa".to_vec());
        assert_eq!(s.document_len(), 10);
    }

    #[test]
    fn from_slp_preserves_document() {
        // Example 4.1 general SLP.
        let rules = vec![
            vec![nt(1), t(b'b'), t(b'a'), nt(1), nt(2), t(b'b')],
            vec![nt(2), t(b'a'), nt(2)],
            vec![t(b'b'), t(b'a'), t(b'a'), t(b'b')],
        ];
        let slp = Slp::new(rules, NonTerminal(0)).unwrap();
        let nf = NormalFormSlp::from_slp(&slp).unwrap();
        assert_eq!(nf.derive(), slp.derive());
        // Every rule is a leaf or a pair; one leaf per terminal.
        let leaves: Vec<u8> = nf.terminals();
        assert_eq!(leaves, vec![b'a', b'b']);
        let leaf_count = nf
            .rules()
            .iter()
            .filter(|r| matches!(r, NfRule::Leaf(_)))
            .count();
        assert_eq!(leaf_count, 2);
    }

    #[test]
    fn from_document_round_trips() {
        for doc in [
            b"a".to_vec(),
            b"ab".to_vec(),
            b"abcabcabc".to_vec(),
            b"mississippi".to_vec(),
            (0..255u8).collect::<Vec<u8>>(),
        ] {
            let nf = NormalFormSlp::from_document(&doc).unwrap();
            assert_eq!(nf.derive(), doc);
            assert_eq!(nf.document_len(), doc.len() as u64);
        }
    }

    #[test]
    fn from_document_rejects_empty() {
        assert_eq!(
            NormalFormSlp::<u8>::from_document(&[]).unwrap_err(),
            SlpError::EmptyDocument
        );
    }

    #[test]
    fn random_access_matches_decompression() {
        let doc = b"the quick brown fox jumps over the lazy dog".to_vec();
        let nf = NormalFormSlp::from_document(&doc).unwrap();
        for (i, &c) in doc.iter().enumerate() {
            assert_eq!(nf.symbol_at(i as u64 + 1).unwrap(), c);
        }
        assert!(nf.symbol_at(0).is_err());
        assert!(nf.symbol_at(doc.len() as u64 + 1).is_err());
    }

    #[test]
    fn extraction_matches_slices() {
        let doc = b"abracadabra_abracadabra".to_vec();
        let nf = NormalFormSlp::from_document(&doc).unwrap();
        for from in 1..=doc.len() as u64 {
            for to in from..=doc.len() as u64 {
                let got = nf.extract(from, to).unwrap();
                assert_eq!(got, doc[(from - 1) as usize..to as usize].to_vec());
            }
        }
        assert!(nf.extract(0, 3).is_err());
        assert!(nf.extract(3, 2).is_err());
        assert!(nf.extract(1, doc.len() as u64 + 1).is_err());
    }

    #[test]
    fn path_to_ends_at_correct_leaf() {
        let s = example_42();
        let doc = s.derive();
        for pos in 1..=doc.len() as u64 {
            let (steps, leaf) = s.path_to(pos).unwrap();
            assert_eq!(s.leaf_terminal(leaf).unwrap(), doc[(pos - 1) as usize]);
            assert!(steps.len() < s.depth() as usize);
            // Reconstruct the position from the steps.
            let mut reconstructed = 1u64;
            for st in &steps {
                if st.went_right {
                    reconstructed += st.left_len;
                }
            }
            // The remaining offset inside the leaf is 1, so the position is
            // the accumulated shift plus zero.
            assert_eq!(reconstructed, pos);
        }
    }

    #[test]
    fn append_terminal_appends() {
        let s = example_42();
        let appended = s.append_terminal(b'#');
        let mut expected = s.derive();
        expected.push(b'#');
        assert_eq!(appended.derive(), expected);
        assert_eq!(appended.document_len(), s.document_len() + 1);
        // Reuses the existing leaf when the terminal already occurs.
        let appended_a = s.append_terminal(b'a');
        assert_eq!(appended_a.num_non_terminals(), s.num_non_terminals() + 1);
    }

    #[test]
    fn depths_are_consistent_with_general_form() {
        let s = example_42();
        assert_eq!(s.depth(), s.to_general().depth());
        assert_eq!(s.size(), s.to_general().size());
    }

    #[test]
    fn new_rejects_undefined_children() {
        let err = NormalFormSlp::<u8>::new(
            vec![NfRule::Pair(NonTerminal(5), NonTerminal(0))],
            NonTerminal(0),
        )
        .unwrap_err();
        assert!(matches!(err, SlpError::UndefinedNonTerminal { .. }));
    }

    #[test]
    fn new_rejects_cycles() {
        let err = NormalFormSlp::<u8>::new(
            vec![
                NfRule::Pair(NonTerminal(1), NonTerminal(1)),
                NfRule::Pair(NonTerminal(0), NonTerminal(0)),
            ],
            NonTerminal(0),
        )
        .unwrap_err();
        assert!(matches!(err, SlpError::Cyclic { .. }));
    }

    #[test]
    fn single_symbol_document() {
        let nf = NormalFormSlp::from_document(b"x").unwrap();
        assert_eq!(nf.document_len(), 1);
        assert_eq!(nf.symbol_at(1).unwrap(), b'x');
        assert_eq!(nf.depth(), 1);
    }
}
