//! An ergonomic builder for normal-form SLPs.
//!
//! The builder hands out non-terminal handles as rules are added, reusing
//! leaf rules per terminal and (optionally) hash-consing pair rules, and
//! validates the result when finished.

use crate::error::SlpError;
use crate::grammar::{NonTerminal, Terminal};
use crate::normal_form::{NfRule, NormalFormSlp};
use std::collections::HashMap;

/// Incremental builder for [`NormalFormSlp`]s.
///
/// ```
/// use slp::SlpBuilder;
///
/// let mut b = SlpBuilder::new();
/// let a = b.leaf(b'a');
/// let bb = b.leaf(b'b');
/// let ab = b.pair(a, bb);
/// let abab = b.pair(ab, ab);
/// let slp = b.finish(abab).unwrap();
/// assert_eq!(slp.derive(), b"abab");
/// ```
#[derive(Debug, Clone)]
pub struct SlpBuilder<T> {
    rules: Vec<NfRule<T>>,
    leaf_of: HashMap<T, NonTerminal>,
    pair_of: HashMap<(NonTerminal, NonTerminal), NonTerminal>,
    hash_cons: bool,
}

impl<T: Terminal> Default for SlpBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Terminal> SlpBuilder<T> {
    /// Creates a builder that hash-conses identical pair rules.
    pub fn new() -> Self {
        SlpBuilder {
            rules: Vec::new(),
            leaf_of: HashMap::new(),
            pair_of: HashMap::new(),
            hash_cons: true,
        }
    }

    /// Creates a builder that never merges structurally identical rules
    /// (useful when reproducing a grammar verbatim).
    pub fn without_hash_consing() -> Self {
        SlpBuilder {
            hash_cons: false,
            ..Self::new()
        }
    }

    /// Number of rules added so far.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if no rules have been added.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns the leaf non-terminal `T_x → x`, creating it on first use.
    pub fn leaf(&mut self, x: T) -> NonTerminal {
        if let Some(&id) = self.leaf_of.get(&x) {
            return id;
        }
        let id = NonTerminal(self.rules.len() as u32);
        self.rules.push(NfRule::Leaf(x));
        self.leaf_of.insert(x, id);
        id
    }

    /// Adds (or reuses) the rule `A → l r` and returns `A`.
    pub fn pair(&mut self, l: NonTerminal, r: NonTerminal) -> NonTerminal {
        if self.hash_cons {
            if let Some(&id) = self.pair_of.get(&(l, r)) {
                return id;
            }
        }
        let id = NonTerminal(self.rules.len() as u32);
        self.rules.push(NfRule::Pair(l, r));
        if self.hash_cons {
            self.pair_of.insert((l, r), id);
        }
        id
    }

    /// Adds a balanced concatenation of an arbitrary sequence of existing
    /// non-terminals and returns its root.
    pub fn concat(&mut self, parts: &[NonTerminal]) -> NonTerminal {
        assert!(!parts.is_empty(), "cannot concatenate zero parts");
        if parts.len() == 1 {
            return parts[0];
        }
        let mid = parts.len() / 2;
        let left = self.concat(&parts[..mid]);
        let right = self.concat(&parts[mid..]);
        self.pair(left, right)
    }

    /// Adds a balanced grammar for an explicit word and returns its root.
    pub fn word(&mut self, w: &[T]) -> NonTerminal {
        assert!(!w.is_empty(), "cannot add an empty word");
        let leaves: Vec<NonTerminal> = w.iter().map(|&c| self.leaf(c)).collect();
        self.concat(&leaves)
    }

    /// Finishes the builder, validating the grammar with `start` as root.
    pub fn finish(self, start: NonTerminal) -> Result<NormalFormSlp<T>, SlpError> {
        NormalFormSlp::new(self.rules, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_the_documented_example() {
        let mut b = SlpBuilder::new();
        let a = b.leaf(b'a');
        let bb = b.leaf(b'b');
        let ab = b.pair(a, bb);
        let abab = b.pair(ab, ab);
        let slp = b.finish(abab).unwrap();
        assert_eq!(slp.derive(), b"abab");
        assert_eq!(slp.num_non_terminals(), 4);
    }

    #[test]
    fn leaves_are_reused() {
        let mut b = SlpBuilder::<u8>::new();
        let a1 = b.leaf(b'a');
        let a2 = b.leaf(b'a');
        assert_eq!(a1, a2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn hash_consing_can_be_disabled() {
        let mut b = SlpBuilder::<u8>::without_hash_consing();
        let a = b.leaf(b'a');
        let x = b.pair(a, a);
        let y = b.pair(a, a);
        assert_ne!(x, y);
    }

    #[test]
    fn word_and_concat_round_trip() {
        let mut b = SlpBuilder::new();
        let hello = b.word(b"hello ");
        let world = b.word(b"world");
        let root = b.concat(&[hello, world, hello]);
        let slp = b.finish(root).unwrap();
        assert_eq!(slp.derive(), b"hello worldhello ");
    }

    #[test]
    fn finish_rejects_dangling_start() {
        let b = SlpBuilder::<u8>::new();
        assert!(b.finish(NonTerminal(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "empty word")]
    fn empty_word_panics() {
        let mut b = SlpBuilder::<u8>::new();
        let _ = b.word(&[]);
    }
}
