//! The corpus verb model: every durable mutation of the serving state is
//! one [`LogVerb`], serialized as a single canonical-JSON line (see
//! [`crate::json`]) carrying a monotone sequence number.
//!
//! The log format is versioned ([`LOG_VERSION`]) and forward-compatible in
//! the same style as the wire protocol: decoders reject unknown versions
//! and unknown ops loudly (a durable log is not a place for silent guesses),
//! while optional fields default when absent so older logs keep replaying.
//!
//! Shard counts recorded here are always *resolved* values (`k = 1` means
//! monolithic, never `0` = "auto"): replay must reconstruct the exact shard
//! layout the serving process chose, without re-running `auto_k` probes.

use crate::json::Json;
use std::fmt;

/// Version tag written into every log record and snapshot.
pub const LOG_VERSION: u64 = 1;

/// A tenant's durable configuration.
///
/// Quota fields use `0` to mean "unlimited" so the default tenant (id 0)
/// can be represented uniformly.  `cache_share` is an absolute byte cap
/// carved out of the service's global matrix-cache budget; `0` means "no
/// reserved share" (the tenant competes in the unreserved remainder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant id (`0` is the default tenant and always exists).
    pub id: u32,
    /// Human-readable name (ASCII expected, arbitrary bytes tolerated).
    pub name: String,
    /// Maximum number of live documents (`0` = unlimited).
    pub max_docs: u64,
    /// Maximum total corpus bytes across live documents (`0` = unlimited).
    pub max_corpus_bytes: u64,
    /// Matrix-cache byte share carved from the global budget (`0` = none).
    pub cache_share: u64,
    /// Relative admission weight in the server's bounded-admission gate.
    pub admission_weight: u32,
}

impl TenantSpec {
    /// The always-present default tenant: unlimited quotas, weight 1.
    pub fn default_tenant() -> TenantSpec {
        TenantSpec {
            id: 0,
            name: "default".to_string(),
            max_docs: 0,
            max_corpus_bytes: 0,
            cache_share: 0,
            admission_weight: 1,
        }
    }
}

/// One durable corpus mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogVerb {
    /// A document was registered (`shards = 1` means monolithic; sharded
    /// registrations record the *resolved* k, never the auto-tune marker).
    AddDoc {
        /// Owning tenant.
        tenant: u32,
        /// Wire-visible document id inside the tenant's namespace.
        wire_id: u64,
        /// The raw document bytes.
        text: Vec<u8>,
        /// Resolved shard count (`>= 1`).
        shards: u64,
    },
    /// A document was removed (its wire id stays burned).
    RemoveDoc {
        /// Owning tenant.
        tenant: u32,
        /// Wire-visible document id being removed.
        wire_id: u64,
    },
    /// A tenant was created.
    TenantCreate(TenantSpec),
    /// A tenant's configuration changed.
    TenantUpdate(TenantSpec),
    /// A document was transparently re-registered at a new shard count
    /// (same wire id, same bytes — only the layout changed).
    Reshard {
        /// Owning tenant.
        tenant: u32,
        /// Wire-visible document id being re-cut.
        wire_id: u64,
        /// The new resolved shard count (`>= 1`).
        shards: u64,
    },
}

/// A malformed log record or snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerbError(pub String);

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store record error: {}", self.0)
    }
}

impl std::error::Error for VerbError {}

impl From<crate::json::JsonError> for VerbError {
    fn from(e: crate::json::JsonError) -> Self {
        VerbError(e.to_string())
    }
}

fn err(message: impl Into<String>) -> VerbError {
    VerbError(message.into())
}

/// Encodes a tenant spec as its canonical JSON object — shared between the
/// log/snapshot formats here and the wire protocol's `tenant_create` /
/// `tenant_update` verbs (one spelling for a tenant everywhere).
pub fn spec_to_json(spec: &TenantSpec) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::num(spec.id)),
        ("name".into(), Json::str(&spec.name)),
        ("max_docs".into(), Json::num(spec.max_docs)),
        ("max_bytes".into(), Json::num(spec.max_corpus_bytes)),
        ("cache_share".into(), Json::num(spec.cache_share)),
        ("weight".into(), Json::num(spec.admission_weight)),
    ])
}

/// Decodes a tenant spec from its canonical JSON object (see
/// [`spec_to_json`]).
pub fn spec_from_json(value: &Json) -> Result<TenantSpec, VerbError> {
    let num = |key: &str| -> Result<u64, VerbError> {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| err(format!("tenant spec: missing numeric '{key}'")))
    };
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("tenant spec: missing 'name'"))?;
    Ok(TenantSpec {
        id: u32::try_from(num("id")?).map_err(|_| err("tenant spec: id out of range"))?,
        name: String::from_utf8_lossy(name).into_owned(),
        max_docs: num("max_docs")?,
        max_corpus_bytes: num("max_bytes")?,
        cache_share: num("cache_share")?,
        admission_weight: u32::try_from(num("weight")?)
            .map_err(|_| err("tenant spec: weight out of range"))?,
    })
}

impl LogVerb {
    /// Encodes this verb as one canonical-JSON log line (without the
    /// trailing newline), carrying `seq` and the format version.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut pairs: Vec<(String, Json)> = vec![
            ("v".into(), Json::num(LOG_VERSION)),
            ("seq".into(), Json::num(seq)),
        ];
        match self {
            LogVerb::AddDoc {
                tenant,
                wire_id,
                text,
                shards,
            } => {
                pairs.push(("op".into(), Json::str("add_doc")));
                pairs.push(("t".into(), Json::num(*tenant)));
                pairs.push(("id".into(), Json::num(*wire_id)));
                pairs.push(("text".into(), Json::Str(text.clone())));
                pairs.push(("k".into(), Json::num(*shards)));
            }
            LogVerb::RemoveDoc { tenant, wire_id } => {
                pairs.push(("op".into(), Json::str("remove_doc")));
                pairs.push(("t".into(), Json::num(*tenant)));
                pairs.push(("id".into(), Json::num(*wire_id)));
            }
            LogVerb::TenantCreate(spec) => {
                pairs.push(("op".into(), Json::str("tenant_create")));
                pairs.push(("spec".into(), spec_to_json(spec)));
            }
            LogVerb::TenantUpdate(spec) => {
                pairs.push(("op".into(), Json::str("tenant_update")));
                pairs.push(("spec".into(), spec_to_json(spec)));
            }
            LogVerb::Reshard {
                tenant,
                wire_id,
                shards,
            } => {
                pairs.push(("op".into(), Json::str("reshard")));
                pairs.push(("t".into(), Json::num(*tenant)));
                pairs.push(("id".into(), Json::num(*wire_id)));
                pairs.push(("k".into(), Json::num(*shards)));
            }
        }
        Json::Obj(pairs).to_bytes()
    }

    /// Decodes one log line into `(seq, verb)`.
    pub fn decode(line: &[u8]) -> Result<(u64, LogVerb), VerbError> {
        let value = Json::parse(line)?;
        let version = value
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("log record: missing 'v'"))?;
        if version != LOG_VERSION {
            return Err(err(format!("log record: unsupported version {version}")));
        }
        let seq = value
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("log record: missing 'seq'"))?;
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| err("log record: missing 'op'"))?;
        let tenant = || -> Result<u32, VerbError> {
            let t = value.get("t").and_then(Json::as_u64).unwrap_or(0);
            u32::try_from(t).map_err(|_| err("log record: tenant out of range"))
        };
        let wire_id = || -> Result<u64, VerbError> {
            value
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("log record: missing 'id'"))
        };
        let shards = || -> Result<u64, VerbError> {
            let k = value
                .get("k")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("log record: missing 'k'"))?;
            if k == 0 {
                return Err(err("log record: shard count 0 (unresolved auto_k)"));
            }
            Ok(k)
        };
        let spec = || -> Result<TenantSpec, VerbError> {
            spec_from_json(
                value
                    .get("spec")
                    .ok_or_else(|| err("log record: missing 'spec'"))?,
            )
        };
        let verb = match op {
            b"add_doc" => LogVerb::AddDoc {
                tenant: tenant()?,
                wire_id: wire_id()?,
                text: value
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("log record: missing 'text'"))?
                    .to_vec(),
                shards: shards()?,
            },
            b"remove_doc" => LogVerb::RemoveDoc {
                tenant: tenant()?,
                wire_id: wire_id()?,
            },
            b"tenant_create" => LogVerb::TenantCreate(spec()?),
            b"tenant_update" => LogVerb::TenantUpdate(spec()?),
            b"reshard" => LogVerb::Reshard {
                tenant: tenant()?,
                wire_id: wire_id()?,
                shards: shards()?,
            },
            other => {
                return Err(err(format!(
                    "log record: unknown op '{}'",
                    String::from_utf8_lossy(other)
                )))
            }
        };
        Ok((seq, verb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verbs() -> Vec<LogVerb> {
        vec![
            LogVerb::AddDoc {
                tenant: 0,
                wire_id: 3,
                text: b"ab\xff\x00cd".to_vec(),
                shards: 4,
            },
            LogVerb::RemoveDoc {
                tenant: 7,
                wire_id: 0,
            },
            LogVerb::TenantCreate(TenantSpec {
                id: 7,
                name: "acme".into(),
                max_docs: 10,
                max_corpus_bytes: 1 << 20,
                cache_share: 4096,
                admission_weight: 3,
            }),
            LogVerb::TenantUpdate(TenantSpec::default_tenant()),
            LogVerb::Reshard {
                tenant: 0,
                wire_id: 3,
                shards: 8,
            },
        ]
    }

    #[test]
    fn verbs_round_trip() {
        for (i, verb) in sample_verbs().into_iter().enumerate() {
            let line = verb.encode(i as u64 + 1);
            let (seq, decoded) = LogVerb::decode(&line).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(decoded, verb);
            // Canonical: re-encoding the decode reproduces the bytes.
            assert_eq!(decoded.encode(seq), line);
        }
    }

    #[test]
    fn decode_rejects_bad_records() {
        for bad in [
            &b"{}"[..],
            br#"{"v":2,"seq":1,"op":"remove_doc","t":0,"id":0}"#,
            br#"{"v":1,"op":"remove_doc","t":0,"id":0}"#,
            br#"{"v":1,"seq":1,"op":"frobnicate"}"#,
            br#"{"v":1,"seq":1,"op":"add_doc","t":0,"id":0,"text":"x","k":0}"#,
            br#"{"v":1,"seq":1,"op":"add_doc","t":0,"id":0,"k":1}"#,
            b"not json at all",
        ] {
            assert!(LogVerb::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn missing_tenant_defaults_to_zero() {
        let (_, verb) = LogVerb::decode(br#"{"v":1,"seq":9,"op":"remove_doc","id":4}"#).unwrap();
        assert_eq!(
            verb,
            LogVerb::RemoveDoc {
                tenant: 0,
                wire_id: 4
            }
        );
    }
}
