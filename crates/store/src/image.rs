//! The corpus image: the full durable state at one log position.
//!
//! A snapshot is a serialized [`CorpusImage`]; recovery loads the snapshot
//! (if any) and folds every log verb with `seq > last_seq` into it via
//! [`CorpusImage::apply`].  The image carries everything needed to rebuild
//! the serving process bit-identically: tenant specs, every live document's
//! raw bytes and *resolved* shard count, and each tenant's next wire id (so
//! ids burned by `remove_doc` stay burned across restarts).

use crate::json::Json;
use crate::verbs::{spec_from_json, spec_to_json, LogVerb, TenantSpec, VerbError, LOG_VERSION};

/// One live document inside a [`CorpusImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocImage {
    /// Owning tenant.
    pub tenant: u32,
    /// Wire-visible id inside the tenant's namespace.
    pub wire_id: u64,
    /// Raw document bytes.
    pub text: Vec<u8>,
    /// Resolved shard count (`1` = monolithic).
    pub shards: u64,
}

/// The full durable corpus state as of log position `last_seq`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusImage {
    /// Highest log sequence number folded into this image.
    pub last_seq: u64,
    /// Non-default tenant specs (the default tenant is implicit).
    pub tenants: Vec<TenantSpec>,
    /// Live documents in registration order.
    pub docs: Vec<DocImage>,
    /// Per-tenant next wire id, for tenants whose counter has advanced:
    /// `(tenant, next_id)`.
    pub next_ids: Vec<(u32, u64)>,
}

impl CorpusImage {
    /// Folds one log verb into the image.  Unknown targets are tolerated
    /// (a `remove_doc` for an id the image does not hold is a no-op): the
    /// log is the authority, and replay must never panic on a tail the
    /// serving process acked but the snapshot already covers.
    pub fn apply(&mut self, seq: u64, verb: &LogVerb) {
        if seq <= self.last_seq {
            return; // Already covered by the snapshot.
        }
        self.last_seq = seq;
        match verb {
            LogVerb::AddDoc {
                tenant,
                wire_id,
                text,
                shards,
            } => {
                self.docs.push(DocImage {
                    tenant: *tenant,
                    wire_id: *wire_id,
                    text: text.clone(),
                    shards: *shards,
                });
                self.bump_next_id(*tenant, wire_id + 1);
            }
            LogVerb::RemoveDoc { tenant, wire_id } => {
                self.docs
                    .retain(|d| !(d.tenant == *tenant && d.wire_id == *wire_id));
                self.bump_next_id(*tenant, wire_id + 1);
            }
            LogVerb::TenantCreate(spec) | LogVerb::TenantUpdate(spec) => {
                if spec.id != 0 {
                    match self.tenants.iter_mut().find(|t| t.id == spec.id) {
                        Some(existing) => *existing = spec.clone(),
                        None => self.tenants.push(spec.clone()),
                    }
                }
            }
            LogVerb::Reshard {
                tenant,
                wire_id,
                shards,
            } => {
                if let Some(doc) = self
                    .docs
                    .iter_mut()
                    .find(|d| d.tenant == *tenant && d.wire_id == *wire_id)
                {
                    doc.shards = *shards;
                }
            }
        }
    }

    fn bump_next_id(&mut self, tenant: u32, at_least: u64) {
        match self.next_ids.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, next)) => *next = (*next).max(at_least),
            None => self.next_ids.push((tenant, at_least)),
        }
    }

    /// The next wire id recorded for `tenant` (0 if it never registered).
    pub fn next_id(&self, tenant: u32) -> u64 {
        self.next_ids
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Serializes the image as one canonical-JSON snapshot body.
    pub fn encode(&self) -> Vec<u8> {
        let docs: Vec<Json> = self
            .docs
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("t".into(), Json::num(d.tenant)),
                    ("id".into(), Json::num(d.wire_id)),
                    ("text".into(), Json::Str(d.text.clone())),
                    ("k".into(), Json::num(d.shards)),
                ])
            })
            .collect();
        let next_ids: Vec<Json> = self
            .next_ids
            .iter()
            .map(|(t, n)| Json::Arr(vec![Json::num(*t), Json::num(*n)]))
            .collect();
        Json::Obj(vec![
            ("v".into(), Json::num(LOG_VERSION)),
            ("last_seq".into(), Json::num(self.last_seq)),
            (
                "tenants".into(),
                Json::Arr(self.tenants.iter().map(spec_to_json).collect()),
            ),
            ("docs".into(), Json::Arr(docs)),
            ("next_ids".into(), Json::Arr(next_ids)),
        ])
        .to_bytes()
    }

    /// Decodes a snapshot body.
    pub fn decode(bytes: &[u8]) -> Result<CorpusImage, VerbError> {
        let err = |m: &str| VerbError(format!("snapshot: {m}"));
        let value = Json::parse(bytes).map_err(VerbError::from)?;
        let version = value
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing 'v'"))?;
        if version != LOG_VERSION {
            return Err(err(&format!("unsupported version {version}")));
        }
        let last_seq = value
            .get("last_seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing 'last_seq'"))?;
        let tenants = value
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'tenants'"))?
            .iter()
            .map(spec_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let mut docs = Vec::new();
        for doc in value
            .get("docs")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'docs'"))?
        {
            let num = |key: &str| doc.get(key).and_then(Json::as_u64);
            let shards = num("k").ok_or_else(|| err("doc: missing 'k'"))?;
            if shards == 0 {
                return Err(err("doc: shard count 0"));
            }
            docs.push(DocImage {
                tenant: u32::try_from(num("t").unwrap_or(0))
                    .map_err(|_| err("doc: tenant out of range"))?,
                wire_id: num("id").ok_or_else(|| err("doc: missing 'id'"))?,
                text: doc
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("doc: missing 'text'"))?
                    .to_vec(),
                shards,
            });
        }
        let mut next_ids = Vec::new();
        for entry in value
            .get("next_ids")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'next_ids'"))?
        {
            let pair = entry.as_arr().ok_or_else(|| err("next_ids: not a pair"))?;
            let (t, n) = match pair {
                [t, n] => (
                    t.as_u64().ok_or_else(|| err("next_ids: bad tenant"))?,
                    n.as_u64().ok_or_else(|| err("next_ids: bad counter"))?,
                ),
                _ => return Err(err("next_ids: not a pair")),
            };
            next_ids.push((
                u32::try_from(t).map_err(|_| err("next_ids: tenant out of range"))?,
                n,
            ));
        }
        Ok(CorpusImage {
            last_seq,
            tenants,
            docs,
            next_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_round_trips() {
        let mut image = CorpusImage::default();
        image.apply(
            1,
            &LogVerb::TenantCreate(TenantSpec {
                id: 2,
                name: "acme".into(),
                max_docs: 5,
                max_corpus_bytes: 1 << 16,
                cache_share: 2048,
                admission_weight: 2,
            }),
        );
        image.apply(
            2,
            &LogVerb::AddDoc {
                tenant: 0,
                wire_id: 0,
                text: b"hello \xffworld".to_vec(),
                shards: 1,
            },
        );
        image.apply(
            3,
            &LogVerb::AddDoc {
                tenant: 2,
                wire_id: 0,
                text: b"abababab".to_vec(),
                shards: 4,
            },
        );
        let bytes = image.encode();
        let decoded = CorpusImage::decode(&bytes).unwrap();
        assert_eq!(decoded, image);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn apply_reconstructs_burned_ids_and_reshards() {
        let mut image = CorpusImage::default();
        image.apply(
            1,
            &LogVerb::AddDoc {
                tenant: 0,
                wire_id: 0,
                text: b"a".to_vec(),
                shards: 1,
            },
        );
        image.apply(
            2,
            &LogVerb::AddDoc {
                tenant: 0,
                wire_id: 1,
                text: b"b".to_vec(),
                shards: 2,
            },
        );
        image.apply(
            3,
            &LogVerb::RemoveDoc {
                tenant: 0,
                wire_id: 0,
            },
        );
        image.apply(
            4,
            &LogVerb::Reshard {
                tenant: 0,
                wire_id: 1,
                shards: 6,
            },
        );
        assert_eq!(image.docs.len(), 1);
        assert_eq!(image.docs[0].wire_id, 1);
        assert_eq!(image.docs[0].shards, 6);
        // Id 0 stays burned: the next registration must use id 2.
        assert_eq!(image.next_id(0), 2);
        assert_eq!(image.last_seq, 4);
    }

    #[test]
    fn stale_verbs_below_last_seq_are_skipped() {
        let mut image = CorpusImage {
            last_seq: 10,
            ..CorpusImage::default()
        };
        image.apply(
            5,
            &LogVerb::AddDoc {
                tenant: 0,
                wire_id: 0,
                text: b"old".to_vec(),
                shards: 1,
            },
        );
        assert!(image.docs.is_empty());
        assert_eq!(image.last_seq, 10);
    }
}
