//! # spanner-store — durable corpus store for the spanner service
//!
//! The serving front-end (`spanner-server`) keeps its corpus in memory; this
//! crate makes that state survive the process.  The design is the classic
//! snapshot + append-log pair:
//!
//! * **Append log** (`corpus.log`): every corpus mutation — document
//!   registration with its *resolved* shard count, removal, tenant
//!   create/update, re-shard swaps — is one [`LogVerb`] serialized as a
//!   newline-terminated canonical-JSON line carrying a monotone sequence
//!   number.  Appends are acknowledged after a buffered write reaches the
//!   kernel, so a `kill -9` of the process loses nothing that was acked.
//! * **Snapshot** (`corpus.snapshot`): a full [`CorpusImage`] — tenant
//!   specs, every live document's bytes and shard count, and the per-tenant
//!   next-id counters — written to a temp file and atomically renamed, then
//!   the log is truncated.  The image records `last_seq`, so a crash
//!   *between* the rename and the truncation is harmless: replay skips log
//!   verbs the snapshot already covers.
//! * **Recovery** ([`Store::open`]): load the snapshot if present, then fold
//!   in every decodable log verb.  A torn tail — the final line cut short by
//!   a crash mid-write — is detected (no trailing newline, or a line that
//!   fails to decode), dropped, and physically truncated away so the next
//!   append starts on a clean boundary.  Recovery never panics and never
//!   half-applies a verb: a verb is either a complete decodable line
//!   (applied) or it is not (dropped with everything after it).
//!
//! The crate is dependency-free by design (the [`json`] codec moved here
//! from `spanner-server`, which now re-exports it): the store speaks plain
//! corpus data, and the server layers wire-protocol concerns on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod json;
pub mod verbs;

pub use image::{CorpusImage, DocImage};
pub use verbs::{LogVerb, TenantSpec, VerbError, LOG_VERSION};

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

/// File name of the append log inside the data directory.
pub const LOG_FILE: &str = "corpus.log";
/// File name of the snapshot inside the data directory.
pub const SNAPSHOT_FILE: &str = "corpus.snapshot";

/// What [`Store::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The reconstructed corpus state (snapshot + replayed log verbs).
    pub image: CorpusImage,
    /// Whether a snapshot file was loaded.
    pub from_snapshot: bool,
    /// Number of log verbs replayed on top of the snapshot.
    pub replayed_verbs: u64,
    /// Bytes of torn tail dropped (and truncated) from the log, if any.
    pub torn_bytes: u64,
}

/// Point-in-time store health for the observability endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetrics {
    /// Verbs currently in the append log (since the last snapshot).
    pub log_records: u64,
    /// Bytes currently in the append log.
    pub log_bytes: u64,
    /// Highest sequence number ever appended (0 = none).
    pub last_seq: u64,
    /// `last_seq` covered by the current snapshot (0 = no snapshot).
    pub snapshot_seq: u64,
    /// Seconds since the current snapshot was written (`None` = never).
    pub snapshot_age_secs: Option<u64>,
    /// Snapshots written over this handle's lifetime (not persisted across
    /// reopen — a compaction-rate signal, not durable history).
    pub snapshots: u64,
}

struct Inner {
    log: File,
    next_seq: u64,
    log_records: u64,
    log_bytes: u64,
    snapshot_seq: u64,
    snapshot_time: Option<SystemTime>,
    snapshots: u64,
}

/// Handle on a data directory: one append log plus one snapshot.
///
/// Appends and snapshots serialize through an internal lock; the serving
/// process calls them from whichever connection thread performs the
/// mutation, in the same order it applies the mutation in memory.
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("dir", &self.dir).finish()
    }
}

fn data_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Store {
    /// Opens (creating if needed) the data directory, recovers the corpus
    /// image from snapshot + log, truncates any torn log tail, and returns
    /// the store ready for appends.
    ///
    /// A corrupt *snapshot* is a hard error (snapshots are written
    /// atomically, so damage there is real corruption, not a crash
    /// artifact); a corrupt log *tail* is expected after a crash and is
    /// dropped cleanly.
    pub fn open(dir: &Path) -> io::Result<(Store, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let (mut image, from_snapshot, snapshot_time) = match std::fs::read(&snapshot_path) {
            Ok(bytes) => {
                let image = CorpusImage::decode(&bytes).map_err(|e| data_err(e.to_string()))?;
                let mtime = std::fs::metadata(&snapshot_path)
                    .and_then(|m| m.modified())
                    .ok();
                (image, true, mtime)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (CorpusImage::default(), false, None),
            Err(e) => return Err(e),
        };
        let snapshot_seq = image.last_seq;

        let log_path = dir.join(LOG_FILE);
        let mut log = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&log_path)?;
        let mut bytes = Vec::new();
        log.read_to_end(&mut bytes)?;

        // Walk complete, decodable lines; the first incomplete or
        // undecodable line starts the torn tail.
        let mut clean_end = 0usize;
        let mut replayed_verbs = 0u64;
        let mut pos = 0usize;
        while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
            let line = &bytes[pos..pos + nl];
            match LogVerb::decode(line) {
                Ok((seq, verb)) => {
                    if seq > image.last_seq {
                        replayed_verbs += 1;
                    }
                    image.apply(seq, &verb);
                    pos += nl + 1;
                    clean_end = pos;
                }
                Err(_) => break,
            }
        }
        let torn_bytes = (bytes.len() - clean_end) as u64;
        if torn_bytes > 0 {
            log.set_len(clean_end as u64)?;
        }
        log.seek(SeekFrom::End(0))?;

        let store = Store {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Inner {
                log,
                next_seq: image.last_seq + 1,
                log_records: replayed_verbs,
                log_bytes: clean_end as u64,
                snapshot_seq,
                snapshot_time,
                snapshots: 0,
            }),
        };
        Ok((
            store,
            Recovery {
                image,
                from_snapshot,
                replayed_verbs,
                torn_bytes,
            },
        ))
    }

    /// The data directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one verb to the log and returns its sequence number.
    pub fn append(&self, verb: &LogVerb) -> io::Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        let mut line = verb.encode(seq);
        line.push(b'\n');
        inner.log.write_all(&line)?;
        inner.log.flush()?;
        inner.next_seq = seq + 1;
        inner.log_records += 1;
        inner.log_bytes += line.len() as u64;
        Ok(seq)
    }

    /// Writes `image` as the new snapshot (temp file + atomic rename) and
    /// truncates the log.  The caller passes the image it maintains in
    /// memory; `image.last_seq` must cover every verb appended so far.
    pub fn snapshot(&self, image: &CorpusImage) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let tmp_path = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let final_path = self.dir.join(SNAPSHOT_FILE);
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&image.encode())?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        // A crash here is safe: replay skips log verbs with
        // `seq <= image.last_seq`, which is exactly what the log holds.
        inner.log.set_len(0)?;
        inner.log.seek(SeekFrom::Start(0))?;
        inner.log_records = 0;
        inner.log_bytes = 0;
        inner.snapshot_seq = image.last_seq;
        inner.snapshot_time = Some(SystemTime::now());
        inner.snapshots += 1;
        Ok(())
    }

    /// Writes `image` as the new snapshot and splices the covered
    /// *prefix* out of the log, leaving verbs appended after the image was
    /// captured in place.  Unlike [`Store::snapshot`], the expensive
    /// encode + fsync of the image runs *before* the internal lock is
    /// taken, so concurrent appends only ever wait for the prefix splice —
    /// this is the background-compaction entry point.
    ///
    /// `mark_bytes` / `mark_records` are the log length at capture time
    /// (read from [`Store::metrics`] under the same external lock that
    /// cloned `image`, so they bound exactly the verbs the image covers).
    ///
    /// Crash safety: the snapshot rename is atomic, and the log tail is
    /// rewritten via temp-file + rename too — at every crash point the
    /// directory holds either the old state, or the new snapshot with a
    /// log whose covered prefix replays idempotently
    /// (`seq <= image.last_seq` verbs are skipped).
    pub fn compact(
        &self,
        image: &CorpusImage,
        mark_bytes: u64,
        mark_records: u64,
    ) -> io::Result<()> {
        let tmp_snapshot = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        {
            let mut tmp = File::create(&tmp_snapshot)?;
            tmp.write_all(&image.encode())?;
            tmp.sync_all()?;
        }
        let mut inner = self.inner.lock().unwrap();
        std::fs::rename(&tmp_snapshot, &snapshot_path)?;
        // Splice: keep only the bytes appended since the capture.
        let mut tail = Vec::new();
        inner.log.seek(SeekFrom::Start(mark_bytes))?;
        inner.log.read_to_end(&mut tail)?;
        let log_path = self.dir.join(LOG_FILE);
        let tmp_log = self.dir.join(format!("{LOG_FILE}.tmp"));
        {
            let mut f = File::create(&tmp_log)?;
            f.write_all(&tail)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp_log, &log_path)?;
        inner.log = OpenOptions::new().read(true).append(true).open(&log_path)?;
        inner.log.seek(SeekFrom::End(0))?;
        inner.log_records = inner.log_records.saturating_sub(mark_records);
        inner.log_bytes = tail.len() as u64;
        inner.snapshot_seq = image.last_seq;
        inner.snapshot_time = Some(SystemTime::now());
        inner.snapshots += 1;
        Ok(())
    }

    /// Current store health counters.
    pub fn metrics(&self) -> StoreMetrics {
        let inner = self.inner.lock().unwrap();
        StoreMetrics {
            log_records: inner.log_records,
            log_bytes: inner.log_bytes,
            last_seq: inner.next_seq - 1,
            snapshot_seq: inner.snapshot_seq,
            snapshot_age_secs: inner.snapshot_time.and_then(|t| {
                SystemTime::now()
                    .duration_since(t)
                    .ok()
                    .map(|d| d.as_secs())
            }),
            snapshots: inner.snapshots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("spanner-store-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample_verbs() -> Vec<LogVerb> {
        vec![
            LogVerb::TenantCreate(TenantSpec {
                id: 3,
                name: "acme".into(),
                max_docs: 4,
                max_corpus_bytes: 1 << 16,
                cache_share: 1024,
                admission_weight: 2,
            }),
            LogVerb::AddDoc {
                tenant: 0,
                wire_id: 0,
                text: b"abababab".to_vec(),
                shards: 2,
            },
            LogVerb::AddDoc {
                tenant: 3,
                wire_id: 0,
                text: b"xyxy\xffxyxy".to_vec(),
                shards: 1,
            },
            LogVerb::RemoveDoc {
                tenant: 0,
                wire_id: 0,
            },
            LogVerb::AddDoc {
                tenant: 0,
                wire_id: 1,
                text: b"cdcdcdcd".to_vec(),
                shards: 4,
            },
            LogVerb::Reshard {
                tenant: 0,
                wire_id: 1,
                shards: 8,
            },
        ]
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let tmp = TempDir::new("replay");
        let (store, recovery) = Store::open(&tmp.0).unwrap();
        assert_eq!(recovery.image, CorpusImage::default());
        for verb in sample_verbs() {
            store.append(&verb).unwrap();
        }
        let metrics = store.metrics();
        assert_eq!(metrics.log_records, 6);
        assert_eq!(metrics.last_seq, 6);
        drop(store);

        let (_store, recovery) = Store::open(&tmp.0).unwrap();
        assert_eq!(recovery.replayed_verbs, 6);
        assert_eq!(recovery.torn_bytes, 0);
        assert!(!recovery.from_snapshot);
        let image = recovery.image;
        assert_eq!(image.docs.len(), 2);
        assert_eq!(image.next_id(0), 2);
        assert_eq!(image.next_id(3), 1);
        assert_eq!(image.tenants.len(), 1);
        assert_eq!(
            image
                .docs
                .iter()
                .find(|d| d.tenant == 0 && d.wire_id == 1)
                .unwrap()
                .shards,
            8
        );
    }

    #[test]
    fn snapshot_truncates_log_and_survives_reopen() {
        let tmp = TempDir::new("snapshot");
        let (store, _) = Store::open(&tmp.0).unwrap();
        let mut image = CorpusImage::default();
        for verb in sample_verbs() {
            let seq = store.append(&verb).unwrap();
            image.apply(seq, &verb);
        }
        store.snapshot(&image).unwrap();
        let metrics = store.metrics();
        assert_eq!(metrics.log_records, 0);
        assert_eq!(metrics.snapshot_seq, 6);
        assert_eq!(metrics.snapshot_age_secs, Some(0));

        // Post-snapshot appends land in the (now empty) log.
        let seq = store
            .append(&LogVerb::RemoveDoc {
                tenant: 3,
                wire_id: 0,
            })
            .unwrap();
        assert_eq!(seq, 7);
        drop(store);

        let (_store, recovery) = Store::open(&tmp.0).unwrap();
        assert!(recovery.from_snapshot);
        assert_eq!(recovery.replayed_verbs, 1);
        assert_eq!(recovery.image.docs.len(), 1);
        assert_eq!(recovery.image.last_seq, 7);
    }

    #[test]
    fn compact_drops_the_covered_prefix_and_keeps_later_appends() {
        let tmp = TempDir::new("compact");
        let (store, _) = Store::open(&tmp.0).unwrap();
        let verbs = sample_verbs();
        let mut image = CorpusImage::default();
        // Capture the image (and the marks) after the first four verbs…
        for verb in &verbs[..4] {
            let seq = store.append(verb).unwrap();
            image.apply(seq, verb);
        }
        let marks = store.metrics();
        // …then keep appending before the compaction runs, as the serving
        // threads would while the background compactor works.
        for verb in &verbs[4..] {
            store.append(verb).unwrap();
        }
        store
            .compact(&image, marks.log_bytes, marks.log_records)
            .unwrap();

        let metrics = store.metrics();
        assert_eq!(metrics.snapshot_seq, 4);
        assert_eq!(metrics.log_records, 2, "the tail survives the splice");
        assert_eq!(metrics.last_seq, 6);
        assert_eq!(metrics.snapshots, 1);
        drop(store);

        // Recovery composes the snapshot with the spliced tail.
        let (_store, recovery) = Store::open(&tmp.0).unwrap();
        assert!(recovery.from_snapshot);
        assert_eq!(recovery.replayed_verbs, 2);
        assert_eq!(recovery.image.last_seq, 6);
        let mut full = CorpusImage::default();
        for (i, verb) in sample_verbs().iter().enumerate() {
            full.apply(i as u64 + 1, verb);
        }
        assert_eq!(recovery.image, full);
    }

    #[test]
    fn crash_between_snapshot_and_truncation_is_safe() {
        let tmp = TempDir::new("crashwindow");
        let (store, _) = Store::open(&tmp.0).unwrap();
        let mut image = CorpusImage::default();
        for verb in sample_verbs() {
            let seq = store.append(&verb).unwrap();
            image.apply(seq, &verb);
        }
        drop(store);
        // Simulate the crash window: snapshot file exists, log NOT truncated.
        std::fs::write(tmp.0.join(SNAPSHOT_FILE), image.encode()).unwrap();

        let (_store, recovery) = Store::open(&tmp.0).unwrap();
        assert!(recovery.from_snapshot);
        // Every log verb is covered by the snapshot: nothing replays twice.
        assert_eq!(recovery.replayed_verbs, 0);
        assert_eq!(recovery.image, image);
    }

    /// The crash-recovery property test: truncate the log at EVERY byte
    /// boundary and assert recovery yields exactly the image of some verb
    /// prefix — never a panic, never a half-applied verb.
    #[test]
    fn truncation_at_every_byte_boundary_recovers_a_clean_prefix() {
        let tmp = TempDir::new("everybyte");
        let (store, _) = Store::open(&tmp.0).unwrap();
        let verbs = sample_verbs();
        let mut prefix_images = vec![CorpusImage::default()];
        for verb in &verbs {
            let seq = store.append(verb).unwrap();
            let mut next = prefix_images.last().unwrap().clone();
            next.apply(seq, verb);
            prefix_images.push(next);
        }
        drop(store);
        let full_log = std::fs::read(tmp.0.join(LOG_FILE)).unwrap();

        for cut in 0..=full_log.len() {
            let case = TempDir::new(&format!("everybyte-{cut}"));
            std::fs::write(case.0.join(LOG_FILE), &full_log[..cut]).unwrap();
            let (store, recovery) = Store::open(&case.0).unwrap();
            assert!(
                prefix_images.contains(&recovery.image),
                "cut at byte {cut} produced a non-prefix image"
            );
            // The torn tail was physically truncated: appending after
            // recovery lands on a clean line boundary.
            let seq = store
                .append(&LogVerb::RemoveDoc {
                    tenant: 9,
                    wire_id: 9,
                })
                .unwrap();
            assert_eq!(seq, recovery.image.last_seq + 1);
            drop(store);
            let (_again, re2) = Store::open(&case.0).unwrap();
            assert_eq!(re2.image.last_seq, seq);
            assert_eq!(re2.torn_bytes, 0);
        }
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let tmp = TempDir::new("badsnap");
        std::fs::write(tmp.0.join(SNAPSHOT_FILE), b"{\"v\":99}").unwrap();
        let err = Store::open(&tmp.0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
