//! A hand-rolled, dependency-free JSON-like value layer shared by the wire
//! protocol (`spanner-server`'s `proto` module) and the durable store's
//! on-disk log and snapshot formats.
//!
//! The build environment has no registry access (the same constraint as
//! `crates/shims/*`), so the wire format is implemented from scratch.  It
//! deviates from RFC 8259 in three deliberate ways, all driven by the
//! protocol's needs:
//!
//! * **Byte strings.**  Documents are arbitrary byte sequences, not UTF-8
//!   text, so [`Json::Str`] holds `Vec<u8>`.  Printable ASCII is written
//!   literally; everything else uses the escapes `\"` `\\` `\n` `\r` `\t`
//!   and `\xNN` (two lowercase hex digits).  `\xNN` is the non-standard
//!   extension; the rest parse like JSON.
//! * **Unsigned integers only.**  Every number in the protocol is a count,
//!   an id, a byte total or a duration in microseconds — [`Json::Num`] is a
//!   `u128` (wide enough for result counts, which are polynomial in a
//!   document length near `2^64`) and the grammar has no `-`, `.` or
//!   exponent.
//! * **Canonical encoding.**  [`Json::encode`] emits no whitespace, keeps
//!   object keys in insertion order and always uses the shortest escape, so
//!   encode ∘ parse ∘ encode is the identity on encoded frames — the
//!   round-trip guarantee the protocol tests pin down.
//!
//! The parser accepts optional whitespace between tokens and enforces a
//! nesting-depth cap, so a malicious frame cannot overflow the stack.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts — far above anything the
/// protocol emits (its frames nest 4 levels), low enough that a frame of
/// `[[[[…` cannot exhaust the parser's stack.
const MAX_DEPTH: usize = 32;

/// A JSON-like value: the wire protocol's payload algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the protocol has no negative or fractional
    /// numbers).
    Num(u128),
    /// A byte string (documents are not UTF-8; see the module docs).
    Str(Vec<u8>),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse error: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds a [`Json::Str`] from text.
    pub fn str(s: &str) -> Json {
        Json::Str(s.as_bytes().to_vec())
    }

    /// Builds a [`Json::Num`] from any unsigned integer.
    pub fn num(n: impl Into<u128>) -> Json {
        Json::Num(n.into())
    }

    /// The value of `key` if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if `self` is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if `self` is a [`Json::Num`].
    pub fn as_num(&self) -> Option<u128> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload narrowed to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_num().and_then(|n| u64::try_from(n).ok())
    }

    /// The byte-string payload, if `self` is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&[u8]> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if `self` is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Canonically encodes `self` (no whitespace, insertion-ordered keys,
    /// shortest escapes) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Json::Null => out.extend_from_slice(b"null"),
            Json::Bool(true) => out.extend_from_slice(b"true"),
            Json::Bool(false) => out.extend_from_slice(b"false"),
            Json::Num(n) => out.extend_from_slice(n.to_string().as_bytes()),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push(b'[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(b',');
                    }
                    item.encode(out);
                }
                out.push(b']');
            }
            Json::Obj(pairs) => {
                out.push(b'{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(b',');
                    }
                    encode_string(key.as_bytes(), out);
                    out.push(b':');
                    value.encode(out);
                }
                out.push(b'}');
            }
        }
    }

    /// [`Json::encode`] into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Parses one value from `input` (surrounding whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
        let mut parser = Parser { input, pos: 0 };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != input.len() {
            return Err(parser.error("trailing bytes after the value"));
        }
        Ok(value)
    }
}

/// Writes a byte string with the canonical escaping of the module docs.
fn encode_string(s: &[u8], out: &mut Vec<u8>) {
    out.push(b'"');
    for &b in s {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            0x20..=0x7E => out.push(b),
            _ => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(&[
                    b'\\',
                    b'x',
                    HEX[(b >> 4) as usize],
                    HEX[(b & 15) as usize],
                ]);
            }
        }
    }
    out.push(b'"');
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{}'", String::from_utf8_lossy(word))))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'0'..=b'9') => self.number(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(other) => Err(self.error(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let digits = &self.input[start..self.pos];
        // Reject the redundant leading zero JSON rejects too.
        if digits.len() > 1 && digits[0] == b'0' {
            self.pos = start;
            return Err(self.error("leading zero in number"));
        }
        let mut n: u128 = 0;
        for &d in digits {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add((d - b'0') as u128))
                .ok_or_else(|| JsonError {
                    message: "number does not fit in u128".into(),
                    offset: start,
                })?;
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<Vec<u8>, JsonError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'x') => {
                        let hi = self.hex_digit()?;
                        let lo = self.hex_digit()?;
                        out.push((hi << 4) | lo);
                    }
                    _ => return Err(self.error("unsupported escape")),
                },
                Some(b) if (0x20..=0x7E).contains(&b) => out.push(b),
                Some(_) => return Err(self.error("raw non-ASCII byte in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex_digit(&mut self) -> Result<u8, JsonError> {
        match self.bump() {
            Some(b @ b'0'..=b'9') => Ok(b - b'0'),
            Some(b @ b'a'..=b'f') => Ok(b - b'a' + 10),
            Some(b @ b'A'..=b'F') => Ok(b - b'A' + 10),
            _ => Err(self.error("invalid hex digit in \\x escape")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key_bytes = self.string()?;
            let key =
                String::from_utf8(key_bytes).map_err(|_| self.error("object key is not UTF-8"))?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key '{key}'")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or '}'"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn canonical_encoding_round_trips() {
        let value = obj(&[
            ("v", Json::num(1u64)),
            ("op", Json::str("task")),
            ("limit", Json::Null),
            ("flag", Json::Bool(true)),
            (
                "tuple",
                Json::Arr(vec![
                    Json::Arr(vec![Json::num(1u64), Json::num(3u64)]),
                    Json::Null,
                ]),
            ),
        ]);
        let bytes = value.to_bytes();
        assert_eq!(
            bytes,
            br#"{"v":1,"op":"task","limit":null,"flag":true,"tuple":[[1,3],null]}"#.to_vec()
        );
        let parsed = Json::parse(&bytes).unwrap();
        assert_eq!(parsed, value);
        // encode ∘ parse ∘ encode is the identity.
        assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn every_byte_value_round_trips_through_a_string() {
        let all: Vec<u8> = (0..=255).collect();
        let encoded = Json::Str(all.clone()).to_bytes();
        assert_eq!(Json::parse(&encoded), Ok(Json::Str(all)));
        // The encoding itself is pure printable ASCII.
        assert!(encoded.iter().all(|b| (0x20..=0x7E).contains(b)));
    }

    #[test]
    fn u128_boundaries_round_trip() {
        for n in [0u128, 1, u64::MAX as u128, u128::MAX] {
            let bytes = Json::Num(n).to_bytes();
            assert_eq!(Json::parse(&bytes), Ok(Json::Num(n)));
        }
        // One past u128::MAX overflows cleanly.
        let too_big = format!("{}0", u128::MAX);
        assert!(Json::parse(too_big.as_bytes()).is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        let loose = b" { \"a\" : [ 1 , 2 ] , \"b\" : null } ";
        let value = Json::parse(loose).unwrap();
        assert_eq!(value.get("a").unwrap().as_arr().unwrap().len(), 2);
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\":}",
            b"12 34",
            b"-1",
            b"1.5",
            b"01",
            b"\"\\q\"",
            b"\"unterminated",
            b"{\"a\":1,\"a\":2}",
            b"nul",
            b"[1] trailing",
        ] {
            assert!(
                Json::parse(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn nesting_depth_is_capped() {
        let mut deep: Vec<u8> = Vec::new();
        deep.extend(std::iter::repeat_n(b'[', 200));
        deep.extend(std::iter::repeat_n(b']', 200));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn accessors_narrow_types() {
        let value = obj(&[("n", Json::num(7u64)), ("s", Json::str("x"))]);
        assert_eq!(value.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(value.get("s").unwrap().as_str(), Some(&b"x"[..]));
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Num(u128::from(u64::MAX) + 1).as_u64(), None);
    }
}
