//! The long-running TCP server: accept loop, per-connection workers,
//! bounded admission, streaming enumeration and graceful drain.
//!
//! ## Threading model
//!
//! One accept-loop thread plus one worker thread per live connection.  A
//! connection worker serves its requests strictly in order (the protocol is
//! lock-step per connection), but any number of connections evaluate
//! concurrently over the one shared [`Service`] — that is exactly the
//! service layer's `&self` contract, so the server adds **no** locking
//! around evaluation.
//!
//! ## Admission control
//!
//! Work-bearing requests (registrations and tasks) must win one of
//! [`ServerConfig::max_inflight`] execution slots before touching the
//! service.  When none is free the request is answered immediately with
//! the structured error code [`ErrorCode::Busy`] — the connection is never
//! dropped and never queued into an unbounded backlog; the client owns the
//! retry policy.  `ping`/`stats` are always admitted (an operator must be
//! able to observe an overloaded server), and `shutdown` is always
//! admitted so an overload can be drained away.
//!
//! ## Framing
//!
//! Newline-delimited frames with a hard length cap
//! ([`ServerConfig::max_frame_len`]).  A frame that does not parse draws
//! [`ErrorCode::Malformed`]; a frame that exceeds the cap is discarded up
//! to the next newline (the server never buffers more than the cap) and
//! draws [`ErrorCode::Oversized`].  Both leave the connection usable.
//!
//! ## Streaming enumeration
//!
//! `enumerate` responses are written as a stream of `page` frames, each
//! flushed as soon as the underlying [`Service::run_paged`] hands it over —
//! the client sees the paper's constant-delay behaviour on the wire, not
//! one response after the total evaluation time.
//!
//! ## Graceful shutdown
//!
//! The `shutdown` verb (or [`Server::request_shutdown`]) flips a flag: the
//! accept loop stops accepting, in-flight requests run to completion and
//! their responses are written, idle connections are closed at the next
//! poll tick, and new requests on surviving connections draw
//! [`ErrorCode::ShuttingDown`].  [`Server::join`] returns only after every
//! worker has exited — a clean drain, never a mid-response cut.

use crate::proto::{
    ErrorCode, ProtoError, Request, Response, WireServerStats, WireStats, PROTOCOL_VERSION,
};
use slp::NormalFormSlp;
use spanner::regex;
use spanner_slp_core::service::{Service, TaskRequest};
use spanner_slp_core::{DocumentId, QueryId};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs; the defaults suit tests and small deployments.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum number of work-bearing requests executing at once; the
    /// excess is answered with [`ErrorCode::Busy`].
    pub max_inflight: usize,
    /// Maximum accepted frame length in bytes (longer lines are discarded
    /// and answered with [`ErrorCode::Oversized`]).
    pub max_frame_len: usize,
    /// Tuples per streamed enumeration page.
    pub page_size: usize,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag (the latency of a drain, not of requests).
    pub poll_interval: Duration,
    /// How long one response write may block before its connection is
    /// abandoned.  A client that stops reading mid-stream fills the TCP
    /// send buffer; without this bound its worker would block in `write`
    /// forever and wedge the shutdown drain behind it.
    pub write_timeout: Duration,
    /// Worker role (the `spanner-server --worker` mode): the process
    /// serves `shard_build`, `ping`, `stats` and `shutdown` only;
    /// registrations and tasks draw [`ErrorCode::Unsupported`].  A worker
    /// holds no corpus — it is a stateless shard-pass engine behind a
    /// `RemoteExecutor` pool, sharing the frame/admission machinery with
    /// full servers.
    pub worker: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            max_frame_len: 1 << 20,
            page_size: 64,
            poll_interval: Duration::from_millis(25),
            write_timeout: Duration::from_secs(10),
            worker: false,
        }
    }
}

/// Transport-level counters (see [`WireServerStats`] for the wire form).
#[derive(Debug, Default)]
struct Metrics {
    connections: AtomicU64,
    frames: AtomicU64,
    busy_rejections: AtomicU64,
    malformed_frames: AtomicU64,
    oversized_frames: AtomicU64,
    pages_streamed: AtomicU64,
}

/// State shared between the accept loop and every connection worker.
struct Shared {
    service: Service,
    config: ServerConfig,
    /// Wire id → service id, in registration order.  The indirection keeps
    /// the service's id types opaque and lets the server validate ids
    /// instead of panicking on unknown ones.  A `None` document slot is a
    /// removed document: the wire id is burned, never reissued.
    queries: RwLock<Vec<QueryId>>,
    documents: RwLock<Vec<Option<DocumentId>>>,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    metrics: Metrics,
}

impl Shared {
    fn server_stats(&self) -> WireServerStats {
        WireServerStats {
            connections: self.metrics.connections.load(Ordering::Relaxed),
            frames: self.metrics.frames.load(Ordering::Relaxed),
            busy_rejections: self.metrics.busy_rejections.load(Ordering::Relaxed),
            malformed_frames: self.metrics.malformed_frames.load(Ordering::Relaxed),
            oversized_frames: self.metrics.oversized_frames.load(Ordering::Relaxed),
            pages_streamed: self.metrics.pages_streamed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed) as u64,
        }
    }

    /// Tries to win one execution slot; `None` means the server is at its
    /// in-flight cap and the request must be answered with `busy`.
    fn admit(self: &Arc<Self>) -> Option<Permit> {
        if self.inflight.fetch_add(1, Ordering::AcqRel) >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(Permit {
            shared: self.clone(),
        })
    }
}

/// An execution slot, released on drop (also on panics and early returns).
struct Permit {
    shared: Arc<Shared>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server: owns the listener thread and the shared state.  Bind
/// with [`Server::bind`], stop with the wire `shutdown` verb or
/// [`Server::request_shutdown`], then [`Server::join`] for the drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service` with the given configuration.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Service,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            queries: RwLock::new(Vec::new()),
            documents: RwLock::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            metrics: Metrics::default(),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served evaluation service (e.g. to pre-register a corpus before
    /// opening the doors to clients).
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// Flips the shutdown flag, exactly like the wire `shutdown` verb.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a shutdown was requested (wire verb or
    /// [`Server::request_shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete: the accept loop exits and every
    /// connection worker finishes its in-flight work.  Blocks until a
    /// shutdown is requested by someone (a client's `shutdown` verb or
    /// [`Server::request_shutdown`]).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept loop panicked");
        }
    }

    /// [`Server::request_shutdown`] + [`Server::join`].
    pub fn shutdown_and_join(self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server (e.g. a test bailing early) must not leak the
        // accept loop; request a drain and let the thread go.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                workers.push(std::thread::spawn(move || {
                    // Connection-level I/O errors end that connection only.
                    let _ = serve_connection(stream, shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap workers of closed connections while idle, so a
                // long-running server under connection churn holds handles
                // only for *live* connections, not for every connection it
                // ever accepted.
                workers.retain(|worker| !worker.is_finished());
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
    drop(listener); // stop accepting before the drain
    for worker in workers {
        worker.join().expect("connection worker panicked");
    }
}

/// What one attempt to read a frame produced.
enum Frame {
    /// A complete line (without the newline).
    Line(Vec<u8>),
    /// A line longer than the cap; it was discarded up to its newline.
    Oversized,
    /// The peer closed the connection.
    Eof,
    /// The shutdown flag was observed while waiting for the next frame.
    Drain,
}

/// Buffered, length-capped, shutdown-aware line reader.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Already-consumed prefix of `buf` (compacted between frames).
    pos: usize,
}

impl FrameReader {
    fn new(stream: TcpStream) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Reads the next frame, honouring the length cap and the shutdown
    /// flag (checked at every poll tick while idle).
    fn next_frame(&mut self, shared: &Shared) -> io::Result<Frame> {
        let max = shared.config.max_frame_len;
        let mut scanned = 0;
        let mut discarding = false;
        loop {
            // Scan what we have for the newline.
            if let Some(nl) = self.buf[self.pos + scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let end = self.pos + scanned + nl;
                // A line over the cap is oversized even when its newline
                // arrived in the same read chunk (no discard loop needed).
                let over_cap = end - self.pos > max;
                let line = if discarding || over_cap {
                    Vec::new()
                } else {
                    self.buf[self.pos..end].to_vec()
                };
                self.pos = end + 1;
                self.compact();
                if discarding || over_cap {
                    return Ok(Frame::Oversized);
                }
                return Ok(Frame::Line(line));
            }
            scanned = self.buf.len() - self.pos;
            if !discarding && scanned > max {
                // Too long: stop buffering, drain to the next newline.
                discarding = true;
            }
            if discarding {
                // Throw away everything buffered so far (keeping `pos` at a
                // fresh start) so a hostile line cannot grow the buffer.
                self.buf.clear();
                self.pos = 0;
                scanned = 0;
            }
            // Need more bytes.
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Frame::Eof),
                Ok(n) => {
                    if discarding {
                        if let Some(nl) = chunk[..n].iter().position(|&b| b == b'\n') {
                            // Keep the tail after the newline for the next
                            // frame.
                            self.buf.extend_from_slice(&chunk[nl + 1..n]);
                            return Ok(Frame::Oversized);
                        }
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(Frame::Drain);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

fn write_frame(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut frame = response.encode();
    frame.push(b'\n');
    stream.write_all(&frame)?;
    stream.flush()
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream);
    loop {
        match reader.next_frame(&shared)? {
            Frame::Eof | Frame::Drain => return Ok(()),
            Frame::Oversized => {
                shared.metrics.frames.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .oversized_frames
                    .fetch_add(1, Ordering::Relaxed);
                write_frame(
                    &mut writer,
                    &Response::Error {
                        code: ErrorCode::Oversized,
                        detail: format!(
                            "frame exceeds the {}-byte cap",
                            shared.config.max_frame_len
                        ),
                    },
                )?;
            }
            Frame::Line(line) => {
                shared.metrics.frames.fetch_add(1, Ordering::Relaxed);
                let stop = handle_frame(&line, &shared, &mut writer)?;
                if stop {
                    return Ok(());
                }
            }
        }
    }
}

/// Parses and dispatches one frame; `Ok(true)` ends the connection (the
/// frame was a `shutdown`).
fn handle_frame(line: &[u8], shared: &Arc<Shared>, writer: &mut TcpStream) -> io::Result<bool> {
    let request = match Request::decode(line) {
        Ok(request) => request,
        Err(ProtoError::Version(v)) => {
            shared
                .metrics
                .malformed_frames
                .fetch_add(1, Ordering::Relaxed);
            write_frame(
                writer,
                &Response::Error {
                    code: ErrorCode::Version,
                    detail: format!("client speaks v{v}, this server speaks v{PROTOCOL_VERSION}"),
                },
            )?;
            return Ok(false);
        }
        Err(ProtoError::Malformed(detail)) => {
            shared
                .metrics
                .malformed_frames
                .fetch_add(1, Ordering::Relaxed);
            write_frame(
                writer,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    detail,
                },
            )?;
            return Ok(false);
        }
    };

    match request {
        // Observability is always admitted.
        Request::Ping => write_frame(
            writer,
            &Response::Pong {
                proto: PROTOCOL_VERSION,
            },
        )
        .map(|()| false),
        Request::Stats => {
            let response = Response::Stats {
                service: (&shared.service.stats()).into(),
                server: shared.server_stats(),
            };
            write_frame(writer, &response).map(|()| false)
        }
        // Shutdown is always admitted: an overloaded server must drain.
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            write_frame(writer, &Response::ShuttingDown)?;
            Ok(true)
        }
        // Everything else is work: refuse during a drain, check the role,
        // then win a slot.
        work => {
            if shared.shutdown.load(Ordering::SeqCst) {
                write_frame(
                    writer,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        detail: "the server is draining".into(),
                    },
                )?;
                return Ok(false);
            }
            // Worker processes are stateless shard-pass engines: they hold
            // no corpus, so registrations and tasks are refused with a
            // structured error (the connection stays usable).
            if shared.config.worker && !matches!(work, Request::ShardBuild { .. }) {
                write_frame(
                    writer,
                    &Response::Error {
                        code: ErrorCode::Unsupported,
                        detail: "this is a --worker process; it serves shard_build, ping, \
                                 stats and shutdown only"
                            .into(),
                    },
                )?;
                return Ok(false);
            }
            let Some(_permit) = shared.admit() else {
                write_frame(
                    writer,
                    &Response::Error {
                        code: ErrorCode::Busy,
                        detail: format!(
                            "{} requests in flight (the configured cap)",
                            shared.config.max_inflight
                        ),
                    },
                )?;
                return Ok(false);
            };
            let response = match work {
                Request::AddQuery { pattern, alphabet } => add_query(shared, &pattern, &alphabet),
                Request::AddDoc { text } => add_doc(shared, &text, Some(1)),
                Request::AddDocSharded { k, text } => {
                    add_doc(shared, &text, (k > 0).then_some(k as usize))
                }
                Request::RemoveDoc { doc } => remove_doc(shared, doc),
                Request::ShardBuild { nfa, rules, root } => shard_build(&nfa, rules, root),
                Request::Task { query, doc, task } => {
                    return run_task(shared, writer, query, doc, task).map(|()| false)
                }
                Request::Ping | Request::Stats | Request::Shutdown => unreachable!("handled above"),
            };
            write_frame(writer, &response).map(|()| false)
        }
    }
}

fn add_query(shared: &Shared, pattern: &str, alphabet: &[u8]) -> Response {
    let automaton = match regex::compile(pattern, alphabet) {
        Ok(automaton) => automaton,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("cannot compile pattern: {e}"),
            }
        }
    };
    let id = shared.service.add_query(&automaton);
    let mut queries = shared.queries.write().expect("query map poisoned");
    queries.push(id);
    Response::QueryAdded {
        id: (queries.len() - 1) as u64,
    }
}

/// Compresses and registers a document.  `k = None` auto-tunes the shard
/// count; `Some(1)` stays monolithic.
fn add_doc(shared: &Shared, text: &[u8], k: Option<usize>) -> Response {
    let slp = match NormalFormSlp::from_document(text) {
        Ok(slp) => slp,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("cannot compress document: {e}"),
            }
        }
    };
    let id = match k {
        None => shared.service.add_document_auto(&slp),
        Some(1) => shared.service.add_document(&slp),
        Some(k) => shared.service.add_document_sharded(&slp, k),
    };
    let shards = shared.service.document(id).shard_count() as u64;
    let mut documents = shared.documents.write().expect("document map poisoned");
    documents.push(Some(id));
    Response::DocAdded {
        id: (documents.len() - 1) as u64,
        shards,
        len: text.len() as u64,
    }
}

/// Unregisters a document: burns its wire id and invalidates its cached
/// matrices through the service (`MatrixCache::clear_doc`).
fn remove_doc(shared: &Shared, doc: u64) -> Response {
    let service_id = {
        let mut documents = shared.documents.write().expect("document map poisoned");
        match documents.get_mut(doc as usize) {
            Some(slot) => slot.take(),
            None => None,
        }
    };
    match service_id {
        Some(id) => {
            shared.service.remove_document(id);
            Response::DocRemoved { id: doc }
        }
        None => Response::Error {
            code: ErrorCode::UnknownId,
            detail: format!("unknown or already removed document {doc}"),
        },
    }
}

/// Runs one shard's matrix pass (the worker verb): reconstructs the query
/// automaton and the standalone block, runs the in-process executor, and
/// answers with the block's summary rows — never the full matrices.
fn shard_build(
    nfa: &crate::proto::WireNfa,
    rules: Vec<slp::NfRule<spanner_slp_core::prepared::EByte>>,
    root: u64,
) -> Response {
    use spanner_slp_core::executor::{LocalExecutor, ShardExecutor, ShardJob};
    let nfa = match nfa.to_nfa() {
        Ok(nfa) => nfa,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("bad automaton: {e}"),
            }
        }
    };
    let root = match u32::try_from(root)
        .ok()
        .filter(|&r| (r as usize) < rules.len())
    {
        Some(root) => slp::NonTerminal(root),
        None => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("root {root} outside the {}-rule block", rules.len()),
            }
        }
    };
    let block = match slp::NormalFormSlp::new(rules, root) {
        Ok(block) => block,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("bad shard block: {e}"),
            }
        }
    };
    let outcome = LocalExecutor.execute(&ShardJob {
        nfa: &nfa,
        block: &block,
        shard_index: 0,
    });
    Response::ShardBuilt {
        q: nfa.num_states() as u64,
        rows: outcome.rows,
        elapsed_us: outcome.elapsed.as_micros() as u64,
    }
}

/// The wire code for an evaluation-layer error: a document removed while
/// the request was in flight is an id problem, not an evaluation failure.
fn eval_error_code(e: &spanner_slp_core::EvalError) -> ErrorCode {
    match e {
        spanner_slp_core::EvalError::DocumentRemoved => ErrorCode::UnknownId,
        _ => ErrorCode::Eval,
    }
}

fn run_task(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    query: u64,
    doc: u64,
    task: crate::proto::WireTask,
) -> io::Result<()> {
    let query_id = shared
        .queries
        .read()
        .expect("query map poisoned")
        .get(query as usize)
        .copied();
    let doc_id = shared
        .documents
        .read()
        .expect("document map poisoned")
        .get(doc as usize)
        .copied()
        .flatten();
    let (Some(query_id), Some(doc_id)) = (query_id, doc_id) else {
        return write_frame(
            writer,
            &Response::Error {
                code: ErrorCode::UnknownId,
                detail: format!("unknown query {query} or document {doc}"),
            },
        );
    };
    let request = TaskRequest {
        query: query_id,
        doc: doc_id,
        task: task.to_task(),
    };

    if let crate::proto::WireTask::Enumerate { .. } = task {
        // Stream pages as the enumeration produces them; the terminal
        // frame carries the stats.  A write failure stops the enumeration
        // (the service sees `false` from the sink) and ends the
        // connection via the propagated error.
        let mut sink_error: Option<io::Error> = None;
        let result = shared
            .service
            .run_paged(
                &request,
                shared.config.page_size,
                &mut |tuples| match write_frame(writer, &Response::Page { tuples }) {
                    Ok(()) => {
                        shared
                            .metrics
                            .pages_streamed
                            .fetch_add(1, Ordering::Relaxed);
                        true
                    }
                    Err(e) => {
                        sink_error = Some(e);
                        false
                    }
                },
            );
        if let Some(e) = sink_error {
            return Err(e);
        }
        return match result {
            Ok(response) => write_frame(
                writer,
                &Response::StreamEnd {
                    streamed: response.stats.results,
                    stats: (&response.stats).into(),
                },
            ),
            Err(e) => write_frame(
                writer,
                &Response::Error {
                    code: eval_error_code(&e),
                    detail: e.to_string(),
                },
            ),
        };
    }

    let response = match shared.service.run(&request) {
        Ok(response) => {
            let stats: WireStats = (&response.stats).into();
            match response.outcome {
                spanner_slp_core::service::TaskOutcome::NonEmpty(value) => {
                    Response::NonEmpty { value, stats }
                }
                spanner_slp_core::service::TaskOutcome::Checked(value) => {
                    Response::Checked { value, stats }
                }
                spanner_slp_core::service::TaskOutcome::Count(value) => {
                    Response::Counted { value, stats }
                }
                spanner_slp_core::service::TaskOutcome::Tuples(tuples) => {
                    Response::Tuples { tuples, stats }
                }
            }
        }
        Err(e) => Response::Error {
            code: eval_error_code(&e),
            detail: e.to_string(),
        },
    };
    write_frame(writer, &response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServerConfig::default();
        assert!(config.max_inflight > 0);
        assert!(config.max_frame_len >= 4096);
        assert!(config.page_size > 0);
        assert!(config.poll_interval > Duration::ZERO);
    }
}
