//! The long-running TCP server: accept loop, per-connection workers,
//! bounded admission, streaming enumeration and graceful drain.
//!
//! ## Threading model
//!
//! One accept-loop thread plus one reader thread per live connection, plus
//! a fixed pool of [`ServerConfig::scheduler_workers`] dispatcher threads
//! executing pipelined tasks.  A frame without a request id (`"rid"`) is
//! served lock-step on its reader thread exactly as in protocol v2; a task
//! frame *with* an id is enqueued into the QoS scheduler and completes out
//! of order, its response carrying the id back.  Any number of requests
//! evaluate concurrently over the one shared [`Service`] — that is exactly
//! the service layer's `&self` contract, so the server adds **no** locking
//! around evaluation; per-connection response writes serialize on one
//! writer mutex (whole frames only, so streams interleave per page, never
//! mid-frame).
//!
//! ## Pipelining and the QoS scheduler (v3)
//!
//! Each connection may have up to [`ServerConfig::pipeline_window`]
//! id-carrying tasks in flight; past the window the reader thread stops
//! reading, which surfaces to the client as TCP backpressure rather than
//! an error.  Queued tasks sit in bounded per-(cost class, tenant) queues
//! served by stride-based weighted fair queueing: a queue's weight is the
//! tenant's admission weight times the class weight (cheap matrix-lookup
//! tasks get [`TaskClass::weight`] = 8× the share of document-walking
//! scans), so a burst of Enumerate scans can no longer starve ModelCheck
//! point lookups.  A frame may carry a deadline budget (`"dl"`, µs from
//! receipt); work still queued when its budget lapses is shed with
//! [`ErrorCode::Expired`] instead of being executed late, and a full class
//! queue sheds new arrivals with [`ErrorCode::Busy`].  Queue time is
//! visible as a `queue_wait` span on sampled traces and as
//! `spanner_queue_depth`/`spanner_shed_total` scrape lines.
//!
//! ## Admission control
//!
//! *Lock-step* work-bearing requests (registrations and id-less tasks)
//! must win one of [`ServerConfig::max_inflight`] execution slots before
//! touching the service.  When none is free the request is answered
//! immediately with the structured error code [`ErrorCode::Busy`] — the
//! connection is never dropped and never queued into an unbounded backlog;
//! the client owns the retry policy.  *Pipelined* tasks skip that gate:
//! their backlog is bounded by the class queues and the pipeline window
//! instead, and the dispatcher pool caps their execution concurrency.
//! `ping`/`stats` are always admitted (an operator must be able to observe
//! an overloaded server), and `shutdown` is always admitted so an overload
//! can be drained away.
//!
//! ## Framing
//!
//! Newline-delimited frames with a hard length cap
//! ([`ServerConfig::max_frame_len`]).  A frame that does not parse draws
//! [`ErrorCode::Malformed`]; a frame that exceeds the cap is discarded up
//! to the next newline (the server never buffers more than the cap) and
//! draws [`ErrorCode::Oversized`].  Both leave the connection usable.
//!
//! ## Streaming enumeration
//!
//! `enumerate` responses are written as a stream of `page` frames, each
//! flushed as soon as the underlying [`Service::run_paged`] hands it over —
//! the client sees the paper's constant-delay behaviour on the wire, not
//! one response after the total evaluation time.
//!
//! ## Graceful shutdown
//!
//! The `shutdown` verb (or [`Server::request_shutdown`]) flips a flag: the
//! accept loop stops accepting, in-flight requests run to completion and
//! their responses are written, idle connections are closed at the next
//! poll tick, and new requests on surviving connections draw
//! [`ErrorCode::ShuttingDown`].  [`Server::join`] returns only after every
//! worker has exited — a clean drain, never a mid-response cut.
//!
//! ## Tenancy
//!
//! Documents live in per-tenant namespaces: each tenant has its own wire
//! id space, and an id never resolves in another tenant's namespace (a
//! frame carrying the wrong tenant draws [`ErrorCode::UnknownId`], exactly
//! as if the document did not exist).  Quota violations draw the
//! structured [`ErrorCode::Quota`] — an admission decision, distinct from
//! the transient [`ErrorCode::Busy`].  Admission itself is weighted: each
//! tenant `t` with weight `w_t` owns `max(1, max_inflight · w_t / Σw)`
//! execution slots, so one tenant's flood cannot starve another's
//! interactive traffic (`ping`/`stats`/`shutdown` stay exempt, as ever).
//!
//! ## Persistence
//!
//! With a [`Store`] attached (see [`ServerOptions::persistence`]), every
//! successful corpus mutation — registrations with their *resolved* shard
//! counts, removals, tenant changes, policy re-shards — is appended to the
//! durable log before the response is written, and a snapshot is cut every
//! `snapshot_every` verbs.  [`Server::bind_with`] replays the store on
//! boot, reconstructing tenants, quotas, wire ids (including burned ones)
//! and shard layouts bit-identically — recorded shard counts are replayed
//! as-is, so a warm restart runs **zero** `auto_k` probes
//! ([`Service::auto_probe_count`] stays 0).

use crate::blockcache::{BlockCache, BlockKind};
use crate::json::Json;
use crate::proto::{
    ErrorCode, FrameMeta, ProtoError, Request, Response, WireObsStats, WireServerStats, WireStats,
    WireTenantStats, PROTOCOL_VERSION,
};
use crate::remote::RemoteExecutor;
use slp::NormalFormSlp;
use spanner::regex;
use spanner_slp_core::prepared::EByte;
use spanner_slp_core::service::{Service, Task, TaskClass, TaskRequest, TenantConfig, TenantId};
use spanner_slp_core::trace::{
    Hist, HistSnapshot, Sampler, ShardTrace, SpanRec, TraceContext, Tracer,
};
use spanner_slp_core::{DocumentId, QueryId};
use spanner_store::{CorpusImage, LogVerb, Store, TenantSpec};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs; the defaults suit tests and small deployments.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum number of work-bearing requests executing at once; the
    /// excess is answered with [`ErrorCode::Busy`].
    pub max_inflight: usize,
    /// Maximum accepted frame length in bytes (longer lines are discarded
    /// and answered with [`ErrorCode::Oversized`]).
    pub max_frame_len: usize,
    /// Tuples per streamed enumeration page.
    pub page_size: usize,
    /// How often blocked reads and the accept loop re-check the shutdown
    /// flag (the latency of a drain, not of requests).
    pub poll_interval: Duration,
    /// How long one response write may block before its connection is
    /// abandoned.  A client that stops reading mid-stream fills the TCP
    /// send buffer; without this bound its worker would block in `write`
    /// forever and wedge the shutdown drain behind it.
    pub write_timeout: Duration,
    /// Worker role (the `spanner-server --worker` mode): the process
    /// serves `shard_build`, `ping`, `stats` and `shutdown` only;
    /// registrations and tasks draw [`ErrorCode::Unsupported`].  A worker
    /// holds no corpus — it is a stateless shard-pass engine behind a
    /// `RemoteExecutor` pool, sharing the frame/admission machinery with
    /// full servers.
    pub worker: bool,
    /// Byte budget of the worker's content-addressed block cache (decoded
    /// shard blocks and query automata, keyed by content hash, LRU under
    /// this budget).  `0` disables the cache: every hash-only
    /// `shard_build` frame draws a `need` answer.
    pub block_cache_budget: usize,
    /// Slow-query threshold in milliseconds: a task slower than this emits
    /// its full span tree as one structured JSON line on stderr (at most
    /// one line per second).  `0` disables the slow-query log.  While
    /// enabled, *every* task is traced server-side so the tree is there
    /// when a request turns out slow — a deliberate observability-for-
    /// allocation trade the operator opts into.
    pub slow_log_ms: u64,
    /// Maximum id-carrying (pipelined) tasks in flight per connection.
    /// Past the window the connection's reader stops reading — the client
    /// sees TCP backpressure, never an error.
    pub pipeline_window: usize,
    /// Dispatcher threads executing pipelined tasks from the QoS
    /// scheduler (clamped to at least 1).
    pub scheduler_workers: usize,
    /// Bound of each (cost class, tenant) scheduler queue; arrivals
    /// beyond it are shed with [`ErrorCode::Busy`].
    pub class_queue_depth: usize,
    /// Degrade the QoS scheduler to a single global FIFO that ignores
    /// class and tenant weights — the head-of-line-blocking baseline the
    /// E17 experiment measures against.  Never set in production.
    pub fifo_scheduler: bool,
    /// Probability (`0.0..=1.0`) that the server arms tracing for a task
    /// whose client did not opt in, feeding the slow-query machinery and
    /// rate-limited `sampled_query` lines without cooperative clients.
    /// `0.0` disables server-side sampling.
    pub trace_sample_rate: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            max_frame_len: 1 << 20,
            page_size: 64,
            poll_interval: Duration::from_millis(25),
            write_timeout: Duration::from_secs(10),
            worker: false,
            block_cache_budget: 64 << 20,
            slow_log_ms: 0,
            pipeline_window: 32,
            scheduler_workers: 4,
            class_queue_depth: 64,
            fifo_scheduler: false,
            trace_sample_rate: 0.0,
        }
    }
}

/// Everything beyond [`ServerConfig`] a durable, multi-tenant deployment
/// wires in: persistence, a remote worker pool handle (for fallback
/// observability) and the auto re-shard policy.  The in-memory default
/// (`ServerOptions::from(config)`) behaves exactly like [`Server::bind`].
#[derive(Debug, Default)]
pub struct ServerOptions {
    /// The transport knobs.
    pub config: ServerConfig,
    /// Attach a durable store: replay it on boot, log every corpus
    /// mutation, snapshot periodically.
    pub persistence: Option<PersistenceOptions>,
    /// The remote executor the service scatters over, if any — held here
    /// so `stats` can export its fallback count.
    pub remote: Option<Arc<RemoteExecutor>>,
    /// Run the background auto re-shard policy.
    pub reshard: Option<ReshardOptions>,
}

impl From<ServerConfig> for ServerOptions {
    fn from(config: ServerConfig) -> Self {
        ServerOptions {
            config,
            ..Default::default()
        }
    }
}

/// Where and how often the corpus is made durable.
#[derive(Debug, Clone)]
pub struct PersistenceOptions {
    /// Directory holding `corpus.log` and `corpus.snapshot` (created if
    /// missing).
    pub dir: PathBuf,
    /// Cut a snapshot (and truncate the log) every this many appended
    /// verbs; `0` disables periodic snapshots (the log just grows).
    pub snapshot_every: u64,
    /// Also cut a snapshot whenever the log exceeds this many bytes —
    /// compaction for remove-heavy corpora whose dead documents would
    /// otherwise ride the log between cadence cuts.  `0` disables the
    /// size trigger.
    pub snapshot_bytes: u64,
}

/// Knobs of the background auto re-shard policy: every `interval` it
/// compares each document's registered shard count with
/// [`Service::suggest_shard_count_for`]'s advice, and after `rounds`
/// *consecutive* diverging observations re-registers the document at the
/// advised count — new layout built under a fresh service id, wire slot
/// swapped atomically, old id removed, and a `reshard` verb logged so the
/// decision survives restarts.
#[derive(Debug, Clone)]
pub struct ReshardOptions {
    /// How often the policy scans the corpus.
    pub interval: Duration,
    /// Consecutive diverging observations required before acting (guards
    /// against advice that flaps with cache-warmth noise).
    pub rounds: u32,
    /// Core count handed to the advisor; `None` uses the host's
    /// parallelism.  Fixing it makes the policy deterministic in tests.
    pub cores: Option<usize>,
}

impl Default for ReshardOptions {
    fn default() -> Self {
        ReshardOptions {
            interval: Duration::from_secs(30),
            rounds: 3,
            cores: None,
        }
    }
}

/// What boot-time replay reconstructed (see [`Server::recovery`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` if a snapshot seeded the image (log-only boots are `false`).
    pub from_snapshot: bool,
    /// Log verbs replayed on top of the snapshot.
    pub replayed_verbs: u64,
    /// Bytes of torn log tail dropped (non-zero only after a crash
    /// mid-append).
    pub torn_bytes: u64,
    /// Live documents re-registered.
    pub documents: u64,
    /// Tenants recreated (excluding the default tenant).
    pub tenants: u64,
}

/// Transport-level counters (see [`WireServerStats`] for the wire form).
#[derive(Debug, Default)]
struct Metrics {
    connections: AtomicU64,
    frames: AtomicU64,
    busy_rejections: AtomicU64,
    malformed_frames: AtomicU64,
    oversized_frames: AtomicU64,
    pages_streamed: AtomicU64,
    quota_rejections: AtomicU64,
    reshards: AtomicU64,
    /// Pipelined requests dropped because their deadline elapsed while
    /// queued (answered with [`ErrorCode::Expired`], never executed).
    shed_expired: AtomicU64,
    /// Pipelined requests dropped because their class queue was full
    /// (answered with [`ErrorCode::Busy`]).
    shed_overflow: AtomicU64,
}

/// One tenant's admission gate: its weight and live counters.  Gates exist
/// for every *known* tenant; frames naming unknown tenants pass only the
/// global gate (and then fail id/quota validation in the handler).
#[derive(Debug)]
struct TenantGate {
    weight: AtomicU64,
    inflight: AtomicUsize,
    busy_rejections: AtomicU64,
    quota_rejections: AtomicU64,
}

impl TenantGate {
    fn new(weight: u32) -> TenantGate {
        TenantGate {
            // Weight 0 would compute a zero cap; floor at 1 (every tenant
            // may always run *something*).
            weight: AtomicU64::new(weight.max(1) as u64),
            inflight: AtomicUsize::new(0),
            busy_rejections: AtomicU64::new(0),
            quota_rejections: AtomicU64::new(0),
        }
    }
}

/// The weighted admission table: per-tenant gates plus the cached weight
/// total (recomputed under the write lock on every weight change).
#[derive(Debug, Default)]
struct Admission {
    gates: RwLock<HashMap<u32, Arc<TenantGate>>>,
    total_weight: AtomicU64,
}

impl Admission {
    fn set_weight(&self, tenant: u32, weight: u32) {
        let mut gates = self.gates.write().expect("admission table poisoned");
        match gates.get(&tenant) {
            Some(gate) => gate.weight.store(weight.max(1) as u64, Ordering::Relaxed),
            None => {
                gates.insert(tenant, Arc::new(TenantGate::new(weight)));
            }
        }
        let total: u64 = gates
            .values()
            .map(|g| g.weight.load(Ordering::Relaxed))
            .sum();
        self.total_weight.store(total, Ordering::Relaxed);
    }

    fn gate(&self, tenant: u32) -> Option<Arc<TenantGate>> {
        self.gates
            .read()
            .expect("admission table poisoned")
            .get(&tenant)
            .cloned()
    }
}

/// Shared state of the background compactor: the single-flight gate plus
/// the duration counters `stats` exports.
#[derive(Debug, Default)]
struct CompactionStats {
    /// One size-triggered compaction in flight at a time: set when a job
    /// is queued, cleared by the compactor when it finishes.  Triggers
    /// that fire while set are skipped — the next mutation re-checks.
    busy: AtomicBool,
    /// Completed background compactions (the `snapshots_on_size`
    /// attribution).
    runs: AtomicU64,
    last_us: AtomicU64,
    total_us: AtomicU64,
}

/// One queued background compaction: the corpus image to snapshot plus
/// the log marks bounding exactly the verbs it covers.
struct CompactJob {
    image: CorpusImage,
    mark_bytes: u64,
    mark_records: u64,
}

/// The durable half of a server: the store, an in-memory mirror of the
/// corpus image (so snapshots never re-read the log), and the snapshot
/// cadence.  The mirror mutex also serializes append+apply so the mirror's
/// `last_seq` tracks the log exactly.
struct Persist {
    store: Arc<Store>,
    mirror: Mutex<CorpusImage>,
    snapshot_every: u64,
    snapshot_bytes: u64,
    /// Snapshots cut inline by the every-N-verbs cadence (a snapshot that
    /// trips both triggers at once counts as a cadence cut, exactly as
    /// before compaction moved off the serving thread).
    cadence_snapshots: AtomicU64,
    /// Background-compaction gate and timings (size-triggered snapshots).
    compaction: Arc<CompactionStats>,
    /// The compactor channel + thread, dropped (and joined) with the
    /// server so no compaction outlives the store.
    compactor: Mutex<Option<(mpsc::Sender<CompactJob>, JoinHandle<()>)>>,
}

impl Persist {
    /// Makes one corpus mutation durable: append to the log, fold into the
    /// mirror, snapshot inline if the cadence says so, or hand the fold to
    /// the background compactor if the log-size threshold says so — the
    /// serving thread never pays for a size-triggered snapshot encode.
    /// Durability failures are loud but non-fatal — the in-memory serving
    /// state already mutated, and refusing to answer would not un-mutate
    /// it.
    fn record(&self, verb: &LogVerb) {
        let mut mirror = self.mirror.lock().expect("corpus mirror poisoned");
        match self.store.append(verb) {
            Ok(seq) => mirror.apply(seq, verb),
            Err(e) => {
                eprintln!("spanner-server: WARNING: log append failed: {e}");
                return;
            }
        }
        let metrics = self.store.metrics();
        if self.snapshot_every > 0 && metrics.log_records >= self.snapshot_every {
            match self.store.snapshot(&mirror) {
                Ok(()) => {
                    self.cadence_snapshots.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => eprintln!("spanner-server: WARNING: snapshot failed: {e}"),
            }
            return;
        }
        if self.snapshot_bytes > 0
            && metrics.log_bytes >= self.snapshot_bytes
            && !self.compaction.busy.swap(true, Ordering::AcqRel)
        {
            // The marks are read under the mirror lock, so they bound
            // exactly the verbs the cloned image covers.
            let job = CompactJob {
                image: mirror.clone(),
                mark_bytes: metrics.log_bytes,
                mark_records: metrics.log_records,
            };
            let queued = self
                .compactor
                .lock()
                .expect("compactor handle poisoned")
                .as_ref()
                .is_some_and(|(tx, _)| tx.send(job).is_ok());
            if !queued {
                self.compaction.busy.store(false, Ordering::Release);
            }
        }
    }
}

impl Drop for Persist {
    fn drop(&mut self) {
        if let Some((tx, handle)) = self
            .compactor
            .lock()
            .expect("compactor handle poisoned")
            .take()
        {
            drop(tx); // closes the channel; the compactor drains and exits
            let _ = handle.join();
        }
    }
}

/// The background compactor body: drain queued jobs, timing each fold.
fn compactor_loop(store: Arc<Store>, stats: Arc<CompactionStats>, rx: mpsc::Receiver<CompactJob>) {
    while let Ok(job) = rx.recv() {
        let started = Instant::now();
        match store.compact(&job.image, job.mark_bytes, job.mark_records) {
            Ok(()) => {
                let us = started.elapsed().as_micros() as u64;
                stats.runs.fetch_add(1, Ordering::Relaxed);
                stats.last_us.store(us, Ordering::Relaxed);
                stats.total_us.fetch_add(us, Ordering::Relaxed);
            }
            Err(e) => eprintln!("spanner-server: WARNING: background compaction failed: {e}"),
        }
        stats.busy.store(false, Ordering::Release);
    }
}

/// Latency histograms plus the slow-query-log rate limiter.  Everything
/// here is wait-free on the hot path: recording one request is a handful
/// of relaxed atomic adds, and unsampled requests touch nothing else —
/// the only allocation is the once-per-tenant histogram insertion.
struct Obs {
    /// Per-task-kind request latency, indexed by `Task::kind_index`.
    kinds: [Hist; Task::KIND_NAMES.len()],
    /// Per-tenant request latency (created on a tenant's first task).
    tenants: RwLock<HashMap<u32, Arc<Hist>>>,
    /// Shard-pass latency as observed by *this* process's worker verb
    /// (coordinators with a remote pool export the executor's histogram
    /// instead, which also covers local fallbacks).
    shard_pass: Hist,
    /// Offset (µs from `epoch`, shifted by one second so the first line
    /// always passes) of the last emitted slow-query line.
    slow_log_last_us: AtomicU64,
    /// Same clock for `sampled_query` lines — a separate limiter, so
    /// sampled lines never crowd out slow-query lines or vice versa.
    sample_log_last_us: AtomicU64,
    epoch: Instant,
}

impl Obs {
    fn new() -> Obs {
        Obs {
            kinds: std::array::from_fn(|_| Hist::new()),
            tenants: RwLock::new(HashMap::new()),
            shard_pass: Hist::new(),
            slow_log_last_us: AtomicU64::new(0),
            sample_log_last_us: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Records one finished task into the kind and tenant histograms.
    fn observe(&self, kind: usize, tenant: u32, us: u64) {
        self.kinds[kind.min(self.kinds.len() - 1)].observe(us);
        let hist = self
            .tenants
            .read()
            .expect("tenant histogram map poisoned")
            .get(&tenant)
            .cloned();
        let hist = hist.unwrap_or_else(|| {
            self.tenants
                .write()
                .expect("tenant histogram map poisoned")
                .entry(tenant)
                .or_insert_with(|| Arc::new(Hist::new()))
                .clone()
        });
        hist.observe(us);
    }

    /// Claims the right to emit one slow-query line; at most one caller
    /// per second wins (lock-free compare-and-swap, losers just skip).
    fn slow_log_permit(&self) -> bool {
        Obs::log_permit(&self.slow_log_last_us, &self.epoch)
    }

    /// The same once-per-second claim for `sampled_query` lines.
    fn sample_log_permit(&self) -> bool {
        Obs::log_permit(&self.sample_log_last_us, &self.epoch)
    }

    fn log_permit(last_us: &AtomicU64, epoch: &Instant) -> bool {
        let now = epoch.elapsed().as_micros() as u64 + 1_000_000;
        let last = last_us.load(Ordering::Relaxed);
        now.saturating_sub(last) >= 1_000_000
            && last_us
                .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }
}

/// State shared between the accept loop and every connection worker.
struct Shared {
    service: Service,
    config: ServerConfig,
    /// Wire id → service id, in registration order.  The indirection keeps
    /// the service's id types opaque and lets the server validate ids
    /// instead of panicking on unknown ones.
    queries: RwLock<Vec<QueryId>>,
    /// Per-tenant document namespaces: tenant id → (wire id → service id).
    /// A `None` slot is a removed document — the wire id is burned, never
    /// reissued — and an id only ever resolves inside its own tenant's
    /// vector, so cross-tenant ids cannot leak.
    documents: RwLock<HashMap<u32, Vec<Option<DocumentId>>>>,
    admission: Admission,
    persist: Option<Persist>,
    remote: Option<Arc<RemoteExecutor>>,
    /// The content-addressed cache behind the `shard_build` have/need
    /// negotiation.  Only worker processes populate it, but it lives on
    /// every server so the handler and `stats` need no special-casing.
    block_cache: BlockCache<CachedBlock>,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    metrics: Metrics,
    obs: Obs,
    /// The QoS scheduler behind pipelined (id-carrying) task frames.
    scheduler: Scheduler,
    /// Server-side probabilistic trace sampler
    /// ([`ServerConfig::trace_sample_rate`]).
    sampler: Sampler,
}

/// A decoded value in the worker block cache — automata and rule blocks
/// share one byte budget.
#[derive(Debug, Clone)]
enum CachedBlock {
    Nfa(Arc<spanner_automata::nfa::Nfa<spanner::MarkedSymbol<EByte>>>),
    Rules(Arc<NormalFormSlp<EByte>>),
}

impl Shared {
    fn server_stats(&self) -> WireServerStats {
        WireServerStats {
            connections: self.metrics.connections.load(Ordering::Relaxed),
            frames: self.metrics.frames.load(Ordering::Relaxed),
            busy_rejections: self.metrics.busy_rejections.load(Ordering::Relaxed),
            malformed_frames: self.metrics.malformed_frames.load(Ordering::Relaxed),
            oversized_frames: self.metrics.oversized_frames.load(Ordering::Relaxed),
            pages_streamed: self.metrics.pages_streamed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed) as u64,
            quota_rejections: self.metrics.quota_rejections.load(Ordering::Relaxed),
            remote_fallbacks: self
                .remote
                .as_ref()
                .map_or(0, |remote| remote.fallback_count()),
            remote_hedges: self
                .remote
                .as_ref()
                .map_or(0, |remote| remote.hedge_count()),
            reshards: self.metrics.reshards.load(Ordering::Relaxed),
            block_cache_hits: self.block_cache.hits(),
            block_cache_misses: self.block_cache.misses(),
            block_cache_evictions: self.block_cache.evictions(),
            block_cache_bytes: self.block_cache.resident_bytes(),
            queue_depth_cheap: self.scheduler.depth(TaskClass::Cheap),
            queue_depth_expensive: self.scheduler.depth(TaskClass::Expensive),
            shed_expired: self.metrics.shed_expired.load(Ordering::Relaxed),
            shed_overflow: self.metrics.shed_overflow.load(Ordering::Relaxed),
        }
    }

    /// One [`WireTenantStats`] row per known tenant, ascending by id.
    fn tenant_stats(&self) -> Vec<WireTenantStats> {
        self.service
            .tenant_ids()
            .into_iter()
            .map(|id| {
                let config = self.service.tenant_config(id).unwrap_or_default();
                let usage = self.service.tenant_usage(id).unwrap_or_default();
                let gate = self.admission.gate(id.0);
                WireTenantStats {
                    id: id.0,
                    name: config.name,
                    docs: usage.docs,
                    corpus_bytes: usage.corpus_bytes,
                    max_docs: config.max_docs,
                    max_corpus_bytes: config.max_corpus_bytes,
                    cache_share: config.cache_share as u64,
                    cache_resident: self.service.tenant_cache_resident(id) as u64,
                    admission_weight: config.admission_weight,
                    inflight: gate
                        .as_ref()
                        .map_or(0, |g| g.inflight.load(Ordering::Relaxed) as u64),
                    busy_rejections: gate
                        .as_ref()
                        .map_or(0, |g| g.busy_rejections.load(Ordering::Relaxed)),
                    quota_rejections: gate
                        .as_ref()
                        .map_or(0, |g| g.quota_rejections.load(Ordering::Relaxed)),
                }
            })
            .collect()
    }

    /// The observability block: per-kind and per-tenant latency
    /// histograms, the shard-pass histogram with its adaptive-hedge
    /// window, and the background-compaction timings.  Snapshots are
    /// trimmed to the canonical wire form before they leave.
    fn obs_stats(&self) -> WireObsStats {
        let tenants = {
            let map = self
                .obs
                .tenants
                .read()
                .expect("tenant histogram map poisoned");
            let mut rows: Vec<(u32, HistSnapshot)> = map
                .iter()
                .map(|(&id, hist)| (id, hist.snapshot().trimmed()))
                .collect();
            rows.sort_by_key(|&(id, _)| id);
            rows
        };
        let shard_pass = match &self.remote {
            Some(remote) => remote.pass_latency_histogram(),
            None => self.obs.shard_pass.snapshot(),
        };
        WireObsStats {
            kinds: self
                .obs
                .kinds
                .iter()
                .map(|hist| hist.snapshot().trimmed())
                .collect(),
            tenants,
            shard_pass: shard_pass.trimmed(),
            hedge_budget_us: self.remote.as_ref().map_or(0, |r| r.hedge_budget_us()),
            hedge_samples: self.remote.as_ref().map_or(0, |r| r.hedge_sample_count()),
            compactions: self
                .persist
                .as_ref()
                .map_or(0, |p| p.compaction.runs.load(Ordering::Relaxed)),
            compaction_last_us: self
                .persist
                .as_ref()
                .map_or(0, |p| p.compaction.last_us.load(Ordering::Relaxed)),
            compaction_total_us: self
                .persist
                .as_ref()
                .map_or(0, |p| p.compaction.total_us.load(Ordering::Relaxed)),
        }
    }

    /// The full `stats` answer: service + transport + tenants + store +
    /// the observability block.
    fn stats_response(&self) -> Response {
        Response::Stats {
            service: (&self.service.stats()).into(),
            server: self.server_stats(),
            tenants: self.tenant_stats(),
            store: self.persist.as_ref().map(|p| {
                let mut stats: crate::proto::WireStoreStats = (&p.store.metrics()).into();
                stats.snapshots_on_cadence = p.cadence_snapshots.load(Ordering::Relaxed);
                stats.snapshots_on_size = p.compaction.runs.load(Ordering::Relaxed);
                stats
            }),
            obs: Some(self.obs_stats()),
        }
    }

    /// Counts one quota rejection against the tenant and the server.
    fn count_quota_rejection(&self, tenant: u32) {
        self.metrics
            .quota_rejections
            .fetch_add(1, Ordering::Relaxed);
        if let Some(gate) = self.admission.gate(tenant) {
            gate.quota_rejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Tries to win one execution slot for `tenant`'s request; `None`
    /// means the global cap or the tenant's weighted share is exhausted
    /// and the request must be answered with `busy`.
    fn admit(self: &Arc<Self>, tenant: u32) -> Option<Permit> {
        if self.inflight.fetch_add(1, Ordering::AcqRel) >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let gate = self.admission.gate(tenant);
        if let Some(gate) = &gate {
            // cap_t = max(1, max_inflight · w_t / Σw): proportional shares
            // that always leave every tenant at least one slot.
            let total = self.admission.total_weight.load(Ordering::Relaxed).max(1);
            let weight = gate.weight.load(Ordering::Relaxed);
            let cap = ((self.config.max_inflight as u64 * weight / total) as usize).max(1);
            if gate.inflight.fetch_add(1, Ordering::AcqRel) >= cap {
                gate.inflight.fetch_sub(1, Ordering::AcqRel);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                gate.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        Some(Permit {
            shared: self.clone(),
            gate,
        })
    }
}

/// An execution slot, released on drop (also on panics and early returns).
struct Permit {
    shared: Arc<Shared>,
    gate: Option<Arc<TenantGate>>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        if let Some(gate) = &self.gate {
            gate.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Pipelined connections and the QoS scheduler
// ---------------------------------------------------------------------------

/// Per-connection state shared between the reader thread and the
/// dispatcher pool: the write half (whole frames serialize on the mutex)
/// and the pipeline window.
struct Conn {
    writer: Mutex<TcpStream>,
    /// Id-carrying tasks currently queued or executing for this
    /// connection.  The reader blocks acquiring a slot past the window
    /// (TCP backpressure) and waits for zero before closing.
    window: Mutex<usize>,
    cond: Condvar,
}

impl Conn {
    fn new(writer: TcpStream) -> Conn {
        Conn {
            writer: Mutex::new(writer),
            window: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Writes one response frame tagged with `id` (`0` = lock-step, no
    /// tag).  Whole-frame atomicity is the writer lock's contract: pages
    /// of a streamed enumeration interleave with other responses on the
    /// same socket, but never inside a frame.
    fn send(&self, id: u64, response: &Response) -> io::Result<()> {
        let mut writer = self.writer.lock().expect("connection writer poisoned");
        let mut frame = response.encode_framed(id);
        frame.push(b'\n');
        writer.write_all(&frame)?;
        writer.flush()
    }

    /// Claims one pipeline-window slot, blocking while the window is full
    /// (re-checking the shutdown flag every poll tick).  `false` means a
    /// drain began while waiting and the request should be refused.
    fn acquire_slot(&self, shared: &Shared) -> bool {
        let cap = shared.config.pipeline_window.max(1);
        let mut window = self.window.lock().expect("pipeline window poisoned");
        while *window >= cap {
            if shared.shutdown.load(Ordering::SeqCst) {
                return false;
            }
            window = self
                .cond
                .wait_timeout(window, shared.config.poll_interval)
                .expect("pipeline window poisoned")
                .0;
        }
        *window += 1;
        true
    }

    fn release_slot(&self) {
        let mut window = self.window.lock().expect("pipeline window poisoned");
        *window -= 1;
        drop(window);
        self.cond.notify_all();
    }

    /// Blocks until every scheduled task of this connection has completed
    /// (each holds a window slot until its response is written or shed) —
    /// the graceful-drain guarantee for pipelined work.
    fn drain(&self) {
        let mut window = self.window.lock().expect("pipeline window poisoned");
        while *window > 0 {
            window = self
                .cond
                .wait_timeout(window, Duration::from_millis(25))
                .expect("pipeline window poisoned")
                .0;
        }
    }
}

/// One id-carrying task parked in the scheduler.
struct QueuedTask {
    conn: Arc<Conn>,
    id: u64,
    /// Execution budget in µs from `received`; `0` = no deadline.
    deadline_us: u64,
    /// The task's true cost class (also the depth-gauge slot, even when
    /// FIFO mode collapses the queue keys).
    class: TaskClass,
    tenant: u32,
    trace_id: u64,
    query: u64,
    doc: u64,
    task: crate::proto::WireTask,
    received: Instant,
}

/// Stride-scheduling pass increment numerator: a queue of weight `w`
/// advances its pass by `SCALE / w` per dispatch, so relative dispatch
/// rates converge to the weight ratio.
const STRIDE_SCALE: u64 = 1 << 20;

/// One (cost class, tenant) queue of the weighted-fair scheduler.
struct ClassQueue {
    queue: VecDeque<QueuedTask>,
    /// Stride pass: the virtual time of this queue's next dispatch.
    pass: u64,
    weight: u64,
}

struct SchedState {
    /// Queue key → queue.  In FIFO mode everything collapses into one key
    /// and WFQ degenerates to global arrival order.
    classes: HashMap<(TaskClass, u32), ClassQueue>,
    /// Virtual time of the last dispatch; newly-backlogged queues start
    /// here so an idle queue cannot bank credit.
    global_pass: u64,
    stopped: bool,
}

/// The QoS scheduler: bounded per-(class, tenant) queues drained by the
/// dispatcher pool in stride-scheduled weighted-fair order.
struct Scheduler {
    state: Mutex<SchedState>,
    cond: Condvar,
    /// Live queue depth per [`TaskClass::index`] (by the task's true
    /// class even in FIFO mode, so the gauges stay meaningful).
    depths: [AtomicU64; TaskClass::ALL.len()],
}

/// What [`Scheduler::enqueue`] did with an arriving task.
enum Enqueue {
    /// Parked; a dispatcher will pick it up.
    Queued,
    /// The class queue is full: the task is handed back to be shed with
    /// [`ErrorCode::Busy`].
    Overflow(QueuedTask),
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                classes: HashMap::new(),
                global_pass: 0,
                stopped: false,
            }),
            cond: Condvar::new(),
            depths: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Parks `task` in its (class, tenant) queue with the given WFQ
    /// weight, unless the queue is at its bound.
    fn enqueue(&self, task: QueuedTask, weight: u64, config: &ServerConfig) -> Enqueue {
        let class = task.class;
        let key = if config.fifo_scheduler {
            (TaskClass::Cheap, 0)
        } else {
            (class, task.tenant)
        };
        let weight = if config.fifo_scheduler {
            1
        } else {
            weight.max(1)
        };
        let mut state = self.state.lock().expect("scheduler poisoned");
        let global_pass = state.global_pass;
        let entry = state.classes.entry(key).or_insert_with(|| ClassQueue {
            queue: VecDeque::new(),
            pass: global_pass,
            weight,
        });
        if entry.queue.len() >= config.class_queue_depth.max(1) {
            return Enqueue::Overflow(task);
        }
        if entry.queue.is_empty() {
            // A queue going from idle to backlogged joins at the current
            // virtual time (it keeps any pass ahead of it, never behind).
            entry.pass = entry.pass.max(global_pass);
        }
        entry.weight = weight;
        self.depths[class.index()].fetch_add(1, Ordering::Relaxed);
        entry.queue.push_back(task);
        drop(state);
        self.cond.notify_one();
        Enqueue::Queued
    }

    /// The next task in weighted-fair order; blocks until one arrives or
    /// the scheduler is stopped (then drains the backlog before `None`).
    fn next(&self, poll: Duration) -> Option<QueuedTask> {
        let mut state = self.state.lock().expect("scheduler poisoned");
        loop {
            let min = state
                .classes
                .iter()
                .filter(|(_, c)| !c.queue.is_empty())
                .min_by_key(|(_, c)| c.pass)
                .map(|(&key, _)| key);
            if let Some(key) = min {
                let entry = state.classes.get_mut(&key).expect("picked key exists");
                let task = entry.queue.pop_front().expect("picked queue non-empty");
                let pass = entry.pass;
                entry.pass += STRIDE_SCALE / entry.weight;
                state.global_pass = pass;
                self.depths[task.class.index()].fetch_sub(1, Ordering::Relaxed);
                return Some(task);
            }
            if state.stopped {
                return None;
            }
            state = self
                .cond
                .wait_timeout(state, poll)
                .expect("scheduler poisoned")
                .0;
        }
    }

    fn stop(&self) {
        self.state.lock().expect("scheduler poisoned").stopped = true;
        self.cond.notify_all();
    }

    fn depth(&self, class: TaskClass) -> u64 {
        self.depths[class.index()].load(Ordering::Relaxed)
    }
}

/// One dispatcher thread: pulls tasks in weighted-fair order, sheds the
/// already-late ones, executes the rest, and always releases the task's
/// pipeline-window slot.  Write errors end only the affected connection
/// (its reader will observe EOF); the dispatcher itself never dies.
fn scheduler_loop(shared: Arc<Shared>) {
    while let Some(task) = shared.scheduler.next(shared.config.poll_interval) {
        let waited_us = task.received.elapsed().as_micros() as u64;
        if task.deadline_us > 0 && waited_us > task.deadline_us {
            shared.metrics.shed_expired.fetch_add(1, Ordering::Relaxed);
            let _ = task.conn.send(
                task.id,
                &Response::Error {
                    code: ErrorCode::Expired,
                    detail: format!(
                        "deadline budget of {} µs elapsed after {} µs in queue",
                        task.deadline_us, waited_us
                    ),
                },
            );
            task.conn.release_slot();
            continue;
        }
        let conn = task.conn.clone();
        let _ = run_task(
            &shared,
            &conn,
            task.id,
            task.tenant,
            task.trace_id,
            task.query,
            task.doc,
            task.task,
            task.received,
            Some(waited_us),
        );
        conn.release_slot();
    }
}

/// A running server: owns the listener thread and the shared state.  Bind
/// with [`Server::bind`], stop with the wire `shutdown` verb or
/// [`Server::request_shutdown`], then [`Server::join`] for the drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    reshard: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service` with the given configuration — in-memory, single
    /// (default) tenant, no policy threads.  See [`Server::bind_with`] for
    /// the durable / multi-tenant variant.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Service,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_with(addr, service, ServerOptions::from(config))
    }

    /// Binds `addr` with the full option set: optional durable store
    /// (replayed into `service` before the socket opens), optional remote
    /// pool handle, optional auto re-shard policy.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Service,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let ServerOptions {
            config,
            persistence,
            remote,
            reshard,
        } = options;
        let admission = Admission::default();
        // The default tenant always has a gate (the service seeds it).
        let default_weight = service
            .tenant_config(TenantId::DEFAULT)
            .map_or(1, |c| c.admission_weight);
        admission.set_weight(0, default_weight);

        let mut documents: HashMap<u32, Vec<Option<DocumentId>>> = HashMap::new();
        let mut persist = None;
        let mut recovery = None;
        if let Some(opts) = persistence {
            let (store, recovered) = Store::open(&opts.dir)?;
            let report = replay(&service, &admission, &mut documents, &recovered.image)?;
            recovery = Some(RecoveryReport {
                from_snapshot: recovered.from_snapshot,
                replayed_verbs: recovered.replayed_verbs,
                torn_bytes: recovered.torn_bytes,
                ..report
            });
            let store = Arc::new(store);
            let compaction = Arc::new(CompactionStats::default());
            let compactor = (opts.snapshot_bytes > 0).then(|| {
                let (tx, rx) = mpsc::channel();
                let store = store.clone();
                let stats = compaction.clone();
                (
                    tx,
                    std::thread::spawn(move || compactor_loop(store, stats, rx)),
                )
            });
            persist = Some(Persist {
                store,
                mirror: Mutex::new(recovered.image),
                snapshot_every: opts.snapshot_every,
                snapshot_bytes: opts.snapshot_bytes,
                cadence_snapshots: AtomicU64::new(0),
                compaction,
                compactor: Mutex::new(compactor),
            });
        }

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            queries: RwLock::new(Vec::new()),
            documents: RwLock::new(documents),
            admission,
            persist,
            remote,
            block_cache: BlockCache::new(config.block_cache_budget),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            metrics: Metrics::default(),
            obs: Obs::new(),
            scheduler: Scheduler::new(),
            sampler: Sampler::new(config.trace_sample_rate),
        });
        let dispatchers = (0..config.scheduler_workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || scheduler_loop(shared))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let reshard = reshard.map(|opts| {
            let shared = shared.clone();
            std::thread::spawn(move || reshard_loop(shared, opts))
        });
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            reshard,
            dispatchers,
            recovery,
        })
    }

    /// What boot-time replay reconstructed; `None` when the server was
    /// bound without persistence.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The bound address (with the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served evaluation service (e.g. to pre-register a corpus before
    /// opening the doors to clients).
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// Flips the shutdown flag, exactly like the wire `shutdown` verb.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a shutdown was requested (wire verb or
    /// [`Server::request_shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete: the accept loop exits and every
    /// connection worker finishes its in-flight work.  Blocks until a
    /// shutdown is requested by someone (a client's `shutdown` verb or
    /// [`Server::request_shutdown`]).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept loop panicked");
        }
        // Every connection has drained (each waits for its pipeline window
        // to empty), so the scheduler backlog is empty: stop the pool.
        self.shared.scheduler.stop();
        for dispatcher in std::mem::take(&mut self.dispatchers) {
            dispatcher.join().expect("scheduler dispatcher panicked");
        }
        if let Some(reshard) = self.reshard.take() {
            reshard.join().expect("reshard policy panicked");
        }
    }

    /// [`Server::request_shutdown`] + [`Server::join`].
    pub fn shutdown_and_join(self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server (e.g. a test bailing early) must not leak the
        // accept loop; request a drain and let the thread go.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.scheduler.stop();
        for dispatcher in std::mem::take(&mut self.dispatchers) {
            let _ = dispatcher.join();
        }
        if let Some(reshard) = self.reshard.take() {
            let _ = reshard.join();
        }
    }
}

/// Rebuilds the serving state from a recovered corpus image: tenants
/// first (with quotas lifted so replay cannot refuse documents the live
/// server once admitted), then every document at its *recorded* shard
/// count — never through the auto-tuning path, so replay runs zero
/// `auto_k` probes — then the recorded quotas, then the wire-id floors
/// (burned ids stay burned).
fn replay(
    service: &Service,
    admission: &Admission,
    documents: &mut HashMap<u32, Vec<Option<DocumentId>>>,
    image: &CorpusImage,
) -> io::Result<RecoveryReport> {
    let invalid = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
    for spec in &image.tenants {
        let unlimited = TenantConfig {
            name: spec.name.clone(),
            max_docs: 0,
            max_corpus_bytes: 0,
            cache_share: spec.cache_share as usize,
            admission_weight: spec.admission_weight,
        };
        if !service.create_tenant(TenantId(spec.id), unlimited) {
            return Err(invalid(format!(
                "replay: tenant {} already exists in the service",
                spec.id
            )));
        }
        admission.set_weight(spec.id, spec.admission_weight);
    }
    for doc in &image.docs {
        let slp = NormalFormSlp::from_document(&doc.text)
            .map_err(|e| invalid(format!("replay: cannot recompress document: {e}")))?;
        let tenant = TenantId(doc.tenant);
        let k = doc.shards.max(1) as usize;
        let id = if k == 1 {
            service.add_document_for(tenant, &slp)
        } else {
            service.add_document_sharded_for(tenant, &slp, k)
        }
        .map_err(|e| invalid(format!("replay: registration refused: {e}")))?;
        let namespace = documents.entry(doc.tenant).or_default();
        let slot = usize::try_from(doc.wire_id)
            .map_err(|_| invalid("replay: wire id out of range".into()))?;
        if namespace.len() <= slot {
            namespace.resize(slot + 1, None);
        }
        if namespace[slot].is_some() {
            return Err(invalid(format!(
                "replay: duplicate wire id {} in tenant {}",
                doc.wire_id, doc.tenant
            )));
        }
        namespace[slot] = Some(id);
    }
    // Now that the corpus is back, install the real quotas (update never
    // re-checks existing usage).
    for spec in &image.tenants {
        let config = TenantConfig {
            name: spec.name.clone(),
            max_docs: spec.max_docs,
            max_corpus_bytes: spec.max_corpus_bytes,
            cache_share: spec.cache_share as usize,
            admission_weight: spec.admission_weight,
        };
        service.update_tenant(TenantId(spec.id), config);
    }
    // Pad every namespace up to its recorded next-id so removed documents
    // at the tail stay burned instead of being reissued.
    for &(tenant, next) in &image.next_ids {
        let namespace = documents.entry(tenant).or_default();
        let next =
            usize::try_from(next).map_err(|_| invalid("replay: next id out of range".into()))?;
        if namespace.len() < next {
            namespace.resize(next, None);
        }
    }
    Ok(RecoveryReport {
        documents: image.docs.len() as u64,
        tenants: image.tenants.len() as u64,
        ..Default::default()
    })
}

/// The background auto re-shard policy: every `interval`, compare each
/// live document's registered shard count with the advice of the measured
/// cost model.  After `rounds` consecutive divergences towards the *same*
/// advice, the document is transparently re-registered: build the new
/// layout under a fresh service id, atomically swap the wire slot, remove
/// the old id, and record a `reshard` verb so the decision survives a
/// restart.  Queries keep working throughout — the swap happens only after
/// the new layout is fully built.
fn reshard_loop(shared: Arc<Shared>, opts: ReshardOptions) {
    let cores = opts
        .cores
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    // (tenant, wire id) → (advice, consecutive rounds it has held).
    let mut streaks: HashMap<(u32, u64), (usize, u32)> = HashMap::new();
    let tick = Duration::from_millis(25);
    'policy: loop {
        let mut slept = Duration::ZERO;
        while slept < opts.interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'policy;
            }
            std::thread::sleep(tick);
            slept += tick;
        }
        let corpus: Vec<(u32, u64, DocumentId)> = {
            let documents = shared.documents.read().expect("document map poisoned");
            documents
                .iter()
                .flat_map(|(&tenant, namespace)| {
                    namespace
                        .iter()
                        .enumerate()
                        .filter_map(move |(wire_id, slot)| {
                            slot.map(|id| (tenant, wire_id as u64, id))
                        })
                })
                .collect()
        };
        let live: std::collections::HashSet<(u32, u64)> =
            corpus.iter().map(|&(t, w, _)| (t, w)).collect();
        streaks.retain(|key, _| live.contains(key));
        for (tenant, wire_id, old_id) in corpus {
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'policy;
            }
            // `try_document`: the document may race with a remove.
            let Some(doc) = shared.service.try_document(old_id) else {
                streaks.remove(&(tenant, wire_id));
                continue;
            };
            let current = doc.shard_count();
            let advice = shared.service.auto_shard_count(doc.original(), cores);
            if advice == current {
                streaks.remove(&(tenant, wire_id));
                continue;
            }
            let streak = match streaks.get(&(tenant, wire_id)) {
                Some(&(held, n)) if held == advice => n + 1,
                _ => 1,
            };
            if streak < opts.rounds.max(1) {
                streaks.insert((tenant, wire_id), (advice, streak));
                continue;
            }
            streaks.remove(&(tenant, wire_id));
            // Build the replacement first (the quota is transiently
            // double-charged; a refusal just skips this round).
            let slp = doc.original().clone();
            let new_id =
                match shared
                    .service
                    .add_document_sharded_for(TenantId(tenant), &slp, advice)
                {
                    Ok(id) => id,
                    Err(e) => {
                        eprintln!(
                            "spanner-server: reshard of tenant {tenant} doc {wire_id} \
                         skipped: {e}"
                        );
                        continue;
                    }
                };
            // Swap only if the slot still points at the layout we measured;
            // otherwise a concurrent remove/re-add won the race.
            let swapped = {
                let mut documents = shared.documents.write().expect("document map poisoned");
                match documents
                    .get_mut(&tenant)
                    .and_then(|namespace| namespace.get_mut(wire_id as usize))
                {
                    Some(slot) if *slot == Some(old_id) => {
                        *slot = Some(new_id);
                        true
                    }
                    _ => false,
                }
            };
            if !swapped {
                shared.service.remove_document(new_id);
                continue;
            }
            shared.service.remove_document(old_id);
            shared.metrics.reshards.fetch_add(1, Ordering::Relaxed);
            if let Some(persist) = &shared.persist {
                persist.record(&LogVerb::Reshard {
                    tenant,
                    wire_id,
                    shards: advice as u64,
                });
            }
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                workers.push(std::thread::spawn(move || {
                    // Connection-level I/O errors end that connection only.
                    let _ = serve_connection(stream, shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap workers of closed connections while idle, so a
                // long-running server under connection churn holds handles
                // only for *live* connections, not for every connection it
                // ever accepted.
                workers.retain(|worker| !worker.is_finished());
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
    drop(listener); // stop accepting before the drain
    for worker in workers {
        worker.join().expect("connection worker panicked");
    }
}

/// What one attempt to read a frame produced.
enum Frame {
    /// A complete line (without the newline).
    Line(Vec<u8>),
    /// A line longer than the cap; it was discarded up to its newline.
    Oversized,
    /// The peer closed the connection.
    Eof,
    /// The shutdown flag was observed while waiting for the next frame.
    Drain,
}

/// Buffered, length-capped, shutdown-aware line reader.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Already-consumed prefix of `buf` (compacted between frames).
    pos: usize,
}

impl FrameReader {
    fn new(stream: TcpStream) -> FrameReader {
        FrameReader {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Reads the next frame, honouring the length cap and the shutdown
    /// flag (checked at every poll tick while idle).
    fn next_frame(&mut self, shared: &Shared) -> io::Result<Frame> {
        let max = shared.config.max_frame_len;
        let mut scanned = 0;
        let mut discarding = false;
        loop {
            // Scan what we have for the newline.
            if let Some(nl) = self.buf[self.pos + scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let end = self.pos + scanned + nl;
                // A line over the cap is oversized even when its newline
                // arrived in the same read chunk (no discard loop needed).
                let over_cap = end - self.pos > max;
                let line = if discarding || over_cap {
                    Vec::new()
                } else {
                    self.buf[self.pos..end].to_vec()
                };
                self.pos = end + 1;
                self.compact();
                if discarding || over_cap {
                    return Ok(Frame::Oversized);
                }
                return Ok(Frame::Line(line));
            }
            scanned = self.buf.len() - self.pos;
            if !discarding && scanned > max {
                // Too long: stop buffering, drain to the next newline.
                discarding = true;
            }
            if discarding {
                // Throw away everything buffered so far (keeping `pos` at a
                // fresh start) so a hostile line cannot grow the buffer.
                self.buf.clear();
                self.pos = 0;
                scanned = 0;
            }
            // Need more bytes.
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Frame::Eof),
                Ok(n) => {
                    if discarding {
                        if let Some(nl) = chunk[..n].iter().position(|&b| b == b'\n') {
                            // Keep the tail after the newline for the next
                            // frame.
                            self.buf.extend_from_slice(&chunk[nl + 1..n]);
                            return Ok(Frame::Oversized);
                        }
                    } else {
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(Frame::Drain);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let conn = Arc::new(Conn::new(stream.try_clone()?));
    let mut reader = FrameReader::new(stream);
    let result = loop {
        match reader.next_frame(&shared) {
            Err(e) => break Err(e),
            Ok(Frame::Eof) | Ok(Frame::Drain) => break Ok(()),
            Ok(Frame::Oversized) => {
                shared.metrics.frames.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .oversized_frames
                    .fetch_add(1, Ordering::Relaxed);
                let write = conn.send(
                    0,
                    &Response::Error {
                        code: ErrorCode::Oversized,
                        detail: format!(
                            "frame exceeds the {}-byte cap",
                            shared.config.max_frame_len
                        ),
                    },
                );
                if let Err(e) = write {
                    break Err(e);
                }
            }
            Ok(Frame::Line(line)) => {
                shared.metrics.frames.fetch_add(1, Ordering::Relaxed);
                // Frame receipt is the trace epoch: decode, admission and
                // id resolution all show up inside the request's tree.
                let received = Instant::now();
                match handle_frame(&line, &shared, &conn, received) {
                    Err(e) => break Err(e),
                    Ok(true) => break Ok(()),
                    Ok(false) => {}
                }
            }
        }
    };
    // Pipelined tasks still queued or executing hold window slots; wait
    // them out so every accepted request gets its response written before
    // the connection worker exits (the drain guarantee).
    conn.drain();
    result
}

/// Parses and dispatches one frame; `Ok(true)` ends the connection (the
/// frame was a `shutdown`).  `received` is the instant the frame was read
/// — the epoch of the request's trace, when it is sampled.
///
/// Frames without a request id run lock-step on the reader thread (the v2
/// behaviour, byte for byte); id-carrying task frames are handed to the
/// QoS scheduler and complete out of order, everything else id-carrying
/// runs inline but answers framed.
fn handle_frame(
    line: &[u8],
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    received: Instant,
) -> io::Result<bool> {
    let (request, meta) = match Request::decode_framed(line) {
        Ok(decoded) => decoded,
        Err(ProtoError::Version(v)) => {
            shared
                .metrics
                .malformed_frames
                .fetch_add(1, Ordering::Relaxed);
            conn.send(
                0,
                &Response::Error {
                    code: ErrorCode::Version,
                    detail: format!("client speaks v{v}, this server speaks v{PROTOCOL_VERSION}"),
                },
            )?;
            return Ok(false);
        }
        Err(ProtoError::Malformed(detail)) => {
            shared
                .metrics
                .malformed_frames
                .fetch_add(1, Ordering::Relaxed);
            conn.send(
                0,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    detail,
                },
            )?;
            return Ok(false);
        }
    };

    match request {
        // Observability is always admitted.
        Request::Ping => conn
            .send(
                meta.id,
                &Response::Pong {
                    proto: PROTOCOL_VERSION,
                },
            )
            .map(|()| false),
        Request::Stats => conn.send(meta.id, &shared.stats_response()).map(|()| false),
        // Shutdown is always admitted: an overloaded server must drain.
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            conn.send(meta.id, &Response::ShuttingDown)?;
            Ok(true)
        }
        // Everything else is work: refuse during a drain, check the role,
        // then win a slot (lock-step) or a queue seat (pipelined).
        work => {
            if shared.shutdown.load(Ordering::SeqCst) {
                conn.send(
                    meta.id,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        detail: "the server is draining".into(),
                    },
                )?;
                return Ok(false);
            }
            // Worker processes are stateless shard-pass engines: they hold
            // no corpus, so registrations and tasks are refused with a
            // structured error (the connection stays usable).
            if shared.config.worker && !matches!(work, Request::ShardBuild { .. }) {
                conn.send(
                    meta.id,
                    &Response::Error {
                        code: ErrorCode::Unsupported,
                        detail: "this is a --worker process; it serves shard_build, ping, \
                                 stats and shutdown only"
                            .into(),
                    },
                )?;
                return Ok(false);
            }
            // The tenant whose admission share this request draws from:
            // frames without a tenant field run as the default tenant.
            let tenant = match &work {
                Request::AddDoc { tenant, .. }
                | Request::AddDocSharded { tenant, .. }
                | Request::RemoveDoc { tenant, .. }
                | Request::Task { tenant, .. } => *tenant,
                _ => 0,
            };
            // Pipelined tasks go through the QoS scheduler, not the
            // blanket inflight gate: their backlog is bounded by the class
            // queues and the pipeline window instead.
            if meta.id != 0 {
                if let Request::Task {
                    tenant,
                    trace,
                    query,
                    doc,
                    task,
                } = work
                {
                    return schedule_task(
                        shared, conn, meta, tenant, trace, query, doc, task, received,
                    )
                    .map(|()| false);
                }
            }
            let Some(_permit) = shared.admit(tenant) else {
                conn.send(
                    meta.id,
                    &Response::Error {
                        code: ErrorCode::Busy,
                        detail: format!(
                            "{} requests in flight (the configured cap)",
                            shared.config.max_inflight
                        ),
                    },
                )?;
                return Ok(false);
            };
            let response = match work {
                Request::AddQuery { pattern, alphabet } => add_query(shared, &pattern, &alphabet),
                Request::AddDoc { tenant, text } => add_doc(shared, tenant, &text, Some(1)),
                Request::AddDocSharded { tenant, k, text } => {
                    add_doc(shared, tenant, &text, (k > 0).then_some(k as usize))
                }
                Request::RemoveDoc { tenant, doc } => remove_doc(shared, tenant, doc),
                Request::TenantCreate { spec } => tenant_upsert(shared, spec, false),
                Request::TenantUpdate { spec } => tenant_upsert(shared, spec, true),
                Request::ShardBuild {
                    nfa,
                    rules,
                    root,
                    nfa_hash,
                    block_hash,
                    trace,
                } => shard_build(shared, nfa, rules, root, nfa_hash, block_hash, trace),
                Request::Task {
                    tenant,
                    trace,
                    query,
                    doc,
                    task,
                } => {
                    return run_task(
                        shared, conn, meta.id, tenant, trace, query, doc, task, received, None,
                    )
                    .map(|()| false)
                }
                Request::Ping | Request::Stats | Request::Shutdown => unreachable!("handled above"),
            };
            conn.send(meta.id, &response).map(|()| false)
        }
    }
}

/// Parks one pipelined task in the QoS scheduler: claims a pipeline-window
/// slot (blocking the reader — TCP backpressure — when the window is
/// full), then enqueues under the task's (cost class, tenant) key with
/// weight `tenant admission weight × class weight`.  Arrivals beyond the
/// class queue bound are shed immediately with [`ErrorCode::Busy`].
#[allow(clippy::too_many_arguments)]
fn schedule_task(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    meta: FrameMeta,
    tenant: u32,
    trace_id: u64,
    query: u64,
    doc: u64,
    task: crate::proto::WireTask,
    received: Instant,
) -> io::Result<()> {
    if !conn.acquire_slot(shared) {
        return conn.send(
            meta.id,
            &Response::Error {
                code: ErrorCode::ShuttingDown,
                detail: "the server is draining".into(),
            },
        );
    }
    let class = task.to_task().class();
    let tenant_weight = shared
        .admission
        .gate(tenant)
        .map_or(1, |gate| gate.weight.load(Ordering::Relaxed));
    let queued = QueuedTask {
        conn: conn.clone(),
        id: meta.id,
        deadline_us: meta.deadline_us,
        class,
        tenant,
        trace_id,
        query,
        doc,
        task,
        received,
    };
    match shared.scheduler.enqueue(
        queued,
        tenant_weight.max(1) * class.weight(),
        &shared.config,
    ) {
        Enqueue::Queued => Ok(()),
        Enqueue::Overflow(task) => {
            shared.metrics.shed_overflow.fetch_add(1, Ordering::Relaxed);
            conn.release_slot();
            conn.send(
                task.id,
                &Response::Error {
                    code: ErrorCode::Busy,
                    detail: format!(
                        "the {}/tenant-{} queue is at its {}-deep bound",
                        class.name(),
                        tenant,
                        shared.config.class_queue_depth.max(1)
                    ),
                },
            )
        }
    }
}

fn add_query(shared: &Shared, pattern: &str, alphabet: &[u8]) -> Response {
    let automaton = match regex::compile(pattern, alphabet) {
        Ok(automaton) => automaton,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("cannot compile pattern: {e}"),
            }
        }
    };
    let id = shared.service.add_query(&automaton);
    let mut queries = shared.queries.write().expect("query map poisoned");
    queries.push(id);
    Response::QueryAdded {
        id: (queries.len() - 1) as u64,
    }
}

/// The wire answer for a refused registration.  Quota exhaustion is an
/// admission decision (`quota`, no retry); an unknown tenant is an id
/// problem.
fn quota_error(shared: &Shared, tenant: u32, e: spanner_slp_core::QuotaError) -> Response {
    match e {
        spanner_slp_core::QuotaError::UnknownTenant => Response::Error {
            code: ErrorCode::UnknownId,
            detail: format!("unknown tenant {tenant}"),
        },
        e => {
            shared.count_quota_rejection(tenant);
            Response::Error {
                code: ErrorCode::Quota,
                detail: e.to_string(),
            }
        }
    }
}

/// Compresses and registers a document in `tenant`'s namespace.  `k = None`
/// auto-tunes the shard count; `Some(1)` stays monolithic.  Successful
/// registrations are made durable with their *resolved* shard count, so a
/// replay never re-probes.
fn add_doc(shared: &Shared, tenant: u32, text: &[u8], k: Option<usize>) -> Response {
    let slp = match NormalFormSlp::from_document(text) {
        Ok(slp) => slp,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Eval,
                detail: format!("cannot compress document: {e}"),
            }
        }
    };
    let tid = TenantId(tenant);
    let id = match k {
        None => shared.service.add_document_auto_for(tid, &slp),
        Some(1) => shared.service.add_document_for(tid, &slp),
        Some(k) => shared.service.add_document_sharded_for(tid, &slp, k),
    };
    let id = match id {
        Ok(id) => id,
        Err(e) => return quota_error(shared, tenant, e),
    };
    let shards = shared.service.document(id).shard_count() as u64;
    let wire_id = {
        let mut documents = shared.documents.write().expect("document map poisoned");
        let namespace = documents.entry(tenant).or_default();
        namespace.push(Some(id));
        (namespace.len() - 1) as u64
    };
    if let Some(persist) = &shared.persist {
        persist.record(&LogVerb::AddDoc {
            tenant,
            wire_id,
            text: text.to_vec(),
            shards,
        });
    }
    Response::DocAdded {
        id: wire_id,
        shards,
        len: text.len() as u64,
    }
}

/// Unregisters a document: burns its wire id inside its tenant's namespace
/// and invalidates its cached matrices through the service
/// (`MatrixCache::clear_doc`).  Ids never resolve across tenants.
fn remove_doc(shared: &Shared, tenant: u32, doc: u64) -> Response {
    let service_id = {
        let mut documents = shared.documents.write().expect("document map poisoned");
        documents
            .get_mut(&tenant)
            .and_then(|namespace| namespace.get_mut(doc as usize))
            .and_then(|slot| slot.take())
    };
    match service_id {
        Some(id) => {
            shared.service.remove_document(id);
            if let Some(persist) = &shared.persist {
                persist.record(&LogVerb::RemoveDoc {
                    tenant,
                    wire_id: doc,
                });
            }
            Response::DocRemoved { id: doc }
        }
        None => Response::Error {
            code: ErrorCode::UnknownId,
            detail: format!("unknown or already removed document {doc}"),
        },
    }
}

/// Creates (`update = false`) or reconfigures (`update = true`) a tenant,
/// mirroring the change into the admission table and the durable log.
fn tenant_upsert(shared: &Shared, spec: TenantSpec, update: bool) -> Response {
    let config = TenantConfig {
        name: spec.name.clone(),
        max_docs: spec.max_docs,
        max_corpus_bytes: spec.max_corpus_bytes,
        cache_share: spec.cache_share as usize,
        admission_weight: spec.admission_weight,
    };
    let id = TenantId(spec.id);
    let ok = if update {
        shared.service.update_tenant(id, config)
    } else {
        shared.service.create_tenant(id, config)
    };
    if !ok {
        return if update {
            Response::Error {
                code: ErrorCode::UnknownId,
                detail: format!("unknown tenant {}", spec.id),
            }
        } else {
            Response::Error {
                code: ErrorCode::Eval,
                detail: format!("tenant {} already exists (use tenant_update)", spec.id),
            }
        };
    }
    shared.admission.set_weight(spec.id, spec.admission_weight);
    if let Some(persist) = &shared.persist {
        let verb = if update {
            LogVerb::TenantUpdate(spec.clone())
        } else {
            LogVerb::TenantCreate(spec.clone())
        };
        persist.record(&verb);
    }
    Response::TenantOk {
        id: spec.id,
        created: !update,
    }
}

/// Decoded-size estimate of a cached automaton, the cost the block cache
/// charges against its byte budget.
fn nfa_cache_cost(wire: &crate::proto::WireNfa) -> usize {
    32 + wire.accepting.len() * 8 + wire.arcs.len() * 24
}

/// Runs one shard's matrix pass (the worker verb): resolves the query
/// automaton and the standalone block — from the frame's bytes or from
/// the content-addressed block cache when the coordinator shipped only
/// hashes — runs the in-process executor, and answers with the block's
/// summary rows, never the full matrices.  A hash-only frame naming
/// values the cache does not hold answers [`Response::NeedBlocks`]; a
/// frame whose bytes do not match their claimed hash is malformed and
/// never cached (the negotiation trusts recomputed hashes only).
fn shard_build(
    shared: &Shared,
    nfa: Option<crate::proto::WireNfa>,
    rules: Option<Vec<slp::NfRule<EByte>>>,
    root: u64,
    nfa_hash: u64,
    block_hash: u64,
    trace: u64,
) -> Response {
    use spanner_slp_core::executor::{LocalExecutor, ShardExecutor, ShardJob};
    // The worker's span fragment measures offsets from its own receipt of
    // the frame; the coordinator re-bases it by the attempt's issue
    // offset when stitching, so the wire latency shows up as the gap.
    let received = Instant::now();
    let cache = &shared.block_cache;

    let mut need_nfa = false;
    let nfa = match nfa {
        Some(wire) => {
            if nfa_hash != 0 && wire.content_hash() != nfa_hash {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    detail: "nfa bytes do not match their claimed content hash".into(),
                };
            }
            let decoded = match wire.to_nfa() {
                Ok(nfa) => nfa,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::Eval,
                        detail: format!("bad automaton: {e}"),
                    }
                }
            };
            let decoded = Arc::new(decoded);
            if nfa_hash != 0 {
                cache.put(
                    BlockKind::Nfa,
                    nfa_hash,
                    CachedBlock::Nfa(decoded.clone()),
                    nfa_cache_cost(&wire),
                );
            }
            Some(decoded)
        }
        None => match cache.get(BlockKind::Nfa, nfa_hash) {
            Some(CachedBlock::Nfa(decoded)) => Some(decoded),
            _ => {
                need_nfa = true;
                None
            }
        },
    };

    let mut need_block = false;
    let block = match rules {
        Some(rules) => {
            let root = match u32::try_from(root)
                .ok()
                .filter(|&r| (r as usize) < rules.len())
            {
                Some(root) => slp::NonTerminal(root),
                None => {
                    return Response::Error {
                        code: ErrorCode::Eval,
                        detail: format!("root {root} outside the {}-rule block", rules.len()),
                    }
                }
            };
            if block_hash != 0 && slp::block_content_hash(&rules, root.0) != block_hash {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    detail: "shard block bytes do not match their claimed content hash".into(),
                };
            }
            let block = match slp::NormalFormSlp::new(rules, root) {
                Ok(block) => block,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::Eval,
                        detail: format!("bad shard block: {e}"),
                    }
                }
            };
            let block = Arc::new(block);
            if block_hash != 0 {
                // `48` ≈ the decoded bytes per rule: the rule itself plus
                // the precomputed length/depth/order tables.
                let cost = block.num_non_terminals() * 48;
                cache.put(
                    BlockKind::Rules,
                    block_hash,
                    CachedBlock::Rules(block.clone()),
                    cost,
                );
            }
            Some(block)
        }
        None => match cache.get(BlockKind::Rules, block_hash) {
            Some(CachedBlock::Rules(block)) => {
                // The hash covers `(rules, root)`: a frame whose root
                // disagrees with the cached block it names is mis-claimed.
                if block.start().0 as u64 != root {
                    return Response::Error {
                        code: ErrorCode::Malformed,
                        detail: format!(
                            "root {root} disagrees with the cached block named by its hash"
                        ),
                    };
                }
                Some(block)
            }
            _ => {
                need_block = true;
                None
            }
        },
    };

    if need_nfa || need_block {
        return Response::NeedBlocks {
            need_nfa,
            need_block,
        };
    }
    let (nfa, block) = (nfa.expect("resolved above"), block.expect("resolved above"));
    let outcome = LocalExecutor.execute(&ShardJob {
        nfa: &nfa,
        block: &block,
        shard_index: 0,
        trace: (trace != 0).then_some(ShardTrace {
            ctx: TraceContext {
                trace_id: trace,
                sampled: true,
            },
            epoch: received,
        }),
    });
    shared
        .obs
        .shard_pass
        .observe(outcome.elapsed.as_micros() as u64);
    Response::ShardBuilt {
        q: nfa.num_states() as u64,
        rows: outcome.rows,
        elapsed_us: outcome.elapsed.as_micros() as u64,
        spans: outcome.spans,
    }
}

/// The wire code for an evaluation-layer error: a document removed while
/// the request was in flight is an id problem, not an evaluation failure.
fn eval_error_code(e: &spanner_slp_core::EvalError) -> ErrorCode {
    match e {
        spanner_slp_core::EvalError::DocumentRemoved => ErrorCode::UnknownId,
        _ => ErrorCode::Eval,
    }
}

/// Closes a request's trace: feeds the slow-query log (rate-limited to
/// one line per second), emits a rate-limited `sampled_query` line for
/// server-sampled requests that were not slow, and returns the span tree
/// when the client asked for it (`trace_id != 0`).  Server-side sampling
/// (probabilistic or slow-log) records spans but never ships them back.
fn finish_trace(
    shared: &Shared,
    tracer: Option<Tracer>,
    trace_id: u64,
    sampled_id: u64,
    tenant: u32,
    kind: &'static str,
    total_us: u64,
) -> Option<Vec<SpanRec>> {
    let spans = tracer?.finish();
    let log_line = |key: &str, id: u64| {
        let line = Json::Obj(vec![(
            key.to_string(),
            Json::Obj(vec![
                ("trace_id".to_string(), Json::num(id)),
                ("tenant".to_string(), Json::num(tenant)),
                ("kind".to_string(), Json::str(kind)),
                ("us".to_string(), Json::num(total_us)),
                ("spans".to_string(), crate::proto::spans_to_json(&spans)),
            ]),
        )]);
        eprintln!("{}", String::from_utf8_lossy(&line.to_bytes()));
    };
    let slow_us = shared.config.slow_log_ms.saturating_mul(1000);
    if slow_us > 0 && total_us >= slow_us && shared.obs.slow_log_permit() {
        // Slow-log-worthy requests are always kept, whatever the sampler
        // decided — the "always keep" half of the sampling policy.
        log_line(
            "slow_query",
            if trace_id != 0 { trace_id } else { sampled_id },
        );
    } else if sampled_id != 0 && shared.obs.sample_log_permit() {
        log_line("sampled_query", sampled_id);
    }
    (trace_id != 0).then_some(spans)
}

/// Executes one task and writes its response(s) tagged with `id` (`0` for
/// the lock-step path).  `queue_wait_us` is the scheduler wait of a
/// pipelined task (recorded as a `queue_wait` span on sampled traces);
/// lock-step tasks pass `None` and record the v2-era `admit` span.
#[allow(clippy::too_many_arguments)]
fn run_task(
    shared: &Arc<Shared>,
    conn: &Conn,
    id: u64,
    tenant: u32,
    trace_id: u64,
    query: u64,
    doc: u64,
    task: crate::proto::WireTask,
    received: Instant,
    queue_wait_us: Option<u64>,
) -> io::Result<()> {
    let query_id = shared
        .queries
        .read()
        .expect("query map poisoned")
        .get(query as usize)
        .copied();
    // Ids resolve only inside the requesting tenant's namespace: another
    // tenant's wire ids are indistinguishable from unknown ids.
    let doc_id = shared
        .documents
        .read()
        .expect("document map poisoned")
        .get(&tenant)
        .and_then(|namespace| namespace.get(doc as usize).copied().flatten());
    let (Some(query_id), Some(doc_id)) = (query_id, doc_id) else {
        return conn.send(
            id,
            &Response::Error {
                code: ErrorCode::UnknownId,
                detail: format!("unknown query {query} or document {doc}"),
            },
        );
    };
    let request = TaskRequest {
        query: query_id,
        doc: doc_id,
        task: task.to_task(),
    };
    let kind = request.task.kind_index();
    let kind_name = request.task.kind_name();
    // Server-side probabilistic sampling arms tracing for requests whose
    // client did not opt in (a fresh non-zero id, never shipped back).
    let sampled_id = if trace_id == 0 {
        shared.sampler.sample().unwrap_or(0)
    } else {
        0
    };
    // Sampled when the client sent a trace id, when the sampler picked the
    // request, or server-side when the slow-query log is armed (the tree
    // must exist by the time a request turns out slow).  Unsampled
    // requests build no tracer at all.
    let tracer = (trace_id != 0 || sampled_id != 0 || shared.config.slow_log_ms > 0).then(|| {
        let tracer = Tracer::with_epoch(
            TraceContext {
                trace_id: if trace_id != 0 { trace_id } else { sampled_id },
                sampled: true,
            },
            received,
        );
        match queue_wait_us {
            // A pipelined task: the dominant pre-execution cost is its
            // scheduler queue wait.
            Some(waited) => tracer.record(
                "queue_wait",
                0,
                waited,
                None,
                &[
                    ("tenant", tenant.to_string()),
                    ("class", request.task.class().name().to_string()),
                ],
            ),
            // Lock-step: everything between frame receipt and here —
            // decode, the admission gate, id resolution.
            None => tracer.record(
                "admit",
                0,
                tracer.now_us(),
                None,
                &[("tenant", tenant.to_string())],
            ),
        };
        tracer
    });

    if let crate::proto::WireTask::Enumerate { .. } = task {
        // Stream pages as the enumeration produces them; the terminal
        // frame carries the stats.  A write failure stops the enumeration
        // (the service sees `false` from the sink) and ends the
        // connection via the propagated error.
        let mut sink_error: Option<io::Error> = None;
        let result = shared.service.run_paged_traced(
            &request,
            shared.config.page_size,
            &mut |tuples| match conn.send(id, &Response::Page { tuples }) {
                Ok(()) => {
                    shared
                        .metrics
                        .pages_streamed
                        .fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(e) => {
                    sink_error = Some(e);
                    false
                }
            },
            tracer.as_ref(),
        );
        if let Some(e) = sink_error {
            return Err(e);
        }
        let total_us = received.elapsed().as_micros() as u64;
        shared.obs.observe(kind, tenant, total_us);
        return match result {
            Ok(response) => {
                let trace = finish_trace(
                    shared, tracer, trace_id, sampled_id, tenant, kind_name, total_us,
                );
                conn.send(
                    id,
                    &Response::StreamEnd {
                        streamed: response.stats.results,
                        stats: (&response.stats).into(),
                        trace,
                    },
                )
            }
            Err(e) => conn.send(
                id,
                &Response::Error {
                    code: eval_error_code(&e),
                    detail: e.to_string(),
                },
            ),
        };
    }

    let result = shared.service.run_traced(&request, tracer.as_ref());
    let total_us = received.elapsed().as_micros() as u64;
    shared.obs.observe(kind, tenant, total_us);
    let response = match result {
        Ok(response) => {
            let trace = finish_trace(
                shared, tracer, trace_id, sampled_id, tenant, kind_name, total_us,
            );
            let stats: WireStats = (&response.stats).into();
            match response.outcome {
                spanner_slp_core::service::TaskOutcome::NonEmpty(value) => Response::NonEmpty {
                    value,
                    stats,
                    trace,
                },
                spanner_slp_core::service::TaskOutcome::Checked(value) => Response::Checked {
                    value,
                    stats,
                    trace,
                },
                spanner_slp_core::service::TaskOutcome::Count(value) => Response::Counted {
                    value,
                    stats,
                    trace,
                },
                spanner_slp_core::service::TaskOutcome::Tuples(tuples) => Response::Tuples {
                    tuples,
                    stats,
                    trace,
                },
            }
        }
        Err(e) => Response::Error {
            code: eval_error_code(&e),
            detail: e.to_string(),
        },
    };
    conn.send(id, &response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServerConfig::default();
        assert!(config.max_inflight > 0);
        assert!(config.max_frame_len >= 4096);
        assert!(config.page_size > 0);
        assert!(config.poll_interval > Duration::ZERO);
    }
}
