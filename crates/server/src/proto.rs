//! The versioned wire format: typed request/response frames over
//! newline-delimited [`Json`] lines.
//!
//! Every frame is one line: a canonical [`Json`] object followed by `\n`.
//! Requests carry the protocol version (`"v":3`); a server speaking a
//! different version answers with the structured error code
//! [`ErrorCode::Version`] instead of guessing.  Responses are
//! self-describing: `"ok":true` plus a payload-specific key, `"ok":false`
//! plus an [`ErrorCode`], or a `"page"` frame inside an enumeration stream.
//!
//! Version 2 packs the `shard_build` payloads: scatter ships the rule
//! block as a base64 varint stream and gather ships the three-valued
//! summaries as base64 bitplanes (2 bits per entry) instead of the v1
//! one-byte-per-entry `B`/`E`/`N` string.  Decoding still accepts v1
//! frames — the version check admits everything down to
//! [`LEGACY_PROTOCOL_VERSION`], and the `rules`/`rows` keys fall back to
//! the v1 shapes — so a v3 coordinator interoperates with v1 workers
//! during a rolling upgrade.
//!
//! ## Pipelining (v3)
//!
//! Version 3 adds an *envelope* around any request: an optional request
//! id (`"rid"`) and an optional deadline (`"dl"`, a budget in
//! microseconds from server receipt).  Both ride [`FrameMeta`] and obey
//! the same optional-key discipline as tenancy and tracing: a zero id or
//! deadline is never emitted, so frames without them are byte-identical
//! to v2 frames (modulo the version number) and v2 clients keep working
//! unchanged.  A frame carrying a non-zero `"rid"` opts into *pipelined*
//! dispatch: the server may answer it out of order, and every response
//! frame belonging to it — including streamed `page` frames — carries
//! the id back under the same `"rid"` key.  Frames without an id keep
//! the lock-step contract: they are executed inline, in order, and their
//! responses carry no `"rid"` key at all (so they stay byte-identical to
//! what a v2 server would have sent).
//!
//! The encode/decode pair is *canonical*: `decode(encode(x)) == x` for
//! every [`Request`] and [`Response`], and `encode(decode(bytes)) == bytes`
//! for frames produced by this module — pinned by the round-trip tests at
//! the bottom of this file.
//!
//! ## Frame inventory
//!
//! | request (`op`)      | response payload key          |
//! |---------------------|-------------------------------|
//! | `ping`              | `proto`                       |
//! | `add_query`         | `query`                       |
//! | `add_doc`           | `doc` (+ `shards`, `len`)     |
//! | `add_doc_sharded`   | `doc` (+ `shards`, `len`)     |
//! | `task` (5 kinds)    | `non_empty` / `checked` / `count` / `tuples`, or a stream of `page` frames closed by `streamed` |
//! | `remove_doc`        | `removed`                     |
//! | `shard_build`       | `q` + `planes` + `elapsed_us` |
//! | `tenant_create`     | `tenant` (+ `created`)        |
//! | `tenant_update`     | `tenant` (+ `created`)        |
//! | `stats`             | `service` + `server` (+ `tenants`, `store`) |
//! | `shutdown`          | `shutting_down`               |
//!
//! Any request can instead draw `{"ok":false,"error":<code>,"detail":…}`.
//!
//! ## Tenancy
//!
//! Document-bearing verbs (`add_doc`, `add_doc_sharded`, `remove_doc`,
//! `task`) carry an *optional* tenant id under the `"t"` key.  An absent
//! field means the default tenant (id 0), so every frame an older v2 (or
//! v1) client produces keeps working unchanged — and the field is *only
//! emitted when non-zero*, so default-tenant frames are byte-identical to
//! the pre-tenancy encoding (the canonicality contract survives).
//! Document ids are namespaced per tenant: tenant 3's doc 0 and tenant 7's
//! doc 0 are different documents, and ids never resolve across tenants.

use crate::json::Json;
use slp::{NfRule, NonTerminal};
use spanner::{MarkedSymbol, MarkerSet, Span, SpanTuple, Variable};
use spanner_automata::nfa::{Label, Nfa};
use spanner_slp_core::matrices::{REntry, RMatrix};
use spanner_slp_core::prepared::EByte;
use spanner_slp_core::service::{RequestStats, ServiceStats, Task};
use spanner_slp_core::trace::{HistSnapshot, SpanRec};
use spanner_store::verbs::{spec_from_json, spec_to_json};
use spanner_store::{StoreMetrics, TenantSpec};
use std::fmt;

/// The protocol version this build speaks (and emits).
pub const PROTOCOL_VERSION: u64 = 3;

/// The oldest protocol version this build still decodes: v1 frames carry
/// `shard_build` rules as a JSON array and summary rows as one byte per
/// entry; both shapes are recognised by the decoders below.  Every
/// version in `LEGACY_PROTOCOL_VERSION..=PROTOCOL_VERSION` is admitted
/// (v2 frames are v3 frames without the pipelining envelope).
pub const LEGACY_PROTOCOL_VERSION: u64 = 1;

/// The per-frame pipelining envelope (v3): a request id and a deadline.
///
/// `id == 0` means "not pipelined" — the frame is handled inline, in
/// order, exactly as a v2 server would, and its responses carry no
/// `"rid"` key.  A non-zero id opts the frame into out-of-order
/// completion; every response belonging to it echoes the id.
///
/// `deadline_us == 0` means "no deadline".  A non-zero deadline is a
/// *budget in microseconds from server receipt* (not a wall-clock
/// timestamp, so clients and servers need no clock agreement): work
/// still queued when its budget has elapsed is shed with
/// [`ErrorCode::Expired`] instead of being executed late.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Request id echoed by every response frame of this request
    /// (`0` = not pipelined).
    pub id: u64,
    /// Queueing budget in microseconds from server receipt (`0` = none).
    pub deadline_us: u64,
}

impl FrameMeta {
    /// The empty envelope: not pipelined, no deadline.
    pub const NONE: FrameMeta = FrameMeta {
        id: 0,
        deadline_us: 0,
    };
}

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame is not a well-formed protocol object.
    Malformed(String),
    /// The frame is well-formed but speaks a different protocol version.
    Version(u64),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            ProtoError::Version(v) => write!(
                f,
                "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<crate::json::JsonError> for ProtoError {
    fn from(e: crate::json::JsonError) -> Self {
        ProtoError::Malformed(e.to_string())
    }
}

/// Structured error codes — the machine-readable half of every
/// [`Response::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server is at its in-flight request cap; retry later.  The
    /// connection stays open.
    Busy,
    /// The frame did not parse; the connection stays open.
    Malformed,
    /// The frame exceeded the server's length cap; it was discarded up to
    /// the next newline and the connection stays open.
    Oversized,
    /// The request speaks a protocol version this server does not.
    Version,
    /// The request names a query or document id the server never issued.
    UnknownId,
    /// The evaluation itself failed (compile error, out-of-bounds tuple,
    /// empty document, …).
    Eval,
    /// The request is a verb this server's role does not serve (e.g. a
    /// registration or task sent to a `--worker` process, which serves
    /// shard builds and observability only).
    Unsupported,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown,
    /// The request would exceed the tenant's configured quota (document
    /// count or corpus bytes), or names a tenant that does not exist.  An
    /// admission decision, not a transient overload: unlike
    /// [`ErrorCode::Busy`] it does **not** invite a retry.
    Quota,
    /// The request carried a deadline ([`FrameMeta::deadline_us`]) and was
    /// still queued when the budget elapsed; the scheduler shed it instead
    /// of executing already-late work.  Distinct from [`ErrorCode::Busy`]:
    /// the queue had room, the *time* ran out — retrying with the same
    /// deadline under the same load will likely expire again.
    Expired,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Version => "version",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::Eval => "eval",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Quota => "quota",
            ErrorCode::Expired => "expired",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &[u8]) -> Option<ErrorCode> {
        Some(match s {
            b"busy" => ErrorCode::Busy,
            b"malformed" => ErrorCode::Malformed,
            b"oversized" => ErrorCode::Oversized,
            b"version" => ErrorCode::Version,
            b"unknown_id" => ErrorCode::UnknownId,
            b"eval" => ErrorCode::Eval,
            b"unsupported" => ErrorCode::Unsupported,
            b"shutting_down" => ErrorCode::ShuttingDown,
            b"quota" => ErrorCode::Quota,
            b"expired" => ErrorCode::Expired,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One evaluation task as spoken on the wire — mirrors
/// [`spanner_slp_core::service::Task`] with wire-friendly field types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireTask {
    /// `⟦M⟧(D) ≠ ∅`?
    NonEmptiness,
    /// Is the tuple in `⟦M⟧(D)`?
    ModelCheck(SpanTuple),
    /// `|⟦M⟧(D)|`.
    Count,
    /// Materialise up to `limit` tuples (`None` = all).
    Compute {
        /// Maximum number of tuples to return.
        limit: Option<u64>,
    },
    /// Stream a window of the relation; the response is a page stream.
    Enumerate {
        /// Leading results to discard.
        skip: u64,
        /// Maximum number of results after skipping (`None` = all).
        limit: Option<u64>,
    },
}

impl WireTask {
    /// The wire spelling of the task kind.
    pub fn kind(&self) -> &'static str {
        match self {
            WireTask::NonEmptiness => "non_emptiness",
            WireTask::ModelCheck(_) => "model_check",
            WireTask::Count => "count",
            WireTask::Compute { .. } => "compute",
            WireTask::Enumerate { .. } => "enumerate",
        }
    }

    /// Converts to the evaluation core's [`Task`].
    pub fn to_task(&self) -> Task {
        match self {
            WireTask::NonEmptiness => Task::NonEmptiness,
            WireTask::ModelCheck(tuple) => Task::ModelCheck(tuple.clone()),
            WireTask::Count => Task::Count,
            WireTask::Compute { limit } => Task::Compute {
                limit: limit.map(|n| n as usize),
            },
            WireTask::Enumerate { skip, limit } => Task::Enumerate {
                skip: *skip as usize,
                limit: limit.map(|n| n as usize),
            },
        }
    }
}

/// One transition label as spoken on the wire — mirrors
/// `Label<MarkedSymbol<EByte>>` with wire-friendly payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireLabel {
    /// An ordinary document byte.
    Byte(u8),
    /// The end-of-document sentinel `#`.
    End,
    /// A marker set, packed as its raw bits (see [`MarkerSet::bits`]).
    Markers(u64),
    /// An ε-transition (never produced by prepared queries, which are
    /// ε-free; kept so the codec is total over `Label`).
    Epsilon,
}

/// One transition `(from, label, to)` as spoken on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireArc {
    /// Source state.
    pub from: u64,
    /// The transition label.
    pub label: WireLabel,
    /// Target state.
    pub to: u64,
}

/// A query's end-transformed automaton as spoken on the wire — everything
/// a shard worker needs to run the Lemma 6.5 pass, independent of how the
/// query was originally written (regex, hand-built automaton, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct WireNfa {
    /// Number of states `q`.
    pub states: u64,
    /// The start state.
    pub start: u64,
    /// The accepting states.
    pub accepting: Vec<u64>,
    /// All transitions.
    pub arcs: Vec<WireArc>,
}

impl WireNfa {
    /// Captures an in-memory automaton for the wire.
    pub fn from_nfa(nfa: &Nfa<MarkedSymbol<EByte>>) -> WireNfa {
        WireNfa {
            states: nfa.num_states() as u64,
            start: nfa.start() as u64,
            accepting: nfa.accepting_states().iter().map(|&s| s as u64).collect(),
            arcs: nfa
                .arcs()
                .map(|(p, label, t)| WireArc {
                    from: p as u64,
                    label: match label {
                        Label::Symbol(MarkedSymbol::Terminal(EByte::Byte(b))) => WireLabel::Byte(b),
                        Label::Symbol(MarkedSymbol::Terminal(EByte::End)) => WireLabel::End,
                        Label::Symbol(MarkedSymbol::Markers(m)) => WireLabel::Markers(m.bits()),
                        Label::Epsilon => WireLabel::Epsilon,
                    },
                    to: t as u64,
                })
                .collect(),
        }
    }

    /// The automaton's content hash, the cache key of the `shard_build`
    /// have/need negotiation.  Computed over the *decoded* structure (not
    /// the frame bytes), so both sides of the wire — and a worker
    /// verifying a claimed hash against the automaton it actually
    /// received — agree on the key regardless of JSON formatting.
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = slp::Fnv64::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Largest state count [`WireNfa::to_nfa`] will materialise.  The
    /// state count controls an up-front `O(states)` allocation, so — like
    /// the hostile-`q` guard in the summary-row codec — it must be bounded
    /// *before* trusting the frame: a sub-kilobyte frame must not be able
    /// to demand terabytes.  `2^20` states is far beyond anything the
    /// `O(size(S)·q³)` pass could ever finish on.
    pub const MAX_STATES: u64 = 1 << 20;

    /// Reconstructs the automaton, validating the state count and every
    /// state index.
    pub fn to_nfa(&self) -> Result<Nfa<MarkedSymbol<EByte>>, ProtoError> {
        let states = usize::try_from(self.states)
            .ok()
            .filter(|&n| n >= 1 && n as u64 <= Self::MAX_STATES)
            .ok_or_else(|| {
                ProtoError::Malformed(format!(
                    "nfa state count {} outside 1..={}",
                    self.states,
                    Self::MAX_STATES
                ))
            })?;
        let check = |s: u64, what: &str| -> Result<usize, ProtoError> {
            usize::try_from(s)
                .ok()
                .filter(|&s| s < states)
                .ok_or_else(|| ProtoError::Malformed(format!("{what} {s} out of range")))
        };
        let mut nfa: Nfa<MarkedSymbol<EByte>> = Nfa::with_states(states);
        nfa.set_start(check(self.start, "start state")?);
        for &s in &self.accepting {
            nfa.set_accepting(check(s, "accepting state")?, true);
        }
        for arc in &self.arcs {
            let (from, to) = (check(arc.from, "arc source")?, check(arc.to, "arc target")?);
            match arc.label {
                WireLabel::Byte(b) => {
                    nfa.add_transition(from, MarkedSymbol::Terminal(EByte::Byte(b)), to)
                }
                WireLabel::End => nfa.add_transition(from, MarkedSymbol::Terminal(EByte::End), to),
                WireLabel::Markers(bits) => {
                    nfa.add_transition(from, MarkedSymbol::Markers(MarkerSet::from_bits(bits)), to)
                }
                WireLabel::Epsilon => nfa.add_epsilon(from, to),
            }
        }
        Ok(nfa)
    }

    fn to_json(&self) -> Json {
        let label = |l: WireLabel| match l {
            WireLabel::Byte(b) => Json::num(b),
            WireLabel::End => Json::str("end"),
            WireLabel::Epsilon => Json::str("eps"),
            WireLabel::Markers(bits) => obj(vec![("m", Json::num(bits))]),
        };
        obj(vec![
            ("states", Json::num(self.states)),
            ("start", Json::num(self.start)),
            (
                "accepting",
                Json::Arr(self.accepting.iter().map(|&s| Json::num(s)).collect()),
            ),
            (
                "arcs",
                Json::Arr(
                    self.arcs
                        .iter()
                        .map(|arc| {
                            Json::Arr(vec![
                                Json::num(arc.from),
                                label(arc.label),
                                Json::num(arc.to),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<WireNfa, ProtoError> {
        let label = |v: &Json| -> Result<WireLabel, ProtoError> {
            if let Some(n) = v.as_u64() {
                let b = u8::try_from(n)
                    .map_err(|_| ProtoError::Malformed(format!("label byte {n} out of range")))?;
                return Ok(WireLabel::Byte(b));
            }
            if let Some(s) = v.as_str() {
                return match s {
                    b"end" => Ok(WireLabel::End),
                    b"eps" => Ok(WireLabel::Epsilon),
                    other => Err(ProtoError::Malformed(format!(
                        "unknown label '{}'",
                        String::from_utf8_lossy(other)
                    ))),
                };
            }
            if let Some(m) = v.get("m") {
                return Ok(WireLabel::Markers(number(m, "marker bits")?));
            }
            Err(ProtoError::Malformed("unrecognised arc label".into()))
        };
        let accepting = field(value, "accepting")?
            .as_arr()
            .ok_or_else(|| ProtoError::Malformed("accepting is not an array".into()))?
            .iter()
            .map(|s| number(s, "accepting state"))
            .collect::<Result<_, _>>()?;
        let arcs = field(value, "arcs")?
            .as_arr()
            .ok_or_else(|| ProtoError::Malformed("arcs is not an array".into()))?
            .iter()
            .map(|arc| {
                let [from, l, to] = arc
                    .as_arr()
                    .ok_or_else(|| ProtoError::Malformed("arc is not an array".into()))?
                else {
                    return Err(ProtoError::Malformed("arc is not a triple".into()));
                };
                Ok(WireArc {
                    from: number(from, "arc source")?,
                    label: label(l)?,
                    to: number(to, "arc target")?,
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(WireNfa {
            states: num_field(value, "states")?,
            start: num_field(value, "start")?,
            accepting,
            arcs,
        })
    }
}

// ---------------------------------------------------------------------------
// Packed payload helpers (v2): base64 + varints
// ---------------------------------------------------------------------------

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64, no padding characters.  Raw packed bytes cannot ride in
/// a [`Json::Str`] directly — non-printable bytes escape to `\xNN` (four
/// characters each), which would *inflate* the frame; base64 keeps the
/// overhead at a flat 4/3.
fn b64_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = (chunk[0] as u32) << 16
            | (*chunk.get(1).unwrap_or(&0) as u32) << 8
            | *chunk.get(2).unwrap_or(&0) as u32;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63]);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63]);
        if chunk.len() > 1 {
            out.push(B64_ALPHABET[(n >> 6) as usize & 63]);
        }
        if chunk.len() > 2 {
            out.push(B64_ALPHABET[n as usize & 63]);
        }
    }
    out
}

/// Decodes unpadded base64, rejecting invalid characters, impossible
/// lengths and non-zero tail bits (so the encoding stays canonical:
/// `encode(decode(s)) == s` for every accepted `s`).
fn b64_decode(text: &[u8]) -> Result<Vec<u8>, ProtoError> {
    if text.len() % 4 == 1 {
        return Err(ProtoError::Malformed("truncated base64 payload".into()));
    }
    let mut out = Vec::with_capacity(text.len() * 3 / 4 + 1);
    let mut acc: u32 = 0;
    let mut bits: u32 = 0;
    for &c in text {
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            other => {
                return Err(ProtoError::Malformed(format!(
                    "invalid base64 byte 0x{other:02x}"
                )))
            }
        };
        acc = acc << 6 | v as u32;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    if bits > 0 && acc & ((1 << bits) - 1) != 0 {
        return Err(ProtoError::Malformed("non-canonical base64 tail".into()));
    }
    Ok(out)
}

/// LEB128: 7 payload bits per byte, high bit = continuation.
fn varint_push(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn varint_read(data: &[u8], pos: &mut usize) -> Result<u64, ProtoError> {
    let mut n: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = data
            .get(*pos)
            .ok_or_else(|| ProtoError::Malformed("truncated varint".into()))?;
        *pos += 1;
        if shift == 63 && byte > 1 || shift > 63 {
            return Err(ProtoError::Malformed("varint overflows u64".into()));
        }
        n |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

/// Zigzag: small signed deltas become small varints in either direction.
fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

// Rule-stream tags (one byte each, ahead of the rule's payload).
const RULE_TAG_BYTE: u8 = 0;
const RULE_TAG_END: u8 = 1;
const RULE_TAG_PAIR: u8 = 2;

/// Encodes a standalone shard rule block as one base64 varint stream: per
/// rule a tag byte, then for leaves the terminal byte and for `A → BC`
/// pairs the zigzag deltas `index − b`, `index − c` (children of real
/// blocks sit just below their parent, so the deltas are tiny varints).
/// Roughly 3× fewer characters than the v1 JSON array of
/// numbers-and-pairs — the dominant share of the scatter leg.
fn rules_to_json(rules: &[NfRule<EByte>]) -> Json {
    let mut packed = Vec::with_capacity(rules.len() * 3);
    for (index, rule) in rules.iter().enumerate() {
        match rule {
            NfRule::Leaf(EByte::Byte(b)) => {
                packed.push(RULE_TAG_BYTE);
                packed.push(*b);
            }
            NfRule::Leaf(EByte::End) => packed.push(RULE_TAG_END),
            NfRule::Pair(b, c) => {
                packed.push(RULE_TAG_PAIR);
                varint_push(&mut packed, zigzag(index as i64 - b.0 as i64));
                varint_push(&mut packed, zigzag(index as i64 - c.0 as i64));
            }
        }
    }
    Json::Str(b64_encode(&packed))
}

/// Decodes a shard rule block: the v2 packed stream (a base64 string), or
/// the v1 JSON array of leaves and `[b, c]` pairs.
fn rules_from_json(value: &Json) -> Result<Vec<NfRule<EByte>>, ProtoError> {
    if let Some(text) = value.as_str() {
        let packed = b64_decode(text)?;
        let mut rules = Vec::new();
        let mut pos = 0usize;
        while pos < packed.len() {
            let tag = packed[pos];
            pos += 1;
            rules.push(match tag {
                RULE_TAG_BYTE => {
                    let &b = packed
                        .get(pos)
                        .ok_or_else(|| ProtoError::Malformed("truncated leaf rule".into()))?;
                    pos += 1;
                    NfRule::Leaf(EByte::Byte(b))
                }
                RULE_TAG_END => NfRule::Leaf(EByte::End),
                RULE_TAG_PAIR => {
                    let index = rules.len() as i64;
                    let mut child = |what: &str| -> Result<NonTerminal, ProtoError> {
                        let delta = unzigzag(varint_read(&packed, &mut pos)?);
                        index
                            .checked_sub(delta)
                            .and_then(|c| u32::try_from(c).ok())
                            .map(NonTerminal)
                            .ok_or_else(|| {
                                ProtoError::Malformed(format!("{what} index out of range"))
                            })
                    };
                    let b = child("left child")?;
                    let c = child("right child")?;
                    NfRule::Pair(b, c)
                }
                other => return Err(ProtoError::Malformed(format!("unknown rule tag {other}"))),
            });
        }
        return Ok(rules);
    }
    value
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("rules is neither a string nor an array".into()))?
        .iter()
        .map(|rule| {
            if let Some(n) = rule.as_u64() {
                let b = u8::try_from(n)
                    .map_err(|_| ProtoError::Malformed(format!("leaf byte {n} out of range")))?;
                return Ok(NfRule::Leaf(EByte::Byte(b)));
            }
            if let Some(s) = rule.as_str() {
                if s == b"end" {
                    return Ok(NfRule::Leaf(EByte::End));
                }
                return Err(ProtoError::Malformed(format!(
                    "unknown leaf '{}'",
                    String::from_utf8_lossy(s)
                )));
            }
            if let Some([b, c]) = rule.as_arr() {
                let index = |v: &Json, what: &str| -> Result<u32, ProtoError> {
                    u32::try_from(number(v, what)?)
                        .map_err(|_| ProtoError::Malformed(format!("{what} out of range")))
                };
                return Ok(NfRule::Pair(
                    NonTerminal(index(b, "left child")?),
                    NonTerminal(index(c, "right child")?),
                ));
            }
            Err(ProtoError::Malformed("unrecognised rule".into()))
        })
        .collect()
}

/// Encodes summary matrices as base64 bitplanes: per rule, the `nonbot`
/// plane's `q²` bits (entry `(i,j)` at bit `i·q + j`, LSB-first within
/// bytes) rounded up to whole bytes, then the `nonempty` plane likewise —
/// 2 bits per three-valued entry, ~3× fewer wire characters than the v1
/// one-byte-per-entry string, and the full marker-set matrices of
/// Lemma 6.5 still never cross the wire.
fn planes_to_json(rows: &[RMatrix]) -> Json {
    let mut packed = Vec::new();
    for matrix in rows {
        let q = matrix.q();
        for plane in [matrix.nonbot_plane(), matrix.nonempty_plane()] {
            let mut byte = 0u8;
            let mut filled = 0u32;
            for i in 0..q {
                for j in 0..q {
                    if plane.get(i, j) {
                        byte |= 1 << filled;
                    }
                    filled += 1;
                    if filled == 8 {
                        packed.push(byte);
                        byte = 0;
                        filled = 0;
                    }
                }
            }
            if filled > 0 {
                packed.push(byte);
            }
        }
    }
    Json::Str(b64_encode(&packed))
}

/// Decodes bitplane summaries from the `q` recorded alongside them,
/// validating the plane stride, the `nonempty ⊆ nonbot` invariant and the
/// final byte's padding bits of every plane.
fn planes_from_json(value: &Json, q: u64) -> Result<Vec<RMatrix>, ProtoError> {
    let text = value
        .as_str()
        .ok_or_else(|| ProtoError::Malformed("planes is not a string".into()))?;
    let packed = b64_decode(text)?;
    let plane_bytes = q
        .checked_mul(q)
        .map(|c| c.div_ceil(8))
        .and_then(|c| usize::try_from(c).ok())
        .filter(|&c| c > 0)
        .ok_or_else(|| ProtoError::Malformed("q is zero or out of range".into()))?;
    let per_rule = 2 * plane_bytes;
    if !packed.len().is_multiple_of(per_rule) {
        return Err(ProtoError::Malformed(format!(
            "plane bytes ({}) are not a multiple of 2·⌈q²/8⌉ ({per_rule})",
            packed.len()
        )));
    }
    let q = q as usize;
    packed
        .chunks(per_rule)
        .map(|chunk| {
            let (nonbot_bits, nonempty_bits) = chunk.split_at(plane_bytes);
            let mut matrix = RMatrix::bot(q);
            for idx in 0..q * q {
                let mask = 1u8 << (idx % 8);
                let nb = nonbot_bits[idx / 8] & mask != 0;
                let ne = nonempty_bits[idx / 8] & mask != 0;
                if ne && !nb {
                    return Err(ProtoError::Malformed(
                        "nonempty entry without its nonbot bit".into(),
                    ));
                }
                if nb {
                    matrix.set(
                        idx / q,
                        idx % q,
                        if ne { REntry::NonEmpty } else { REntry::Empty },
                    );
                }
            }
            // Padding bits beyond q² in each plane's final byte must be
            // zero, or re-encoding would not reproduce the frame.
            let pad = q * q % 8;
            if pad != 0 {
                for bits in [nonbot_bits, nonempty_bits] {
                    if bits[plane_bytes - 1] >> pad != 0 {
                        return Err(ProtoError::Malformed("non-zero plane padding bits".into()));
                    }
                }
            }
            Ok(matrix)
        })
        .collect()
}

/// Decodes v1 summary rows (`B`/`E`/`N`, one byte per entry) — the legacy
/// fallback behind the `rows` response key.
fn legacy_rows_from_json(value: &Json, q: u64) -> Result<Vec<RMatrix>, ProtoError> {
    let bytes = value
        .as_str()
        .ok_or_else(|| ProtoError::Malformed("rows is not a string".into()))?;
    let cell = q
        .checked_mul(q)
        .and_then(|c| usize::try_from(c).ok())
        .filter(|&c| c > 0)
        .ok_or_else(|| ProtoError::Malformed("q is zero or out of range".into()))?;
    if !bytes.len().is_multiple_of(cell) {
        return Err(ProtoError::Malformed(format!(
            "row bytes ({}) are not a multiple of q² ({cell})",
            bytes.len()
        )));
    }
    let q = q as usize;
    bytes
        .chunks(cell)
        .map(|chunk| {
            let mut matrix = RMatrix::bot(q);
            for (idx, b) in chunk.iter().enumerate() {
                let entry = match b {
                    b'B' => REntry::Bot,
                    b'E' => REntry::Empty,
                    b'N' => REntry::NonEmpty,
                    other => {
                        return Err(ProtoError::Malformed(format!(
                            "unknown summary entry 0x{other:02x}"
                        )))
                    }
                };
                matrix.set(idx / q, idx % q, entry);
            }
            Ok(matrix)
        })
        .collect()
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Compile and pool a query from a variable-regex pattern.
    AddQuery {
        /// The variable-regex pattern (see `spanner::regex`).
        pattern: String,
        /// The document alphabet the pattern ranges over.
        alphabet: Vec<u8>,
    },
    /// Compress and pool a document (monolithic).
    AddDoc {
        /// Owning tenant (0 = default; omitted on the wire when 0).
        tenant: u32,
        /// The raw document bytes.
        text: Vec<u8>,
    },
    /// Compress and pool a document split into `k` shards (`k = 0` lets the
    /// server auto-tune the shard count).
    AddDocSharded {
        /// Owning tenant (0 = default; omitted on the wire when 0).
        tenant: u32,
        /// Requested shard count; `0` = auto.
        k: u64,
        /// The raw document bytes.
        text: Vec<u8>,
    },
    /// Evaluate one task over a pooled (query, document) pair.
    Task {
        /// Tenant whose document namespace `doc` resolves in (0 = default;
        /// omitted on the wire when 0).  Queries are shared across tenants.
        tenant: u32,
        /// Trace id of a *sampled* request (0 = unsampled; omitted on the
        /// wire when 0, so untraced frames stay byte-identical to the
        /// pre-tracing encoding).  A non-zero id asks the server to record
        /// spans and return them in the response's `"trace"` field.
        trace: u64,
        /// Wire id of the pooled query.
        query: u64,
        /// Wire id of the pooled document (inside the tenant's namespace).
        doc: u64,
        /// What to compute.
        task: WireTask,
    },
    /// Unregister a pooled document: its wire id stops resolving and its
    /// cached matrices are invalidated (`MatrixCache::clear_doc`).
    RemoveDoc {
        /// Tenant whose namespace `doc` resolves in (0 = default; omitted
        /// on the wire when 0).
        tenant: u32,
        /// Wire id of the pooled document.
        doc: u64,
    },
    /// Create a tenant namespace with quotas, a cache share and an
    /// admission weight.  Fails if the id is already taken (id 0 — the
    /// default tenant — always exists).
    TenantCreate {
        /// The tenant's full configuration.
        spec: TenantSpec,
    },
    /// Replace an existing tenant's configuration (usage is untouched; new
    /// limits apply to subsequent registrations).
    TenantUpdate {
        /// The tenant's full configuration.
        spec: TenantSpec,
    },
    /// Run one shard's Lemma 6.5 matrix pass (the worker verb behind
    /// distributed shard execution): a *standalone* rule block plus the
    /// query's end-transformed automaton — never the surrounding document.
    /// The reply ([`Response::ShardBuilt`]) carries only the block's
    /// three-valued summary rows.
    ///
    /// Content-addressed negotiation: each payload half (automaton, rule
    /// block) may be replaced by its content hash alone.  A worker holding
    /// the hashed value in its block cache runs the pass as usual; one
    /// that does not answers [`Response::NeedBlocks`] naming the missing
    /// halves, and the coordinator re-sends the frame with the bytes
    /// inline.  A frame naming *neither* the bytes nor a hash for a half
    /// is malformed.
    ShardBuild {
        /// The query's end-transformed, ε-free automaton; `None` ships
        /// only `nfa_hash`.
        nfa: Option<WireNfa>,
        /// The shard's standalone rule block (local indices); `None` ships
        /// only `block_hash`.
        rules: Option<Vec<NfRule<EByte>>>,
        /// Local index of the block's root rule.
        root: u64,
        /// Content hash of the automaton ([`WireNfa::content_hash`]); 0 =
        /// not negotiated (legacy frame).
        nfa_hash: u64,
        /// Content hash of the rule block
        /// ([`slp::block_content_hash`] over `(rules, root)`); 0 = not
        /// negotiated (legacy frame).
        block_hash: u64,
        /// Trace id of the sampled request this pass belongs to (0 =
        /// unsampled; omitted on the wire when 0).  A worker receiving a
        /// non-zero id records its pass spans and returns them in
        /// [`Response::ShardBuilt`].
        trace: u64,
    },
    /// Snapshot the service-wide and server-level counters.
    Stats,
    /// Begin a graceful shutdown: drain in-flight work, then exit.
    Shutdown,
}

/// Cumulative service counters as spoken on the wire (see
/// [`ServiceStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireServiceStats {
    /// Total requests served.
    pub requests: u64,
    /// Non-emptiness requests.
    pub non_emptiness: u64,
    /// Model-checking requests.
    pub model_check: u64,
    /// Counting requests.
    pub count: u64,
    /// Compute requests.
    pub compute: u64,
    /// Enumeration requests.
    pub enumerate: u64,
    /// Matrix-cache hits.
    pub cache_hits: u64,
    /// Matrix-cache misses (builds).
    pub cache_misses: u64,
    /// Matrix sets evicted under the byte budget.
    pub evictions: u64,
    /// Bytes of matrices currently resident.
    pub resident_bytes: u64,
    /// Matrix sets currently resident.
    pub resident_entries: u64,
}

impl From<&ServiceStats> for WireServiceStats {
    fn from(s: &ServiceStats) -> Self {
        WireServiceStats {
            requests: s.requests,
            non_emptiness: s.by_task.non_emptiness,
            model_check: s.by_task.model_check,
            count: s.by_task.count,
            compute: s.by_task.compute,
            enumerate: s.by_task.enumerate,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            evictions: s.evictions,
            resident_bytes: s.resident_bytes as u64,
            resident_entries: s.resident_entries as u64,
        }
    }
}

/// Server-level counters (transport concerns the service layer cannot
/// see), the other half of a [`Response::Stats`] frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames received (including rejected ones).
    pub frames: u64,
    /// Requests answered with [`ErrorCode::Busy`].
    pub busy_rejections: u64,
    /// Frames answered with [`ErrorCode::Malformed`] or
    /// [`ErrorCode::Version`].
    pub malformed_frames: u64,
    /// Frames answered with [`ErrorCode::Oversized`].
    pub oversized_frames: u64,
    /// Enumeration pages flushed to clients.
    pub pages_streamed: u64,
    /// Requests executing right now.
    pub inflight: u64,
    /// Requests answered with [`ErrorCode::Quota`].
    pub quota_rejections: u64,
    /// Remote shard passes that fell back to local execution (0 when no
    /// worker pool is attached).
    pub remote_fallbacks: u64,
    /// Remote shard passes re-issued to a second worker after the hedge
    /// budget expired.
    pub remote_hedges: u64,
    /// Documents transparently re-registered by the auto re-shard policy.
    pub reshards: u64,
    /// Worker block-cache hits (shard passes answered without the block
    /// bytes crossing the wire; 0 unless this server runs as a worker).
    pub block_cache_hits: u64,
    /// Worker block-cache misses (hash-only frames answered `need`, plus
    /// first-time inserts).
    pub block_cache_misses: u64,
    /// Worker block-cache entries evicted under the byte budget.
    pub block_cache_evictions: u64,
    /// Worker block-cache bytes currently resident.
    pub block_cache_bytes: u64,
    /// Pipelined requests currently queued in the cheap task class
    /// (non-emptiness, model-check, count) of the QoS scheduler.
    pub queue_depth_cheap: u64,
    /// Pipelined requests currently queued in the expensive task class
    /// (compute, enumerate) of the QoS scheduler.
    pub queue_depth_expensive: u64,
    /// Requests shed with [`ErrorCode::Expired`]: their deadline elapsed
    /// while they were queued.
    pub shed_expired: u64,
    /// Requests shed with [`ErrorCode::Busy`] because their class queue
    /// was full (the bounded-queue replacement for the blanket inflight
    /// gate on pipelined traffic).
    pub shed_overflow: u64,
}

/// One tenant's usage, limits and serving counters inside a
/// [`Response::Stats`] frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTenantStats {
    /// Tenant id.
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Live documents.
    pub docs: u64,
    /// Corpus bytes across live documents.
    pub corpus_bytes: u64,
    /// Document quota (0 = unlimited).
    pub max_docs: u64,
    /// Corpus byte quota (0 = unlimited).
    pub max_corpus_bytes: u64,
    /// Reserved matrix-cache share in bytes (0 = none).
    pub cache_share: u64,
    /// Matrix-cache bytes currently resident for this tenant's documents.
    pub cache_resident: u64,
    /// Relative admission weight.
    pub admission_weight: u32,
    /// This tenant's requests executing right now.
    pub inflight: u64,
    /// Requests answered with `busy` at this tenant's admission cap.
    pub busy_rejections: u64,
    /// Registrations refused over this tenant's quotas.
    pub quota_rejections: u64,
}

impl WireTenantStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("id", Json::num(self.id)),
            ("name", Json::str(&self.name)),
            ("docs", Json::num(self.docs)),
            ("corpus_bytes", Json::num(self.corpus_bytes)),
            ("max_docs", Json::num(self.max_docs)),
            ("max_bytes", Json::num(self.max_corpus_bytes)),
            ("cache_share", Json::num(self.cache_share)),
            ("cache_resident", Json::num(self.cache_resident)),
            ("weight", Json::num(self.admission_weight)),
            ("inflight", Json::num(self.inflight)),
            ("busy", Json::num(self.busy_rejections)),
            ("quota", Json::num(self.quota_rejections)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireTenantStats, ProtoError> {
        Ok(WireTenantStats {
            id: u32::try_from(num_field(value, "id")?)
                .map_err(|_| ProtoError::Malformed("tenant id out of range".into()))?,
            name: String::from_utf8_lossy(&str_field(value, "name")?).into_owned(),
            docs: num_field(value, "docs")?,
            corpus_bytes: num_field(value, "corpus_bytes")?,
            max_docs: num_field(value, "max_docs")?,
            max_corpus_bytes: num_field(value, "max_bytes")?,
            cache_share: num_field(value, "cache_share")?,
            cache_resident: num_field(value, "cache_resident")?,
            admission_weight: u32::try_from(num_field(value, "weight")?)
                .map_err(|_| ProtoError::Malformed("tenant weight out of range".into()))?,
            inflight: num_field(value, "inflight")?,
            busy_rejections: num_field(value, "busy")?,
            quota_rejections: num_field(value, "quota")?,
        })
    }
}

/// The durable store's health inside a [`Response::Stats`] frame (absent
/// when the server runs without persistence).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStoreStats {
    /// Log records appended since the last snapshot.
    pub log_records: u64,
    /// Log bytes on disk since the last snapshot.
    pub log_bytes: u64,
    /// Highest sequence number made durable.
    pub last_seq: u64,
    /// Sequence number covered by the snapshot (0 = none yet).
    pub snapshot_seq: u64,
    /// Seconds since the last snapshot was written (`None` = none yet).
    pub snapshot_age_secs: Option<u64>,
    /// Snapshots written over the store's lifetime (all triggers).
    pub snapshots: u64,
    /// Snapshots triggered by the every-N-verbs cadence.
    pub snapshots_on_cadence: u64,
    /// Snapshots triggered by the log-size compaction threshold.
    pub snapshots_on_size: u64,
}

impl From<&StoreMetrics> for WireStoreStats {
    fn from(m: &StoreMetrics) -> Self {
        WireStoreStats {
            log_records: m.log_records,
            log_bytes: m.log_bytes,
            last_seq: m.last_seq,
            snapshot_seq: m.snapshot_seq,
            snapshot_age_secs: m.snapshot_age_secs,
            snapshots: m.snapshots,
            // Trigger attribution lives in the persistence layer, not the
            // store; the server patches these in.
            snapshots_on_cadence: 0,
            snapshots_on_size: 0,
        }
    }
}

impl WireStoreStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("log_records", Json::num(self.log_records)),
            ("log_bytes", Json::num(self.log_bytes)),
            ("last_seq", Json::num(self.last_seq)),
            ("snapshot_seq", Json::num(self.snapshot_seq)),
            (
                "snapshot_age_secs",
                self.snapshot_age_secs.map_or(Json::Null, Json::num),
            ),
            ("snapshots", Json::num(self.snapshots)),
            ("snapshots_on_cadence", Json::num(self.snapshots_on_cadence)),
            ("snapshots_on_size", Json::num(self.snapshots_on_size)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireStoreStats, ProtoError> {
        // The snapshot-trigger counters are absent in frames from older
        // servers; default them to zero.
        let optional = |key: &str| -> Result<u64, ProtoError> {
            match value.get(key) {
                None => Ok(0),
                Some(v) => number(v, key),
            }
        };
        Ok(WireStoreStats {
            log_records: num_field(value, "log_records")?,
            log_bytes: num_field(value, "log_bytes")?,
            last_seq: num_field(value, "last_seq")?,
            snapshot_seq: num_field(value, "snapshot_seq")?,
            snapshot_age_secs: opt_num_field(value, "snapshot_age_secs")?,
            snapshots: optional("snapshots")?,
            snapshots_on_cadence: optional("snapshots_on_cadence")?,
            snapshots_on_size: optional("snapshots_on_size")?,
        })
    }
}

/// Latency observability inside a [`Response::Stats`] frame (absent in
/// frames from servers predating the tracing subsystem): log2-bucketed
/// request-duration histograms per task kind and per tenant, the shard-pass
/// histogram with the adaptive hedge window it feeds, and background
/// compaction timings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireObsStats {
    /// Request-duration histograms by task kind, in [`Task::KIND_NAMES`]
    /// order (always 5 entries in frames this build emits).
    pub kinds: Vec<HistSnapshot>,
    /// Request-duration histograms by tenant id, ascending.
    pub tenants: Vec<(u32, HistSnapshot)>,
    /// Durations of individual shard passes (scatter legs), all executors.
    pub shard_pass: HistSnapshot,
    /// The remote executor's current adaptive hedge budget in µs (0 = no
    /// remote pool or hedging disabled).
    pub hedge_budget_us: u64,
    /// Round-trip samples currently in the hedge budget window.
    pub hedge_samples: u64,
    /// Background snapshot compactions completed.
    pub compactions: u64,
    /// Duration of the most recent compaction in µs.
    pub compaction_last_us: u64,
    /// Total time spent compacting in µs.
    pub compaction_total_us: u64,
}

impl WireObsStats {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "kinds",
                Json::Arr(self.kinds.iter().map(hist_to_json).collect()),
            ),
            (
                "tenants",
                Json::Arr(
                    self.tenants
                        .iter()
                        .map(|(id, hist)| Json::Arr(vec![Json::num(*id), hist_to_json(hist)]))
                        .collect(),
                ),
            ),
            ("shard_pass", hist_to_json(&self.shard_pass)),
            ("hedge_budget_us", Json::num(self.hedge_budget_us)),
            ("hedge_samples", Json::num(self.hedge_samples)),
            ("compactions", Json::num(self.compactions)),
            ("compaction_last_us", Json::num(self.compaction_last_us)),
            ("compaction_total_us", Json::num(self.compaction_total_us)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireObsStats, ProtoError> {
        let kinds = field(value, "kinds")?
            .as_arr()
            .ok_or_else(|| ProtoError::Malformed("obs kinds is not an array".into()))?
            .iter()
            .map(hist_from_json)
            .collect::<Result<_, _>>()?;
        let tenants = field(value, "tenants")?
            .as_arr()
            .ok_or_else(|| ProtoError::Malformed("obs tenants is not an array".into()))?
            .iter()
            .map(|entry| {
                let Some([id, hist]) = entry.as_arr() else {
                    return Err(ProtoError::Malformed(
                        "obs tenant entry is not a pair".into(),
                    ));
                };
                Ok((
                    u32::try_from(number(id, "obs tenant id")?)
                        .map_err(|_| ProtoError::Malformed("obs tenant id out of range".into()))?,
                    hist_from_json(hist)?,
                ))
            })
            .collect::<Result<_, _>>()?;
        Ok(WireObsStats {
            kinds,
            tenants,
            shard_pass: hist_from_json(field(value, "shard_pass")?)?,
            hedge_budget_us: num_field(value, "hedge_budget_us")?,
            hedge_samples: num_field(value, "hedge_samples")?,
            compactions: num_field(value, "compactions")?,
            compaction_last_us: num_field(value, "compaction_last_us")?,
            compaction_total_us: num_field(value, "compaction_total_us")?,
        })
    }
}

/// Per-request cost statistics as spoken on the wire (see
/// [`RequestStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// `true` if the pair's matrices were already resident.
    pub cache_hit: bool,
    /// Matrix build time in microseconds (zero on a hit).
    pub build_us: u128,
    /// Task time in microseconds.
    pub task_us: u128,
    /// Bytes of the pair's matrices.
    pub matrix_bytes: u64,
    /// Tuples materialised (or streamed) into the response.
    pub results: u64,
}

impl From<&RequestStats> for WireStats {
    fn from(s: &RequestStats) -> Self {
        WireStats {
            cache_hit: s.cache_hit,
            build_us: s.matrix_build.as_micros(),
            task_us: s.task_time.as_micros(),
            matrix_bytes: s.matrix_bytes as u64,
            results: s.results,
        }
    }
}

/// A server→client frame.
// `Stats` dwarfs the other variants, but it is a rare diagnostics reply —
// boxing it would complicate every codec site to shrink a type that never
// sits on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's protocol version.
        proto: u64,
    },
    /// Answer to [`Request::AddQuery`].
    QueryAdded {
        /// Wire id for subsequent [`Request::Task`] frames.
        id: u64,
    },
    /// Answer to [`Request::AddDoc`] / [`Request::AddDocSharded`].
    DocAdded {
        /// Wire id for subsequent [`Request::Task`] frames.
        id: u64,
        /// Number of shards the document was registered with.
        shards: u64,
        /// Document length in bytes.
        len: u64,
    },
    /// Answer to [`WireTask::NonEmptiness`].
    NonEmpty {
        /// The verdict.
        value: bool,
        /// What the request cost.
        stats: WireStats,
        /// Span forest of a sampled request (`None` = unsampled; omitted
        /// on the wire, keeping untraced frames byte-identical).
        trace: Option<Vec<SpanRec>>,
    },
    /// Answer to [`WireTask::ModelCheck`].
    Checked {
        /// The verdict.
        value: bool,
        /// What the request cost.
        stats: WireStats,
        /// Span forest of a sampled request (`None` = unsampled).
        trace: Option<Vec<SpanRec>>,
    },
    /// Answer to [`WireTask::Count`].
    Counted {
        /// `|⟦M⟧(D)|`.
        value: u128,
        /// What the request cost.
        stats: WireStats,
        /// Span forest of a sampled request (`None` = unsampled).
        trace: Option<Vec<SpanRec>>,
    },
    /// Answer to [`WireTask::Compute`].
    Tuples {
        /// The materialised tuples.
        tuples: Vec<SpanTuple>,
        /// What the request cost.
        stats: WireStats,
        /// Span forest of a sampled request (`None` = unsampled).
        trace: Option<Vec<SpanRec>>,
    },
    /// One page of an enumeration stream, flushed as it is produced.
    Page {
        /// The page's tuples.
        tuples: Vec<SpanTuple>,
    },
    /// Terminal frame of an enumeration stream.
    StreamEnd {
        /// Total tuples streamed across the pages.
        streamed: u64,
        /// What the request cost.
        stats: WireStats,
        /// Span forest of a sampled request (`None` = unsampled).
        trace: Option<Vec<SpanRec>>,
    },
    /// Answer to [`Request::RemoveDoc`].
    DocRemoved {
        /// The removed document's wire id (now burned; it will not be
        /// reissued).
        id: u64,
    },
    /// Answer to [`Request::ShardBuild`]: the block's summary matrices as
    /// packed bitplanes — 2 bits per three-valued entry, never the full
    /// marker-set matrices.
    ShardBuilt {
        /// Number of automaton states `q` (the plane stride).
        q: u64,
        /// Summaries, one bit-packed `q×q` matrix per block rule in local
        /// order.
        rows: Vec<RMatrix>,
        /// Worker-side wall-clock of the pass, in microseconds.
        elapsed_us: u64,
        /// The worker's span fragment for a traced pass, in the *worker's*
        /// timebase (offsets from its receipt of the frame); empty for
        /// untraced passes and omitted on the wire.  The coordinator
        /// re-bases the fragment onto the request timeline at the gather.
        spans: Vec<SpanRec>,
    },
    /// Answer to a hash-only [`Request::ShardBuild`] the worker cannot
    /// satisfy from its block cache: the named halves must be re-sent with
    /// their bytes inline (same connection, same request otherwise).
    NeedBlocks {
        /// The worker does not hold the automaton named by `nh`.
        need_nfa: bool,
        /// The worker does not hold the rule block named by `bh`.
        need_block: bool,
    },
    /// Answer to [`Request::TenantCreate`] / [`Request::TenantUpdate`].
    TenantOk {
        /// The tenant's id.
        id: u32,
        /// `true` for a creation, `false` for an update.
        created: bool,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Service-wide evaluation counters.
        service: WireServiceStats,
        /// Transport-level counters.
        server: WireServerStats,
        /// Per-tenant usage, limits and serving counters (always at least
        /// the default tenant; empty only in frames from older servers).
        tenants: Vec<WireTenantStats>,
        /// Durable-store health; `None` when the server runs in-memory.
        store: Option<WireStoreStats>,
        /// Latency histograms and compaction timings; `None` in frames
        /// from servers predating the tracing subsystem.
        obs: Option<WireObsStats>,
    },
    /// Answer to [`Request::Shutdown`]: the drain has begun.
    ShuttingDown,
    /// A structured error; the connection stays open (even for
    /// [`ErrorCode::Busy`] — backpressure is never a dropped connection).
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

/// Encodes a span-tuple as `[[start,end]|null, …]`, one slot per variable.
pub fn tuple_to_json(tuple: &SpanTuple) -> Json {
    Json::Arr(
        (0..tuple.num_vars())
            .map(|v| match tuple.get(Variable(v as u8)) {
                Some(span) => Json::Arr(vec![Json::num(span.start), Json::num(span.end)]),
                None => Json::Null,
            })
            .collect(),
    )
}

/// Decodes a span-tuple from its wire form.
pub fn tuple_from_json(value: &Json) -> Result<SpanTuple, ProtoError> {
    let slots = value
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("tuple is not an array".into()))?;
    let mut assignment = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Json::Null => assignment.push(None),
            Json::Arr(pair) => {
                let [start, end] = pair.as_slice() else {
                    return Err(ProtoError::Malformed(
                        "span is not a [start,end] pair".into(),
                    ));
                };
                let (start, end) = (number(start, "span start")?, number(end, "span end")?);
                let span = Span::new(start, end)
                    .map_err(|e| ProtoError::Malformed(format!("invalid span: {e}")))?;
                assignment.push(Some(span));
            }
            _ => {
                return Err(ProtoError::Malformed(
                    "tuple slot is neither null nor a span".into(),
                ))
            }
        }
    }
    Ok(SpanTuple::from_assignment(assignment))
}

fn tuples_to_json(tuples: &[SpanTuple]) -> Json {
    Json::Arr(tuples.iter().map(tuple_to_json).collect())
}

fn tuples_from_json(value: &Json) -> Result<Vec<SpanTuple>, ProtoError> {
    value
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("tuple list is not an array".into()))?
        .iter()
        .map(tuple_from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// Trace spans and latency histograms
// ---------------------------------------------------------------------------

/// Encodes one trace span as `{"n":name,"s":start_us,"d":dur_us[,"p":parent]
/// [,"a":[[k,v],…]]}` — `p` omitted for forest roots and `a` omitted when
/// empty, so minimal spans stay minimal on the wire.  Attributes ride as an
/// array of pairs (not an object) to keep frame keys static.
fn span_to_json(span: &SpanRec) -> Json {
    let mut pairs = vec![
        ("n", Json::str(&span.name)),
        ("s", Json::num(span.start_us)),
        ("d", Json::num(span.dur_us)),
    ];
    if let Some(parent) = span.parent {
        pairs.push(("p", Json::num(parent)));
    }
    if !span.attrs.is_empty() {
        pairs.push((
            "a",
            Json::Arr(
                span.attrs
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::str(k), Json::str(v)]))
                    .collect(),
            ),
        ));
    }
    obj(pairs)
}

fn span_from_json(value: &Json) -> Result<SpanRec, ProtoError> {
    let parent = match value.get("p") {
        None => None,
        Some(p) => Some(
            u32::try_from(number(p, "span parent")?)
                .map_err(|_| ProtoError::Malformed("span parent out of range".into()))?,
        ),
    };
    let attrs = match value.get("a") {
        None => Vec::new(),
        Some(list) => list
            .as_arr()
            .ok_or_else(|| ProtoError::Malformed("span attrs are not an array".into()))?
            .iter()
            .map(|pair| {
                let Some([k, v]) = pair.as_arr() else {
                    return Err(ProtoError::Malformed("span attr is not a pair".into()));
                };
                let text = |j: &Json, what: &str| -> Result<String, ProtoError> {
                    j.as_str()
                        .map(|s| String::from_utf8_lossy(s).into_owned())
                        .ok_or_else(|| ProtoError::Malformed(format!("{what} is not a string")))
                };
                Ok((text(k, "span attr key")?, text(v, "span attr value")?))
            })
            .collect::<Result<_, _>>()?,
    };
    Ok(SpanRec {
        name: String::from_utf8_lossy(&str_field(value, "n")?).into_owned(),
        start_us: num_field(value, "s")?,
        dur_us: num_field(value, "d")?,
        parent,
        attrs,
    })
}

pub(crate) fn spans_to_json(spans: &[SpanRec]) -> Json {
    Json::Arr(spans.iter().map(span_to_json).collect())
}

fn spans_from_json(value: &Json) -> Result<Vec<SpanRec>, ProtoError> {
    value
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("span list is not an array".into()))?
        .iter()
        .map(span_from_json)
        .collect()
}

/// Encodes a histogram snapshot as `{"b":[…],"c":count,"s":sum}` with
/// trailing zero buckets trimmed (decoders zero-pad), so an idle
/// histogram costs a dozen bytes, not 32 zeros.
fn hist_to_json(hist: &HistSnapshot) -> Json {
    let keep = hist
        .buckets
        .iter()
        .rposition(|&c| c != 0)
        .map_or(0, |i| i + 1);
    obj(vec![
        (
            "b",
            Json::Arr(hist.buckets[..keep].iter().map(|&c| Json::num(c)).collect()),
        ),
        ("c", Json::num(hist.count)),
        ("s", Json::num(hist.sum)),
    ])
}

fn hist_from_json(value: &Json) -> Result<HistSnapshot, ProtoError> {
    let buckets = field(value, "b")?
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("histogram buckets are not an array".into()))?
        .iter()
        .map(|c| number(c, "histogram bucket"))
        .collect::<Result<_, _>>()?;
    Ok(HistSnapshot {
        buckets,
        count: num_field(value, "c")?,
        sum: num_field(value, "s")?,
    })
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ProtoError> {
    obj.get(key)
        .ok_or_else(|| ProtoError::Malformed(format!("missing field '{key}'")))
}

fn number(value: &Json, what: &str) -> Result<u64, ProtoError> {
    value
        .as_u64()
        .ok_or_else(|| ProtoError::Malformed(format!("{what} is not a u64")))
}

fn num_field(obj: &Json, key: &str) -> Result<u64, ProtoError> {
    number(field(obj, key)?, key)
}

fn str_field(obj: &Json, key: &str) -> Result<Vec<u8>, ProtoError> {
    Ok(field(obj, key)?
        .as_str()
        .ok_or_else(|| ProtoError::Malformed(format!("field '{key}' is not a string")))?
        .to_vec())
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtoError> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| ProtoError::Malformed(format!("field '{key}' is not a bool")))
}

/// `null` → `None`, number → `Some`.
fn opt_num_field(obj: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match field(obj, key)? {
        Json::Null => Ok(None),
        other => Ok(Some(number(other, key)?)),
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Emits the `"t"` tenant field only when non-default, so default-tenant
/// frames stay byte-identical to the pre-tenancy encoding.
fn push_tenant(pairs: &mut Vec<(&str, Json)>, tenant: u32) {
    if tenant != 0 {
        pairs.push(("t", Json::num(tenant)));
    }
}

/// Reads the optional `"t"` tenant field; absent means the default tenant.
fn tenant_field(value: &Json) -> Result<u32, ProtoError> {
    match value.get("t") {
        None => Ok(0),
        Some(t) => u32::try_from(number(t, "tenant")?)
            .map_err(|_| ProtoError::Malformed("tenant id out of range".into())),
    }
}

/// Emits the `"tr"` trace-id field only when non-zero, so untraced frames
/// stay byte-identical to the pre-tracing encoding (the same discipline as
/// the tenant key).
fn push_trace(pairs: &mut Vec<(&str, Json)>, trace: u64) {
    if trace != 0 {
        pairs.push(("tr", Json::num(trace)));
    }
}

/// Reads the optional `"tr"` trace-id field; absent means unsampled.
fn trace_field(value: &Json) -> Result<u64, ProtoError> {
    match value.get("tr") {
        None => Ok(0),
        Some(tr) => number(tr, "trace id"),
    }
}

/// Emits the `"rid"`/`"dl"` envelope fields only when non-zero, so
/// un-pipelined frames stay byte-identical to the v2 encoding (modulo the
/// version number).
fn push_meta(pairs: &mut Vec<(&str, Json)>, meta: FrameMeta) {
    if meta.id != 0 {
        pairs.push(("rid", Json::num(meta.id)));
    }
    if meta.deadline_us != 0 {
        pairs.push(("dl", Json::num(meta.deadline_us)));
    }
}

/// Reads the optional `"rid"`/`"dl"` envelope; absent keys mean
/// [`FrameMeta::NONE`] semantics (not pipelined / no deadline).
fn meta_fields(value: &Json) -> Result<FrameMeta, ProtoError> {
    let optional = |key: &str, what: &str| -> Result<u64, ProtoError> {
        match value.get(key) {
            None => Ok(0),
            Some(v) => number(v, what),
        }
    };
    Ok(FrameMeta {
        id: optional("rid", "request id")?,
        deadline_us: optional("dl", "deadline")?,
    })
}

/// Emits the `"trace"` span-forest field of a task response only when the
/// request was sampled, so unsampled responses stay byte-identical.
fn push_response_trace(pairs: &mut Vec<(&str, Json)>, trace: &Option<Vec<SpanRec>>) {
    if let Some(spans) = trace {
        pairs.push(("trace", spans_to_json(spans)));
    }
}

/// Reads the optional `"trace"` span-forest field of a task response.
fn response_trace(value: &Json) -> Result<Option<Vec<SpanRec>>, ProtoError> {
    match value.get("trace") {
        None => Ok(None),
        Some(spans) => Ok(Some(spans_from_json(spans)?)),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as one canonical frame (no trailing newline)
    /// with the empty envelope — not pipelined, no deadline.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(FrameMeta::NONE)
    }

    /// Encodes the request with a pipelining envelope: the `"rid"`/`"dl"`
    /// keys ride directly after `"v"` and are omitted when zero, so
    /// `encode_with(FrameMeta::NONE)` is byte-identical to [`encode`]
    /// (canonicality survives the envelope).
    ///
    /// [`encode`]: Request::encode
    pub fn encode_with(&self, meta: FrameMeta) -> Vec<u8> {
        let mut pairs = vec![("v", Json::num(PROTOCOL_VERSION))];
        push_meta(&mut pairs, meta);
        match self {
            Request::Ping => pairs.push(("op", Json::str("ping"))),
            Request::AddQuery { pattern, alphabet } => {
                pairs.push(("op", Json::str("add_query")));
                pairs.push(("pattern", Json::str(pattern)));
                pairs.push(("alphabet", Json::Str(alphabet.clone())));
            }
            Request::AddDoc { tenant, text } => {
                pairs.push(("op", Json::str("add_doc")));
                push_tenant(&mut pairs, *tenant);
                pairs.push(("text", Json::Str(text.clone())));
            }
            Request::AddDocSharded { tenant, k, text } => {
                pairs.push(("op", Json::str("add_doc_sharded")));
                push_tenant(&mut pairs, *tenant);
                pairs.push(("k", Json::num(*k)));
                pairs.push(("text", Json::Str(text.clone())));
            }
            Request::Task {
                tenant,
                trace,
                query,
                doc,
                task,
            } => {
                pairs.push(("op", Json::str("task")));
                push_tenant(&mut pairs, *tenant);
                push_trace(&mut pairs, *trace);
                pairs.push(("task", Json::str(task.kind())));
                pairs.push(("query", Json::num(*query)));
                pairs.push(("doc", Json::num(*doc)));
                match task {
                    WireTask::ModelCheck(tuple) => pairs.push(("tuple", tuple_to_json(tuple))),
                    WireTask::Compute { limit } => {
                        pairs.push(("limit", limit.map_or(Json::Null, Json::num)));
                    }
                    WireTask::Enumerate { skip, limit } => {
                        pairs.push(("skip", Json::num(*skip)));
                        pairs.push(("limit", limit.map_or(Json::Null, Json::num)));
                    }
                    WireTask::NonEmptiness | WireTask::Count => {}
                }
            }
            Request::RemoveDoc { tenant, doc } => {
                pairs.push(("op", Json::str("remove_doc")));
                push_tenant(&mut pairs, *tenant);
                pairs.push(("doc", Json::num(*doc)));
            }
            Request::TenantCreate { spec } => {
                pairs.push(("op", Json::str("tenant_create")));
                pairs.push(("spec", spec_to_json(spec)));
            }
            Request::TenantUpdate { spec } => {
                pairs.push(("op", Json::str("tenant_update")));
                pairs.push(("spec", spec_to_json(spec)));
            }
            Request::ShardBuild {
                nfa,
                rules,
                root,
                nfa_hash,
                block_hash,
                trace,
            } => {
                pairs.push(("op", Json::str("shard_build")));
                // Payload halves and their hashes are each omitted when
                // absent, so a legacy-shaped frame (bytes inline, no
                // negotiation) is byte-identical to what a v1 coordinator
                // sends.
                if let Some(nfa) = nfa {
                    pairs.push(("nfa", nfa.to_json()));
                }
                if let Some(rules) = rules {
                    pairs.push(("rules", rules_to_json(rules)));
                }
                pairs.push(("root", Json::num(*root)));
                if *nfa_hash != 0 {
                    pairs.push(("nh", Json::num(*nfa_hash)));
                }
                if *block_hash != 0 {
                    pairs.push(("bh", Json::num(*block_hash)));
                }
                push_trace(&mut pairs, *trace);
            }
            Request::Stats => pairs.push(("op", Json::str("stats"))),
            Request::Shutdown => pairs.push(("op", Json::str("shutdown"))),
        }
        obj(pairs).to_bytes()
    }

    /// Decodes one request frame, checking the protocol version first and
    /// discarding the envelope (see [`Request::decode_framed`]).
    pub fn decode(line: &[u8]) -> Result<Request, ProtoError> {
        Request::decode_framed(line).map(|(request, _)| request)
    }

    /// Decodes one request frame together with its pipelining envelope.
    /// Frames without `"rid"`/`"dl"` keys — everything a v1 or v2 client
    /// produces — decode with [`FrameMeta::NONE`].
    pub fn decode_framed(line: &[u8]) -> Result<(Request, FrameMeta), ProtoError> {
        let value = Json::parse(line)?;
        let v = num_field(&value, "v")?;
        if !(LEGACY_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v) {
            return Err(ProtoError::Version(v));
        }
        let meta = meta_fields(&value)?;
        let op = str_field(&value, "op")?;
        let request = match op.as_slice() {
            b"ping" => Request::Ping,
            b"add_query" => Request::AddQuery {
                pattern: String::from_utf8(str_field(&value, "pattern")?)
                    .map_err(|_| ProtoError::Malformed("pattern is not UTF-8".into()))?,
                alphabet: str_field(&value, "alphabet")?,
            },
            b"add_doc" => Request::AddDoc {
                tenant: tenant_field(&value)?,
                text: str_field(&value, "text")?,
            },
            b"add_doc_sharded" => Request::AddDocSharded {
                tenant: tenant_field(&value)?,
                k: num_field(&value, "k")?,
                text: str_field(&value, "text")?,
            },
            b"task" => {
                let kind = str_field(&value, "task")?;
                let task = match kind.as_slice() {
                    b"non_emptiness" => WireTask::NonEmptiness,
                    b"model_check" => {
                        WireTask::ModelCheck(tuple_from_json(field(&value, "tuple")?)?)
                    }
                    b"count" => WireTask::Count,
                    b"compute" => WireTask::Compute {
                        limit: opt_num_field(&value, "limit")?,
                    },
                    b"enumerate" => WireTask::Enumerate {
                        skip: num_field(&value, "skip")?,
                        limit: opt_num_field(&value, "limit")?,
                    },
                    _ => {
                        return Err(ProtoError::Malformed(format!(
                            "unknown task kind '{}'",
                            String::from_utf8_lossy(&kind)
                        )))
                    }
                };
                Request::Task {
                    tenant: tenant_field(&value)?,
                    trace: trace_field(&value)?,
                    query: num_field(&value, "query")?,
                    doc: num_field(&value, "doc")?,
                    task,
                }
            }
            b"remove_doc" => Request::RemoveDoc {
                tenant: tenant_field(&value)?,
                doc: num_field(&value, "doc")?,
            },
            b"tenant_create" => Request::TenantCreate {
                spec: spec_from_json(field(&value, "spec")?)
                    .map_err(|e| ProtoError::Malformed(e.to_string()))?,
            },
            b"tenant_update" => Request::TenantUpdate {
                spec: spec_from_json(field(&value, "spec")?)
                    .map_err(|e| ProtoError::Malformed(e.to_string()))?,
            },
            b"shard_build" => {
                let nfa = match value.get("nfa") {
                    None => None,
                    Some(v) => Some(WireNfa::from_json(v)?),
                };
                let rules = match value.get("rules") {
                    None => None,
                    Some(v) => Some(rules_from_json(v)?),
                };
                let optional_hash = |key: &str| -> Result<u64, ProtoError> {
                    match value.get(key) {
                        None => Ok(0),
                        Some(v) => number(v, key),
                    }
                };
                let (nfa_hash, block_hash) = (optional_hash("nh")?, optional_hash("bh")?);
                if nfa.is_none() && nfa_hash == 0 {
                    return Err(ProtoError::Malformed(
                        "shard_build names neither an nfa nor its hash".into(),
                    ));
                }
                if rules.is_none() && block_hash == 0 {
                    return Err(ProtoError::Malformed(
                        "shard_build names neither a rule block nor its hash".into(),
                    ));
                }
                Request::ShardBuild {
                    nfa,
                    rules,
                    root: num_field(&value, "root")?,
                    nfa_hash,
                    block_hash,
                    trace: trace_field(&value)?,
                }
            }
            b"stats" => Request::Stats,
            b"shutdown" => Request::Shutdown,
            _ => {
                return Err(ProtoError::Malformed(format!(
                    "unknown op '{}'",
                    String::from_utf8_lossy(&op)
                )))
            }
        };
        Ok((request, meta))
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

impl WireStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("build_us", Json::Num(self.build_us)),
            ("task_us", Json::Num(self.task_us)),
            ("matrix_bytes", Json::num(self.matrix_bytes)),
            ("results", Json::num(self.results)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireStats, ProtoError> {
        Ok(WireStats {
            cache_hit: bool_field(value, "cache_hit")?,
            build_us: field(value, "build_us")?
                .as_num()
                .ok_or_else(|| ProtoError::Malformed("build_us is not a number".into()))?,
            task_us: field(value, "task_us")?
                .as_num()
                .ok_or_else(|| ProtoError::Malformed("task_us is not a number".into()))?,
            matrix_bytes: num_field(value, "matrix_bytes")?,
            results: num_field(value, "results")?,
        })
    }
}

impl WireServiceStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("requests", Json::num(self.requests)),
            ("non_emptiness", Json::num(self.non_emptiness)),
            ("model_check", Json::num(self.model_check)),
            ("count", Json::num(self.count)),
            ("compute", Json::num(self.compute)),
            ("enumerate", Json::num(self.enumerate)),
            ("cache_hits", Json::num(self.cache_hits)),
            ("cache_misses", Json::num(self.cache_misses)),
            ("evictions", Json::num(self.evictions)),
            ("resident_bytes", Json::num(self.resident_bytes)),
            ("resident_entries", Json::num(self.resident_entries)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireServiceStats, ProtoError> {
        Ok(WireServiceStats {
            requests: num_field(value, "requests")?,
            non_emptiness: num_field(value, "non_emptiness")?,
            model_check: num_field(value, "model_check")?,
            count: num_field(value, "count")?,
            compute: num_field(value, "compute")?,
            enumerate: num_field(value, "enumerate")?,
            cache_hits: num_field(value, "cache_hits")?,
            cache_misses: num_field(value, "cache_misses")?,
            evictions: num_field(value, "evictions")?,
            resident_bytes: num_field(value, "resident_bytes")?,
            resident_entries: num_field(value, "resident_entries")?,
        })
    }
}

impl WireServerStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("connections", Json::num(self.connections)),
            ("frames", Json::num(self.frames)),
            ("busy_rejections", Json::num(self.busy_rejections)),
            ("malformed_frames", Json::num(self.malformed_frames)),
            ("oversized_frames", Json::num(self.oversized_frames)),
            ("pages_streamed", Json::num(self.pages_streamed)),
            ("inflight", Json::num(self.inflight)),
            ("quota_rejections", Json::num(self.quota_rejections)),
            ("remote_fallbacks", Json::num(self.remote_fallbacks)),
            ("remote_hedges", Json::num(self.remote_hedges)),
            ("reshards", Json::num(self.reshards)),
            ("block_cache_hits", Json::num(self.block_cache_hits)),
            ("block_cache_misses", Json::num(self.block_cache_misses)),
            (
                "block_cache_evictions",
                Json::num(self.block_cache_evictions),
            ),
            ("block_cache_bytes", Json::num(self.block_cache_bytes)),
            ("queue_depth_cheap", Json::num(self.queue_depth_cheap)),
            (
                "queue_depth_expensive",
                Json::num(self.queue_depth_expensive),
            ),
            ("shed_expired", Json::num(self.shed_expired)),
            ("shed_overflow", Json::num(self.shed_overflow)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireServerStats, ProtoError> {
        // Counters added after v1 default to zero when absent so stats
        // frames from older servers still decode.
        let optional = |key: &str| -> Result<u64, ProtoError> {
            match value.get(key) {
                None => Ok(0),
                Some(v) => number(v, key),
            }
        };
        Ok(WireServerStats {
            connections: num_field(value, "connections")?,
            frames: num_field(value, "frames")?,
            busy_rejections: num_field(value, "busy_rejections")?,
            malformed_frames: num_field(value, "malformed_frames")?,
            oversized_frames: num_field(value, "oversized_frames")?,
            pages_streamed: num_field(value, "pages_streamed")?,
            inflight: num_field(value, "inflight")?,
            quota_rejections: optional("quota_rejections")?,
            remote_fallbacks: optional("remote_fallbacks")?,
            remote_hedges: optional("remote_hedges")?,
            reshards: optional("reshards")?,
            block_cache_hits: optional("block_cache_hits")?,
            block_cache_misses: optional("block_cache_misses")?,
            block_cache_evictions: optional("block_cache_evictions")?,
            block_cache_bytes: optional("block_cache_bytes")?,
            queue_depth_cheap: optional("queue_depth_cheap")?,
            queue_depth_expensive: optional("queue_depth_expensive")?,
            shed_expired: optional("shed_expired")?,
            shed_overflow: optional("shed_overflow")?,
        })
    }
}

impl Response {
    /// Encodes the response as one canonical frame (no trailing newline)
    /// with no request id — the lock-step (v2 and earlier) shape.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_framed(0)
    }

    /// Encodes the response, echoing a pipelined request's id as the
    /// leading `"rid"` key.  `id == 0` emits no key at all, so
    /// `encode_framed(0)` is byte-identical to [`encode`] and idless
    /// responses stay byte-identical to what a v2 server sends.
    ///
    /// [`encode`]: Response::encode
    pub fn encode_framed(&self, id: u64) -> Vec<u8> {
        let value = self.frame_json();
        if id == 0 {
            return value.to_bytes();
        }
        match value {
            Json::Obj(mut pairs) => {
                pairs.insert(0, ("rid".to_string(), Json::num(id)));
                Json::Obj(pairs).to_bytes()
            }
            other => other.to_bytes(),
        }
    }

    /// The response as one canonical JSON object (no envelope).
    fn frame_json(&self) -> Json {
        match self {
            Response::Pong { proto } => {
                obj(vec![("ok", Json::Bool(true)), ("proto", Json::num(*proto))])
            }
            Response::QueryAdded { id } => {
                obj(vec![("ok", Json::Bool(true)), ("query", Json::num(*id))])
            }
            Response::DocAdded { id, shards, len } => obj(vec![
                ("ok", Json::Bool(true)),
                ("doc", Json::num(*id)),
                ("shards", Json::num(*shards)),
                ("len", Json::num(*len)),
            ]),
            Response::NonEmpty {
                value,
                stats,
                trace,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("non_empty", Json::Bool(*value)),
                    ("stats", stats.to_json()),
                ];
                push_response_trace(&mut pairs, trace);
                obj(pairs)
            }
            Response::Checked {
                value,
                stats,
                trace,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("checked", Json::Bool(*value)),
                    ("stats", stats.to_json()),
                ];
                push_response_trace(&mut pairs, trace);
                obj(pairs)
            }
            Response::Counted {
                value,
                stats,
                trace,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("count", Json::Num(*value)),
                    ("stats", stats.to_json()),
                ];
                push_response_trace(&mut pairs, trace);
                obj(pairs)
            }
            Response::Tuples {
                tuples,
                stats,
                trace,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("tuples", tuples_to_json(tuples)),
                    ("stats", stats.to_json()),
                ];
                push_response_trace(&mut pairs, trace);
                obj(pairs)
            }
            Response::Page { tuples } => obj(vec![("page", tuples_to_json(tuples))]),
            Response::StreamEnd {
                streamed,
                stats,
                trace,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("streamed", Json::num(*streamed)),
                    ("stats", stats.to_json()),
                ];
                push_response_trace(&mut pairs, trace);
                obj(pairs)
            }
            Response::DocRemoved { id } => {
                obj(vec![("ok", Json::Bool(true)), ("removed", Json::num(*id))])
            }
            Response::ShardBuilt {
                q,
                rows,
                elapsed_us,
                spans,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("q", Json::num(*q)),
                    ("planes", planes_to_json(rows)),
                    ("elapsed_us", Json::num(*elapsed_us)),
                ];
                if !spans.is_empty() {
                    pairs.push(("trace", spans_to_json(spans)));
                }
                obj(pairs)
            }
            Response::NeedBlocks {
                need_nfa,
                need_block,
            } => {
                let mut need = Vec::new();
                if *need_nfa {
                    need.push(Json::str("nfa"));
                }
                if *need_block {
                    need.push(Json::str("block"));
                }
                obj(vec![("ok", Json::Bool(true)), ("need", Json::Arr(need))])
            }
            Response::TenantOk { id, created } => obj(vec![
                ("ok", Json::Bool(true)),
                ("tenant", Json::num(*id)),
                ("created", Json::Bool(*created)),
            ]),
            Response::Stats {
                service,
                server,
                tenants,
                store,
                obs,
            } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("service", service.to_json()),
                    ("server", server.to_json()),
                    (
                        "tenants",
                        Json::Arr(tenants.iter().map(WireTenantStats::to_json).collect()),
                    ),
                ];
                if let Some(store) = store {
                    pairs.push(("store", store.to_json()));
                }
                if let Some(obs) = obs {
                    pairs.push(("obs", obs.to_json()));
                }
                obj(pairs)
            }
            Response::ShuttingDown => obj(vec![
                ("ok", Json::Bool(true)),
                ("shutting_down", Json::Bool(true)),
            ]),
            Response::Error { code, detail } => obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(code.as_str())),
                ("detail", Json::str(detail)),
            ]),
        }
    }

    /// Decodes one response frame, discarding any `"rid"` envelope.
    pub fn decode(line: &[u8]) -> Result<Response, ProtoError> {
        Response::decode_framed(line).map(|(_, response)| response)
    }

    /// Decodes one response frame together with the request id it echoes
    /// (`0` for lock-step responses, which carry no `"rid"` key).
    pub fn decode_framed(line: &[u8]) -> Result<(u64, Response), ProtoError> {
        let value = Json::parse(line)?;
        let id = match value.get("rid") {
            None => 0,
            Some(id) => number(id, "request id")?,
        };
        Ok((id, Response::decode_value(&value)?))
    }

    /// The payload-key dispatch shared by both decode entry points.
    fn decode_value(value: &Json) -> Result<Response, ProtoError> {
        if let Some(page) = value.get("page") {
            return Ok(Response::Page {
                tuples: tuples_from_json(page)?,
            });
        }
        if !bool_field(value, "ok")? {
            let code_bytes = str_field(value, "error")?;
            let code = ErrorCode::parse(&code_bytes).ok_or_else(|| {
                ProtoError::Malformed(format!(
                    "unknown error code '{}'",
                    String::from_utf8_lossy(&code_bytes)
                ))
            })?;
            return Ok(Response::Error {
                code,
                detail: String::from_utf8_lossy(&str_field(value, "detail")?).into_owned(),
            });
        }
        if let Some(proto) = value.get("proto") {
            return Ok(Response::Pong {
                proto: number(proto, "proto")?,
            });
        }
        if let Some(id) = value.get("query") {
            return Ok(Response::QueryAdded {
                id: number(id, "query")?,
            });
        }
        if let Some(id) = value.get("doc") {
            return Ok(Response::DocAdded {
                id: number(id, "doc")?,
                shards: num_field(value, "shards")?,
                len: num_field(value, "len")?,
            });
        }
        if let Some(flag) = value.get("non_empty") {
            return Ok(Response::NonEmpty {
                value: flag
                    .as_bool()
                    .ok_or_else(|| ProtoError::Malformed("non_empty is not a bool".into()))?,
                stats: WireStats::from_json(field(value, "stats")?)?,
                trace: response_trace(value)?,
            });
        }
        if let Some(flag) = value.get("checked") {
            return Ok(Response::Checked {
                value: flag
                    .as_bool()
                    .ok_or_else(|| ProtoError::Malformed("checked is not a bool".into()))?,
                stats: WireStats::from_json(field(value, "stats")?)?,
                trace: response_trace(value)?,
            });
        }
        if let Some(count) = value.get("count") {
            return Ok(Response::Counted {
                value: count
                    .as_num()
                    .ok_or_else(|| ProtoError::Malformed("count is not a number".into()))?,
                stats: WireStats::from_json(field(value, "stats")?)?,
                trace: response_trace(value)?,
            });
        }
        if let Some(tuples) = value.get("tuples") {
            return Ok(Response::Tuples {
                tuples: tuples_from_json(tuples)?,
                stats: WireStats::from_json(field(value, "stats")?)?,
                trace: response_trace(value)?,
            });
        }
        if let Some(streamed) = value.get("streamed") {
            return Ok(Response::StreamEnd {
                streamed: number(streamed, "streamed")?,
                stats: WireStats::from_json(field(value, "stats")?)?,
                trace: response_trace(value)?,
            });
        }
        if let Some(id) = value.get("removed") {
            return Ok(Response::DocRemoved {
                id: number(id, "removed")?,
            });
        }
        if let Some(need) = value.get("need") {
            let names = need
                .as_arr()
                .ok_or_else(|| ProtoError::Malformed("need is not an array".into()))?;
            let (mut need_nfa, mut need_block) = (false, false);
            for name in names {
                match name.as_str() {
                    Some(b"nfa") => need_nfa = true,
                    Some(b"block") => need_block = true,
                    _ => {
                        return Err(ProtoError::Malformed(
                            "need entry is neither 'nfa' nor 'block'".into(),
                        ))
                    }
                }
            }
            return Ok(Response::NeedBlocks {
                need_nfa,
                need_block,
            });
        }
        if let Some(planes) = value.get("planes") {
            let q = num_field(value, "q")?;
            return Ok(Response::ShardBuilt {
                q,
                rows: planes_from_json(planes, q)?,
                elapsed_us: num_field(value, "elapsed_us")?,
                spans: response_trace(value)?.unwrap_or_default(),
            });
        }
        if let Some(rows) = value.get("rows") {
            // v1 workers answer one byte per entry; accept their shape so a
            // v2 coordinator interoperates during a rolling upgrade.
            let q = num_field(value, "q")?;
            return Ok(Response::ShardBuilt {
                q,
                rows: legacy_rows_from_json(rows, q)?,
                elapsed_us: num_field(value, "elapsed_us")?,
                spans: Vec::new(),
            });
        }
        if let Some(id) = value.get("tenant") {
            return Ok(Response::TenantOk {
                id: u32::try_from(number(id, "tenant")?)
                    .map_err(|_| ProtoError::Malformed("tenant id out of range".into()))?,
                created: bool_field(value, "created")?,
            });
        }
        if let Some(service) = value.get("service") {
            // `tenants` and `store` are absent in frames from older
            // servers; decode them leniently.
            let tenants = match value.get("tenants") {
                None => Vec::new(),
                Some(list) => list
                    .as_arr()
                    .ok_or_else(|| ProtoError::Malformed("tenants is not an array".into()))?
                    .iter()
                    .map(WireTenantStats::from_json)
                    .collect::<Result<_, _>>()?,
            };
            let store = match value.get("store") {
                None => None,
                Some(store) => Some(WireStoreStats::from_json(store)?),
            };
            let obs = match value.get("obs") {
                None => None,
                Some(obs) => Some(WireObsStats::from_json(obs)?),
            };
            return Ok(Response::Stats {
                service: WireServiceStats::from_json(service)?,
                server: WireServerStats::from_json(field(value, "server")?)?,
                tenants,
                store,
                obs,
            });
        }
        if value.get("shutting_down").is_some() {
            return Ok(Response::ShuttingDown);
        }
        Err(ProtoError::Malformed(
            "response carries no recognised payload key".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64) -> Span {
        Span::new(start, end).unwrap()
    }

    fn sample_tuple() -> SpanTuple {
        SpanTuple::from_assignment(vec![Some(span(1, 3)), None, Some(span(4, 4))])
    }

    fn sample_stats() -> WireStats {
        WireStats {
            cache_hit: true,
            build_us: 0,
            task_us: 42,
            matrix_bytes: 4096,
            results: 7,
        }
    }

    fn sample_wire_nfa() -> WireNfa {
        WireNfa {
            states: 3,
            start: 0,
            accepting: vec![2],
            arcs: vec![
                WireArc {
                    from: 0,
                    label: WireLabel::Byte(b'a'),
                    to: 1,
                },
                WireArc {
                    from: 1,
                    label: WireLabel::Markers(0b101),
                    to: 1,
                },
                WireArc {
                    from: 1,
                    label: WireLabel::End,
                    to: 2,
                },
                WireArc {
                    from: 0,
                    label: WireLabel::Epsilon,
                    to: 2,
                },
            ],
        }
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::Ping,
            Request::AddQuery {
                pattern: ".*x{ab}.*".into(),
                alphabet: b"ab".to_vec(),
            },
            Request::AddDoc {
                tenant: 0,
                text: (0u16..=255).map(|b| b as u8).collect(),
            },
            Request::AddDoc {
                tenant: 7,
                text: b"tenant-owned".to_vec(),
            },
            Request::AddDocSharded {
                tenant: 0,
                k: 0,
                text: b"abababab".to_vec(),
            },
            Request::AddDocSharded {
                tenant: 3,
                k: 4,
                text: b"abababab".to_vec(),
            },
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 3,
                doc: 5,
                task: WireTask::NonEmptiness,
            },
            Request::Task {
                trace: 0,
                tenant: 9,
                query: 0,
                doc: 0,
                task: WireTask::ModelCheck(sample_tuple()),
            },
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 1,
                doc: 2,
                task: WireTask::Count,
            },
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 1,
                doc: 2,
                task: WireTask::Compute { limit: None },
            },
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 1,
                doc: 2,
                task: WireTask::Compute { limit: Some(10) },
            },
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 1,
                doc: 2,
                task: WireTask::Enumerate {
                    skip: 5,
                    limit: Some(30),
                },
            },
            Request::RemoveDoc { tenant: 0, doc: 3 },
            Request::RemoveDoc { tenant: 7, doc: 0 },
            Request::TenantCreate {
                spec: spanner_store::TenantSpec {
                    id: 7,
                    name: "acme".into(),
                    max_docs: 10,
                    max_corpus_bytes: 1 << 20,
                    cache_share: 4096,
                    admission_weight: 3,
                },
            },
            Request::TenantUpdate {
                spec: spanner_store::TenantSpec::default_tenant(),
            },
            Request::ShardBuild {
                trace: 0,
                nfa: Some(sample_wire_nfa()),
                rules: Some(vec![
                    NfRule::Leaf(EByte::Byte(b'a')),
                    NfRule::Leaf(EByte::Byte(b'b')),
                    NfRule::Pair(NonTerminal(0), NonTerminal(1)),
                    NfRule::Leaf(EByte::End),
                    NfRule::Pair(NonTerminal(2), NonTerminal(3)),
                ]),
                root: 4,
                nfa_hash: 0,
                block_hash: 0,
            },
            // A fully negotiated warm frame: both halves replaced by their
            // content hashes.
            Request::ShardBuild {
                trace: 0,
                nfa: None,
                rules: None,
                root: 4,
                nfa_hash: 0xdead_beef_cafe_f00d,
                block_hash: 0x0123_4567_89ab_cdef,
            },
            // A half-warm frame (cached automaton, fresh block) as produced
            // when a new document meets an already-shipped query.
            Request::ShardBuild {
                trace: 0,
                nfa: None,
                rules: Some(vec![NfRule::Leaf(EByte::Byte(b'a'))]),
                root: 0,
                nfa_hash: 7,
                block_hash: 9,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let encoded = request.encode();
            let decoded = Request::decode(&encoded).unwrap();
            assert_eq!(decoded, request);
            // Canonical: re-encoding the decoded frame is byte-identical.
            assert_eq!(decoded.encode(), encoded);
            // Frames never contain a newline (they are the framing).
            assert!(!encoded.contains(&b'\n'));
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            Response::Pong { proto: 1 },
            Response::QueryAdded { id: 9 },
            Response::DocAdded {
                id: 2,
                shards: 4,
                len: 1000,
            },
            Response::NonEmpty {
                trace: None,
                value: true,
                stats: sample_stats(),
            },
            Response::Checked {
                trace: None,
                value: false,
                stats: sample_stats(),
            },
            Response::Counted {
                trace: None,
                value: u128::MAX,
                stats: sample_stats(),
            },
            Response::Tuples {
                trace: None,
                tuples: vec![sample_tuple(), SpanTuple::empty(2)],
                stats: sample_stats(),
            },
            Response::Page {
                tuples: vec![sample_tuple()],
            },
            Response::StreamEnd {
                trace: None,
                streamed: 100,
                stats: sample_stats(),
            },
            Response::DocRemoved { id: 5 },
            Response::NeedBlocks {
                need_nfa: true,
                need_block: false,
            },
            Response::NeedBlocks {
                need_nfa: false,
                need_block: true,
            },
            Response::NeedBlocks {
                need_nfa: true,
                need_block: true,
            },
            Response::ShardBuilt {
                q: 2,
                spans: Vec::new(),
                rows: vec![
                    RMatrix::from_entries(
                        2,
                        &[REntry::Bot, REntry::Empty, REntry::NonEmpty, REntry::Bot],
                    ),
                    RMatrix::from_entries(2, &[REntry::Empty; 4]),
                ],
                elapsed_us: 1234,
            },
            // A q crossing the 64-column word boundary exercises the
            // bitplane packing across padded rows.
            Response::ShardBuilt {
                q: 65,
                spans: Vec::new(),
                rows: vec![RMatrix::from_entries(
                    65,
                    &(0..65usize * 65)
                        .map(|i| match i % 3 {
                            0 => REntry::Bot,
                            1 => REntry::Empty,
                            _ => REntry::NonEmpty,
                        })
                        .collect::<Vec<_>>(),
                )],
                elapsed_us: 7,
            },
            Response::TenantOk {
                id: 7,
                created: true,
            },
            Response::Stats {
                obs: None,
                service: WireServiceStats {
                    requests: 11,
                    count: 4,
                    ..Default::default()
                },
                server: WireServerStats {
                    connections: 3,
                    busy_rejections: 1,
                    remote_fallbacks: 2,
                    ..Default::default()
                },
                tenants: vec![
                    WireTenantStats {
                        id: 0,
                        name: "default".into(),
                        docs: 4,
                        corpus_bytes: 4096,
                        admission_weight: 1,
                        ..Default::default()
                    },
                    WireTenantStats {
                        id: 7,
                        name: "acme".into(),
                        max_docs: 10,
                        cache_share: 1 << 16,
                        cache_resident: 900,
                        admission_weight: 3,
                        quota_rejections: 2,
                        ..Default::default()
                    },
                ],
                store: None,
            },
            Response::Stats {
                obs: None,
                service: WireServiceStats::default(),
                server: WireServerStats::default(),
                tenants: vec![WireTenantStats::default()],
                store: Some(WireStoreStats {
                    log_records: 12,
                    log_bytes: 4096,
                    last_seq: 40,
                    snapshot_seq: 28,
                    snapshot_age_secs: Some(17),
                    snapshots: 3,
                    snapshots_on_cadence: 2,
                    snapshots_on_size: 1,
                }),
            },
            Response::Stats {
                obs: None,
                service: WireServiceStats::default(),
                server: WireServerStats::default(),
                tenants: Vec::new(),
                store: Some(WireStoreStats {
                    snapshot_age_secs: None,
                    ..Default::default()
                }),
            },
            Response::ShuttingDown,
        ];
        for response in responses {
            let encoded = response.encode();
            let decoded = Response::decode(&encoded).unwrap();
            assert_eq!(decoded, response);
            assert_eq!(decoded.encode(), encoded);
            assert!(!encoded.contains(&b'\n'));
        }
        for code in [
            ErrorCode::Busy,
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::Version,
            ErrorCode::UnknownId,
            ErrorCode::Eval,
            ErrorCode::Unsupported,
            ErrorCode::ShuttingDown,
            ErrorCode::Quota,
            ErrorCode::Expired,
        ] {
            let response = Response::Error {
                code,
                detail: format!("detail for {code}"),
            };
            assert_eq!(Response::decode(&response.encode()).unwrap(), response);
        }
    }

    #[test]
    fn default_tenant_frames_are_byte_identical_to_pre_tenancy_frames() {
        // A v2 client that has never heard of tenants emits no "t" field;
        // those exact bytes must decode to tenant 0, and tenant-0 frames
        // must encode back to those exact bytes (no "t" key anywhere).
        let legacy: &[u8] = b"{\"v\":2,\"op\":\"remove_doc\",\"doc\":3}";
        assert_eq!(
            Request::decode(legacy).unwrap(),
            Request::RemoveDoc { tenant: 0, doc: 3 }
        );
        for request in [
            Request::AddDoc {
                tenant: 0,
                text: b"x".to_vec(),
            },
            Request::AddDocSharded {
                tenant: 0,
                k: 2,
                text: b"x".to_vec(),
            },
            Request::RemoveDoc { tenant: 0, doc: 3 },
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 1,
                doc: 2,
                task: WireTask::Count,
            },
        ] {
            let encoded = request.encode();
            assert!(
                !String::from_utf8_lossy(&encoded).contains("\"t\""),
                "{}",
                String::from_utf8_lossy(&encoded)
            );
        }
        // Non-default tenants round-trip through the "t" field.
        let tenated = Request::RemoveDoc { tenant: 5, doc: 3 }.encode();
        assert!(String::from_utf8_lossy(&tenated).contains("\"t\":5"));
    }

    fn sample_spans() -> Vec<SpanRec> {
        vec![
            SpanRec {
                name: "admit".into(),
                start_us: 0,
                dur_us: 12,
                parent: None,
                attrs: vec![("tenant".into(), "0".into())],
            },
            SpanRec {
                name: "task_exec".into(),
                start_us: 15,
                dur_us: 40,
                parent: Some(0),
                attrs: Vec::new(),
            },
        ]
    }

    /// Pre-trimmed (no trailing zero buckets): the canonical wire form.
    fn sample_hist() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0, 2, 1],
            count: 3,
            sum: 1234,
        }
    }

    #[test]
    fn traced_frames_round_trip() {
        let frames = vec![
            Request::Task {
                tenant: 0,
                trace: 0x7_0000_002a,
                query: 1,
                doc: 2,
                task: WireTask::Count,
            },
            Request::ShardBuild {
                trace: 99,
                nfa: None,
                rules: None,
                root: 4,
                nfa_hash: 7,
                block_hash: 9,
            },
        ];
        for request in frames {
            let encoded = request.encode();
            let decoded = Request::decode(&encoded).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(decoded.encode(), encoded);
        }
        let responses = vec![
            Response::NonEmpty {
                value: true,
                stats: sample_stats(),
                trace: Some(sample_spans()),
            },
            Response::StreamEnd {
                streamed: 4,
                stats: sample_stats(),
                trace: Some(sample_spans()),
            },
            // An attribute-free single-span tree and an empty tree both
            // survive the optional-key discipline.
            Response::Counted {
                value: 1,
                stats: sample_stats(),
                trace: Some(vec![SpanRec {
                    name: "task_exec".into(),
                    start_us: 3,
                    dur_us: 5,
                    parent: None,
                    attrs: Vec::new(),
                }]),
            },
            Response::Tuples {
                tuples: vec![sample_tuple()],
                stats: sample_stats(),
                trace: Some(Vec::new()),
            },
            Response::ShardBuilt {
                q: 2,
                rows: vec![RMatrix::from_entries(2, &[REntry::Empty; 4])],
                elapsed_us: 11,
                spans: sample_spans(),
            },
            Response::Stats {
                obs: Some(WireObsStats {
                    kinds: vec![sample_hist(); Task::KIND_NAMES.len()],
                    tenants: vec![(0, sample_hist()), (7, HistSnapshot::default())],
                    shard_pass: sample_hist(),
                    hedge_budget_us: 4500,
                    hedge_samples: 17,
                    compactions: 3,
                    compaction_last_us: 800,
                    compaction_total_us: 2100,
                }),
                service: WireServiceStats::default(),
                server: WireServerStats::default(),
                tenants: Vec::new(),
                store: None,
            },
        ];
        for response in responses {
            let encoded = response.encode();
            let decoded = Response::decode(&encoded).unwrap();
            assert_eq!(decoded, response);
            assert_eq!(decoded.encode(), encoded);
        }
    }

    #[test]
    fn traceless_frames_are_byte_identical_to_pre_tracing_frames() {
        // A client that has never heard of tracing emits no "tr" field;
        // those exact bytes must decode to trace 0, and trace-0 frames
        // must encode back to those exact bytes (modulo the version
        // digit: a v3 server re-encodes at v3, with no other change).
        let legacy: &[u8] = b"{\"v\":2,\"op\":\"task\",\"task\":\"count\",\"query\":1,\"doc\":2}";
        let decoded = Request::decode(legacy).unwrap();
        assert_eq!(
            decoded,
            Request::Task {
                tenant: 0,
                trace: 0,
                query: 1,
                doc: 2,
                task: WireTask::Count,
            }
        );
        let modern: &[u8] = b"{\"v\":3,\"op\":\"task\",\"task\":\"count\",\"query\":1,\"doc\":2}";
        assert_eq!(decoded.encode(), modern);
        // Untraced responses carry no "trace"/"spans"/"obs" keys at all.
        for (response, forbidden) in [
            (
                Response::Counted {
                    value: 9,
                    stats: sample_stats(),
                    trace: None,
                },
                "\"trace\"",
            ),
            (
                Response::ShardBuilt {
                    q: 2,
                    rows: vec![RMatrix::from_entries(2, &[REntry::Empty; 4])],
                    elapsed_us: 11,
                    spans: Vec::new(),
                },
                "\"spans\"",
            ),
            (
                Response::Stats {
                    obs: None,
                    service: WireServiceStats::default(),
                    server: WireServerStats::default(),
                    tenants: Vec::new(),
                    store: None,
                },
                "\"obs\"",
            ),
        ] {
            let text = String::from_utf8(response.encode()).unwrap();
            assert!(!text.contains(forbidden), "{text}");
            assert_eq!(Response::decode(text.as_bytes()).unwrap(), response);
        }
        let traceless = Request::ShardBuild {
            trace: 0,
            nfa: None,
            rules: None,
            root: 4,
            nfa_hash: 7,
            block_hash: 9,
        };
        let text = String::from_utf8(traceless.encode()).unwrap();
        assert!(!text.contains("\"tr\""), "{text}");
    }

    #[test]
    fn version_mismatch_is_a_distinct_error() {
        let mut frame = Request::Ping.encode();
        // Rewrite "v":3 into "v":4.
        let pos = frame.windows(4).position(|w| w == b"\"v\":").unwrap() + 4;
        frame[pos] = b'4';
        assert_eq!(Request::decode(&frame), Err(ProtoError::Version(4)));
        // Every prior version is still admitted.
        frame[pos] = b'2';
        assert_eq!(Request::decode(&frame), Ok(Request::Ping));
        frame[pos] = b'1';
        assert_eq!(Request::decode(&frame), Ok(Request::Ping));
    }

    #[test]
    fn framed_requests_round_trip_rid_and_deadline() {
        let request = Request::Task {
            trace: 0,
            tenant: 4,
            query: 1,
            doc: 2,
            task: WireTask::ModelCheck(sample_tuple()),
        };
        for meta in [
            FrameMeta {
                id: 7,
                deadline_us: 0,
            },
            FrameMeta {
                id: u64::MAX,
                deadline_us: 125_000,
            },
            FrameMeta {
                id: 1,
                deadline_us: 1,
            },
        ] {
            let encoded = request.encode_with(meta);
            let (decoded, got) = Request::decode_framed(&encoded).unwrap();
            assert_eq!(decoded, request);
            assert_eq!(got, meta);
            // Canonical: re-encoding with the decoded meta is the identity.
            assert_eq!(decoded.encode_with(got), encoded);
        }
        // The envelope keys ride ahead of the op payload.
        let text = String::from_utf8(request.encode_with(FrameMeta {
            id: 9,
            deadline_us: 50,
        }))
        .unwrap();
        assert!(text.starts_with("{\"v\":3,\"rid\":9,\"dl\":50,"), "{text}");
    }

    #[test]
    fn idless_frames_are_byte_identical_to_lockstep_frames() {
        // A client that never pipelines emits no "rid"/"dl" keys: the
        // framed encoder with FrameMeta::NONE is byte-for-byte the plain
        // v2-era lock-step encoder (modulo the version digit, pinned
        // elsewhere).
        for request in [
            Request::Ping,
            Request::Task {
                trace: 0,
                tenant: 0,
                query: 1,
                doc: 2,
                task: WireTask::Count,
            },
            Request::Stats,
        ] {
            let plain = request.encode();
            assert_eq!(request.encode_with(FrameMeta::NONE), plain);
            let text = String::from_utf8(plain).unwrap();
            assert!(!text.contains("\"rid\""), "{text}");
            assert!(!text.contains("\"dl\""), "{text}");
        }
        let (_, meta) = Request::decode_framed(&Request::Ping.encode()).unwrap();
        assert_eq!(meta, FrameMeta::NONE);
    }

    #[test]
    fn framed_responses_carry_the_request_id() {
        let responses = vec![
            Response::Pong { proto: 3 },
            Response::Counted {
                trace: None,
                value: 40,
                stats: sample_stats(),
            },
            // Stream pages multiplex too: each page names its request.
            Response::Page {
                tuples: vec![sample_tuple()],
            },
            Response::StreamEnd {
                trace: None,
                streamed: 3,
                stats: sample_stats(),
            },
            Response::Error {
                code: ErrorCode::Expired,
                detail: "deadline elapsed in queue".into(),
            },
        ];
        for response in responses {
            for id in [1u64, 42, u64::MAX] {
                let encoded = response.encode_framed(id);
                let (got_id, decoded) = Response::decode_framed(&encoded).unwrap();
                assert_eq!(got_id, id);
                assert_eq!(decoded, response);
                assert_eq!(decoded.encode_framed(got_id), encoded);
                // The id is the leading key so demuxers can route cheaply.
                let text = String::from_utf8(encoded).unwrap();
                assert!(text.starts_with(&format!("{{\"rid\":{id},")), "{text}");
            }
            // id 0 is the lock-step sentinel: no "rid" key at all, and the
            // bytes are identical to the unframed encoder.
            let bare = response.encode_framed(0);
            assert_eq!(bare, response.encode());
            assert!(!String::from_utf8_lossy(&bare).contains("\"rid\""));
            let (got_id, decoded) = Response::decode_framed(&bare).unwrap();
            assert_eq!(got_id, 0);
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn v2_client_frames_still_decode_against_v3() {
        // Exact byte strings a PR-9-era v2 client puts on the wire: a v3
        // server must decode them unchanged (rolling upgrades).
        let pins: [(&[u8], Request); 3] = [
            (b"{\"v\":2,\"op\":\"ping\"}", Request::Ping),
            (
                b"{\"v\":2,\"op\":\"task\",\"task\":\"non_emptiness\",\"query\":4,\"doc\":9}",
                Request::Task {
                    trace: 0,
                    tenant: 0,
                    query: 4,
                    doc: 9,
                    task: WireTask::NonEmptiness,
                },
            ),
            (
                b"{\"v\":2,\"op\":\"task\",\"t\":3,\"tr\":77,\"task\":\"count\",\"query\":1,\"doc\":2}",
                Request::Task {
                    trace: 77,
                    tenant: 3,
                    query: 1,
                    doc: 2,
                    task: WireTask::Count,
                },
            ),
        ];
        for (bytes, want) in pins {
            let (decoded, meta) = Request::decode_framed(bytes).unwrap();
            assert_eq!(decoded, want, "{}", String::from_utf8_lossy(bytes));
            // v2 clients never pipeline: the envelope is always empty, so
            // the server answers on the lock-step path with unframed
            // responses the old client can parse.
            assert_eq!(meta, FrameMeta::NONE);
        }
    }

    #[test]
    fn malformed_frames_are_rejected_with_detail() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"v\":1}",
            b"{\"v\":1,\"op\":\"nope\"}",
            b"{\"v\":1,\"op\":\"task\",\"task\":\"count\",\"query\":0}",
            b"{\"v\":1,\"op\":\"task\",\"task\":\"model_check\",\"query\":0,\"doc\":0,\"tuple\":[[3,1]]}",
        ] {
            assert!(
                matches!(Request::decode(bad), Err(ProtoError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn wire_nfa_round_trips_through_a_real_automaton() {
        // A prepared query's end-transformed automaton survives the wire
        // codec arc-for-arc: rebuilding it and re-encoding is the identity.
        use spanner::regex;
        use spanner_slp_core::engine::PreparedQuery;
        let m = regex::compile(".*x{a+}y{b+}.*", b"ab").unwrap();
        let query = PreparedQuery::determinized(&m);
        let wire = WireNfa::from_nfa(query.nfa());
        assert_eq!(wire.states as usize, query.nfa().num_states());
        let rebuilt = wire.to_nfa().unwrap();
        assert_eq!(rebuilt.num_states(), query.nfa().num_states());
        assert_eq!(rebuilt.start(), query.nfa().start());
        assert_eq!(rebuilt.accepting_states(), query.nfa().accepting_states());
        assert_eq!(WireNfa::from_nfa(&rebuilt), wire);
    }

    #[test]
    fn wire_nfa_rejects_out_of_range_states() {
        for bad in [
            WireNfa {
                states: 0,
                ..Default::default()
            },
            // A tiny frame claiming an astronomic state count must be
            // rejected before the O(states) allocation, not after.
            WireNfa {
                states: WireNfa::MAX_STATES + 1,
                ..Default::default()
            },
            WireNfa {
                states: 2,
                start: 2,
                ..Default::default()
            },
            WireNfa {
                states: 2,
                accepting: vec![5],
                ..Default::default()
            },
            WireNfa {
                states: 2,
                arcs: vec![WireArc {
                    from: 0,
                    label: WireLabel::End,
                    to: 9,
                }],
                ..Default::default()
            },
        ] {
            assert!(bad.to_nfa().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn shard_build_payloads_ship_summaries_not_matrices() {
        // The gather payload is 2 bits per three-valued entry — the full
        // marker-set matrices (and the document text) never appear, and
        // the packed planes undercut even the v1 one-byte-per-entry bound.
        let rows = vec![RMatrix::from_entries(3, &[REntry::NonEmpty; 9]); 7];
        let response = Response::ShardBuilt {
            q: 3,
            spans: Vec::new(),
            rows: rows.clone(),
            elapsed_us: 1,
        };
        let encoded = response.encode();
        // 7 rules × 2 planes × ⌈9/8⌉ bytes = 28 packed bytes → 38 base64
        // characters, well under the 63 bytes v1 needed for the entries
        // alone (plus fixed framing either way).
        assert!(encoded.len() < 63 + 64, "{}", encoded.len());
        match Response::decode(&encoded).unwrap() {
            Response::ShardBuilt { rows: decoded, .. } => assert_eq!(decoded, rows),
            other => panic!("{other:?}"),
        }
        // Mis-sized planes are rejected, not mis-chunked: chop one whole
        // base64 group (3 packed bytes) out of the payload.
        let text = String::from_utf8(encoded).unwrap();
        let value = Json::parse(text.as_bytes()).unwrap();
        let planes = value.get("planes").unwrap().as_str().unwrap();
        let truncated = &planes[..planes.len() - 4];
        let tampered = text.replace(
            std::str::from_utf8(planes).unwrap(),
            std::str::from_utf8(truncated).unwrap(),
        );
        assert!(matches!(
            Response::decode(tampered.as_bytes()),
            Err(ProtoError::Malformed(_))
        ));
        // A hostile q whose square overflows u64 is a malformed frame, not
        // an arithmetic panic.
        let hostile = format!(
            "{{\"ok\":true,\"q\":{},\"planes\":\"AA\",\"elapsed_us\":1}}",
            u64::MAX
        );
        assert!(matches!(
            Response::decode(hostile.as_bytes()),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn packed_planes_reject_invariant_violations() {
        // One rule, q = 2: plane stride ⌈4/8⌉ = 1 byte.  nonbot = 0b0001,
        // nonempty = 0b0010 puts a 1 entry where nonbot is clear.
        let bad = b64_encode(&[0b0001, 0b0010]);
        let frame = format!(
            "{{\"ok\":true,\"q\":2,\"planes\":\"{}\",\"elapsed_us\":1}}",
            String::from_utf8(bad).unwrap()
        );
        assert!(matches!(
            Response::decode(frame.as_bytes()),
            Err(ProtoError::Malformed(_))
        ));
        // Non-zero padding bits beyond q² are equally malformed: they
        // could not have come from the canonical encoder.
        let padded = b64_encode(&[0b1_0000, 0b0000]);
        let frame = format!(
            "{{\"ok\":true,\"q\":2,\"planes\":\"{}\",\"elapsed_us\":1}}",
            String::from_utf8(padded).unwrap()
        );
        assert!(matches!(
            Response::decode(frame.as_bytes()),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn legacy_v1_shard_frames_still_decode() {
        // A v1 worker's reply — one B/E/N byte per entry under the `rows`
        // key — decodes to the same matrices as the packed v2 shape.
        let legacy = b"{\"ok\":true,\"q\":2,\"rows\":\"BENBEEEE\",\"elapsed_us\":9}";
        let expected = vec![
            RMatrix::from_entries(
                2,
                &[REntry::Bot, REntry::Empty, REntry::NonEmpty, REntry::Bot],
            ),
            RMatrix::from_entries(2, &[REntry::Empty; 4]),
        ];
        match Response::decode(legacy).unwrap() {
            Response::ShardBuilt {
                q,
                rows,
                elapsed_us,
                ..
            } => {
                assert_eq!((q, elapsed_us), (2, 9));
                assert_eq!(rows, expected);
            }
            other => panic!("{other:?}"),
        }
        // Unknown entry bytes in the legacy shape are still rejected.
        let bad = b"{\"ok\":true,\"q\":2,\"rows\":\"BEXX\",\"elapsed_us\":9}";
        assert!(matches!(
            Response::decode(bad),
            Err(ProtoError::Malformed(_))
        ));
        // A v1 request carrying rules as a JSON array still decodes to the
        // same block as the packed v2 stream.
        let v2 = Request::ShardBuild {
            trace: 0,
            nfa: Some(sample_wire_nfa()),
            rules: Some(vec![
                NfRule::Leaf(EByte::Byte(b'a')),
                NfRule::Leaf(EByte::End),
                NfRule::Pair(NonTerminal(0), NonTerminal(1)),
            ]),
            root: 2,
            // A v1 frame predates the negotiation: no hash keys at all.
            nfa_hash: 0,
            block_hash: 0,
        };
        let mut legacy_req = String::from_utf8(v2.encode()).unwrap();
        let packed_rules = match Json::parse(legacy_req.as_bytes())
            .unwrap()
            .get("rules")
            .unwrap()
        {
            Json::Str(s) => format!("\"{}\"", String::from_utf8(s.clone()).unwrap()),
            other => panic!("{other:?}"),
        };
        legacy_req = legacy_req.replace(&packed_rules, "[97,\"end\",[0,1]]");
        legacy_req = legacy_req.replace("\"v\":3", "\"v\":1");
        assert_eq!(Request::decode(legacy_req.as_bytes()).unwrap(), v2);
    }

    #[test]
    fn packed_rules_round_trip_deep_blocks() {
        // Deltas in both directions (a pair may reference any local index)
        // and long leaf runs survive the varint stream.
        let mut rules: Vec<NfRule<EByte>> =
            (0..200u8).map(|b| NfRule::Leaf(EByte::Byte(b))).collect();
        rules.push(NfRule::Pair(NonTerminal(0), NonTerminal(199)));
        rules.push(NfRule::Pair(NonTerminal(200), NonTerminal(3)));
        rules.push(NfRule::Leaf(EByte::End));
        rules.push(NfRule::Pair(NonTerminal(201), NonTerminal(202)));
        let encoded = rules_to_json(&rules);
        assert_eq!(rules_from_json(&encoded).unwrap(), rules);
        // Forward references (a child above its rule) are unusual but
        // representable: the zigzag delta goes negative.
        let forward = vec![
            NfRule::Pair(NonTerminal(1), NonTerminal(2)),
            NfRule::Leaf(EByte::Byte(b'x')),
            NfRule::Leaf(EByte::End),
        ];
        let encoded = rules_to_json(&forward);
        assert_eq!(rules_from_json(&encoded).unwrap(), forward);
    }

    #[test]
    fn task_kinds_map_to_core_tasks() {
        assert_eq!(WireTask::NonEmptiness.to_task(), Task::NonEmptiness);
        assert_eq!(WireTask::Count.to_task(), Task::Count);
        assert_eq!(
            WireTask::Compute { limit: Some(5) }.to_task(),
            Task::Compute { limit: Some(5) }
        );
        assert_eq!(
            WireTask::Enumerate {
                skip: 2,
                limit: None
            }
            .to_task(),
            Task::Enumerate {
                skip: 2,
                limit: None
            }
        );
        let tuple = sample_tuple();
        assert_eq!(
            WireTask::ModelCheck(tuple.clone()).to_task(),
            Task::ModelCheck(tuple)
        );
    }
}
