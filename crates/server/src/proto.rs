//! The versioned wire format: typed request/response frames over
//! newline-delimited [`Json`] lines.
//!
//! Every frame is one line: a canonical [`Json`] object followed by `\n`.
//! Requests carry the protocol version (`"v":1`); a server speaking a
//! different version answers with the structured error code
//! [`ErrorCode::Version`] instead of guessing.  Responses are
//! self-describing: `"ok":true` plus a payload-specific key, `"ok":false`
//! plus an [`ErrorCode`], or a `"page"` frame inside an enumeration stream.
//!
//! The encode/decode pair is *canonical*: `decode(encode(x)) == x` for
//! every [`Request`] and [`Response`], and `encode(decode(bytes)) == bytes`
//! for frames produced by this module — pinned by the round-trip tests at
//! the bottom of this file.
//!
//! ## Frame inventory
//!
//! | request (`op`)      | response payload key          |
//! |---------------------|-------------------------------|
//! | `ping`              | `proto`                       |
//! | `add_query`         | `query`                       |
//! | `add_doc`           | `doc` (+ `shards`, `len`)     |
//! | `add_doc_sharded`   | `doc` (+ `shards`, `len`)     |
//! | `task` (5 kinds)    | `non_empty` / `checked` / `count` / `tuples`, or a stream of `page` frames closed by `streamed` |
//! | `stats`             | `service` + `server`          |
//! | `shutdown`          | `shutting_down`               |
//!
//! Any request can instead draw `{"ok":false,"error":<code>,"detail":…}`.

use crate::json::Json;
use spanner::{Span, SpanTuple, Variable};
use spanner_slp_core::service::{RequestStats, ServiceStats, Task};
use std::fmt;

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame is not a well-formed protocol object.
    Malformed(String),
    /// The frame is well-formed but speaks a different protocol version.
    Version(u64),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            ProtoError::Version(v) => write!(
                f,
                "protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<crate::json::JsonError> for ProtoError {
    fn from(e: crate::json::JsonError) -> Self {
        ProtoError::Malformed(e.to_string())
    }
}

/// Structured error codes — the machine-readable half of every
/// [`Response::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server is at its in-flight request cap; retry later.  The
    /// connection stays open.
    Busy,
    /// The frame did not parse; the connection stays open.
    Malformed,
    /// The frame exceeded the server's length cap; it was discarded up to
    /// the next newline and the connection stays open.
    Oversized,
    /// The request speaks a protocol version this server does not.
    Version,
    /// The request names a query or document id the server never issued.
    UnknownId,
    /// The evaluation itself failed (compile error, out-of-bounds tuple,
    /// empty document, …).
    Eval,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Version => "version",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::Eval => "eval",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &[u8]) -> Option<ErrorCode> {
        Some(match s {
            b"busy" => ErrorCode::Busy,
            b"malformed" => ErrorCode::Malformed,
            b"oversized" => ErrorCode::Oversized,
            b"version" => ErrorCode::Version,
            b"unknown_id" => ErrorCode::UnknownId,
            b"eval" => ErrorCode::Eval,
            b"shutting_down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One evaluation task as spoken on the wire — mirrors
/// [`spanner_slp_core::service::Task`] with wire-friendly field types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireTask {
    /// `⟦M⟧(D) ≠ ∅`?
    NonEmptiness,
    /// Is the tuple in `⟦M⟧(D)`?
    ModelCheck(SpanTuple),
    /// `|⟦M⟧(D)|`.
    Count,
    /// Materialise up to `limit` tuples (`None` = all).
    Compute {
        /// Maximum number of tuples to return.
        limit: Option<u64>,
    },
    /// Stream a window of the relation; the response is a page stream.
    Enumerate {
        /// Leading results to discard.
        skip: u64,
        /// Maximum number of results after skipping (`None` = all).
        limit: Option<u64>,
    },
}

impl WireTask {
    /// The wire spelling of the task kind.
    pub fn kind(&self) -> &'static str {
        match self {
            WireTask::NonEmptiness => "non_emptiness",
            WireTask::ModelCheck(_) => "model_check",
            WireTask::Count => "count",
            WireTask::Compute { .. } => "compute",
            WireTask::Enumerate { .. } => "enumerate",
        }
    }

    /// Converts to the evaluation core's [`Task`].
    pub fn to_task(&self) -> Task {
        match self {
            WireTask::NonEmptiness => Task::NonEmptiness,
            WireTask::ModelCheck(tuple) => Task::ModelCheck(tuple.clone()),
            WireTask::Count => Task::Count,
            WireTask::Compute { limit } => Task::Compute {
                limit: limit.map(|n| n as usize),
            },
            WireTask::Enumerate { skip, limit } => Task::Enumerate {
                skip: *skip as usize,
                limit: limit.map(|n| n as usize),
            },
        }
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Compile and pool a query from a variable-regex pattern.
    AddQuery {
        /// The variable-regex pattern (see `spanner::regex`).
        pattern: String,
        /// The document alphabet the pattern ranges over.
        alphabet: Vec<u8>,
    },
    /// Compress and pool a document (monolithic).
    AddDoc {
        /// The raw document bytes.
        text: Vec<u8>,
    },
    /// Compress and pool a document split into `k` shards (`k = 0` lets the
    /// server auto-tune the shard count).
    AddDocSharded {
        /// Requested shard count; `0` = auto.
        k: u64,
        /// The raw document bytes.
        text: Vec<u8>,
    },
    /// Evaluate one task over a pooled (query, document) pair.
    Task {
        /// Wire id of the pooled query.
        query: u64,
        /// Wire id of the pooled document.
        doc: u64,
        /// What to compute.
        task: WireTask,
    },
    /// Snapshot the service-wide and server-level counters.
    Stats,
    /// Begin a graceful shutdown: drain in-flight work, then exit.
    Shutdown,
}

/// Cumulative service counters as spoken on the wire (see
/// [`ServiceStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireServiceStats {
    /// Total requests served.
    pub requests: u64,
    /// Non-emptiness requests.
    pub non_emptiness: u64,
    /// Model-checking requests.
    pub model_check: u64,
    /// Counting requests.
    pub count: u64,
    /// Compute requests.
    pub compute: u64,
    /// Enumeration requests.
    pub enumerate: u64,
    /// Matrix-cache hits.
    pub cache_hits: u64,
    /// Matrix-cache misses (builds).
    pub cache_misses: u64,
    /// Matrix sets evicted under the byte budget.
    pub evictions: u64,
    /// Bytes of matrices currently resident.
    pub resident_bytes: u64,
    /// Matrix sets currently resident.
    pub resident_entries: u64,
}

impl From<&ServiceStats> for WireServiceStats {
    fn from(s: &ServiceStats) -> Self {
        WireServiceStats {
            requests: s.requests,
            non_emptiness: s.by_task.non_emptiness,
            model_check: s.by_task.model_check,
            count: s.by_task.count,
            compute: s.by_task.compute,
            enumerate: s.by_task.enumerate,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            evictions: s.evictions,
            resident_bytes: s.resident_bytes as u64,
            resident_entries: s.resident_entries as u64,
        }
    }
}

/// Server-level counters (transport concerns the service layer cannot
/// see), the other half of a [`Response::Stats`] frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames received (including rejected ones).
    pub frames: u64,
    /// Requests answered with [`ErrorCode::Busy`].
    pub busy_rejections: u64,
    /// Frames answered with [`ErrorCode::Malformed`] or
    /// [`ErrorCode::Version`].
    pub malformed_frames: u64,
    /// Frames answered with [`ErrorCode::Oversized`].
    pub oversized_frames: u64,
    /// Enumeration pages flushed to clients.
    pub pages_streamed: u64,
    /// Requests executing right now.
    pub inflight: u64,
}

/// Per-request cost statistics as spoken on the wire (see
/// [`RequestStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// `true` if the pair's matrices were already resident.
    pub cache_hit: bool,
    /// Matrix build time in microseconds (zero on a hit).
    pub build_us: u128,
    /// Task time in microseconds.
    pub task_us: u128,
    /// Bytes of the pair's matrices.
    pub matrix_bytes: u64,
    /// Tuples materialised (or streamed) into the response.
    pub results: u64,
}

impl From<&RequestStats> for WireStats {
    fn from(s: &RequestStats) -> Self {
        WireStats {
            cache_hit: s.cache_hit,
            build_us: s.matrix_build.as_micros(),
            task_us: s.task_time.as_micros(),
            matrix_bytes: s.matrix_bytes as u64,
            results: s.results,
        }
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's protocol version.
        proto: u64,
    },
    /// Answer to [`Request::AddQuery`].
    QueryAdded {
        /// Wire id for subsequent [`Request::Task`] frames.
        id: u64,
    },
    /// Answer to [`Request::AddDoc`] / [`Request::AddDocSharded`].
    DocAdded {
        /// Wire id for subsequent [`Request::Task`] frames.
        id: u64,
        /// Number of shards the document was registered with.
        shards: u64,
        /// Document length in bytes.
        len: u64,
    },
    /// Answer to [`WireTask::NonEmptiness`].
    NonEmpty {
        /// The verdict.
        value: bool,
        /// What the request cost.
        stats: WireStats,
    },
    /// Answer to [`WireTask::ModelCheck`].
    Checked {
        /// The verdict.
        value: bool,
        /// What the request cost.
        stats: WireStats,
    },
    /// Answer to [`WireTask::Count`].
    Counted {
        /// `|⟦M⟧(D)|`.
        value: u128,
        /// What the request cost.
        stats: WireStats,
    },
    /// Answer to [`WireTask::Compute`].
    Tuples {
        /// The materialised tuples.
        tuples: Vec<SpanTuple>,
        /// What the request cost.
        stats: WireStats,
    },
    /// One page of an enumeration stream, flushed as it is produced.
    Page {
        /// The page's tuples.
        tuples: Vec<SpanTuple>,
    },
    /// Terminal frame of an enumeration stream.
    StreamEnd {
        /// Total tuples streamed across the pages.
        streamed: u64,
        /// What the request cost.
        stats: WireStats,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Service-wide evaluation counters.
        service: WireServiceStats,
        /// Transport-level counters.
        server: WireServerStats,
    },
    /// Answer to [`Request::Shutdown`]: the drain has begun.
    ShuttingDown,
    /// A structured error; the connection stays open (even for
    /// [`ErrorCode::Busy`] — backpressure is never a dropped connection).
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

/// Encodes a span-tuple as `[[start,end]|null, …]`, one slot per variable.
pub fn tuple_to_json(tuple: &SpanTuple) -> Json {
    Json::Arr(
        (0..tuple.num_vars())
            .map(|v| match tuple.get(Variable(v as u8)) {
                Some(span) => Json::Arr(vec![Json::num(span.start), Json::num(span.end)]),
                None => Json::Null,
            })
            .collect(),
    )
}

/// Decodes a span-tuple from its wire form.
pub fn tuple_from_json(value: &Json) -> Result<SpanTuple, ProtoError> {
    let slots = value
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("tuple is not an array".into()))?;
    let mut assignment = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Json::Null => assignment.push(None),
            Json::Arr(pair) => {
                let [start, end] = pair.as_slice() else {
                    return Err(ProtoError::Malformed(
                        "span is not a [start,end] pair".into(),
                    ));
                };
                let (start, end) = (number(start, "span start")?, number(end, "span end")?);
                let span = Span::new(start, end)
                    .map_err(|e| ProtoError::Malformed(format!("invalid span: {e}")))?;
                assignment.push(Some(span));
            }
            _ => {
                return Err(ProtoError::Malformed(
                    "tuple slot is neither null nor a span".into(),
                ))
            }
        }
    }
    Ok(SpanTuple::from_assignment(assignment))
}

fn tuples_to_json(tuples: &[SpanTuple]) -> Json {
    Json::Arr(tuples.iter().map(tuple_to_json).collect())
}

fn tuples_from_json(value: &Json) -> Result<Vec<SpanTuple>, ProtoError> {
    value
        .as_arr()
        .ok_or_else(|| ProtoError::Malformed("tuple list is not an array".into()))?
        .iter()
        .map(tuple_from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, ProtoError> {
    obj.get(key)
        .ok_or_else(|| ProtoError::Malformed(format!("missing field '{key}'")))
}

fn number(value: &Json, what: &str) -> Result<u64, ProtoError> {
    value
        .as_u64()
        .ok_or_else(|| ProtoError::Malformed(format!("{what} is not a u64")))
}

fn num_field(obj: &Json, key: &str) -> Result<u64, ProtoError> {
    number(field(obj, key)?, key)
}

fn str_field(obj: &Json, key: &str) -> Result<Vec<u8>, ProtoError> {
    Ok(field(obj, key)?
        .as_str()
        .ok_or_else(|| ProtoError::Malformed(format!("field '{key}' is not a string")))?
        .to_vec())
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtoError> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| ProtoError::Malformed(format!("field '{key}' is not a bool")))
}

/// `null` → `None`, number → `Some`.
fn opt_num_field(obj: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match field(obj, key)? {
        Json::Null => Ok(None),
        other => Ok(Some(number(other, key)?)),
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as one canonical frame (no trailing newline).
    pub fn encode(&self) -> Vec<u8> {
        let mut pairs = vec![("v", Json::num(PROTOCOL_VERSION))];
        match self {
            Request::Ping => pairs.push(("op", Json::str("ping"))),
            Request::AddQuery { pattern, alphabet } => {
                pairs.push(("op", Json::str("add_query")));
                pairs.push(("pattern", Json::str(pattern)));
                pairs.push(("alphabet", Json::Str(alphabet.clone())));
            }
            Request::AddDoc { text } => {
                pairs.push(("op", Json::str("add_doc")));
                pairs.push(("text", Json::Str(text.clone())));
            }
            Request::AddDocSharded { k, text } => {
                pairs.push(("op", Json::str("add_doc_sharded")));
                pairs.push(("k", Json::num(*k)));
                pairs.push(("text", Json::Str(text.clone())));
            }
            Request::Task { query, doc, task } => {
                pairs.push(("op", Json::str("task")));
                pairs.push(("task", Json::str(task.kind())));
                pairs.push(("query", Json::num(*query)));
                pairs.push(("doc", Json::num(*doc)));
                match task {
                    WireTask::ModelCheck(tuple) => pairs.push(("tuple", tuple_to_json(tuple))),
                    WireTask::Compute { limit } => {
                        pairs.push(("limit", limit.map_or(Json::Null, Json::num)));
                    }
                    WireTask::Enumerate { skip, limit } => {
                        pairs.push(("skip", Json::num(*skip)));
                        pairs.push(("limit", limit.map_or(Json::Null, Json::num)));
                    }
                    WireTask::NonEmptiness | WireTask::Count => {}
                }
            }
            Request::Stats => pairs.push(("op", Json::str("stats"))),
            Request::Shutdown => pairs.push(("op", Json::str("shutdown"))),
        }
        obj(pairs).to_bytes()
    }

    /// Decodes one request frame, checking the protocol version first.
    pub fn decode(line: &[u8]) -> Result<Request, ProtoError> {
        let value = Json::parse(line)?;
        let v = num_field(&value, "v")?;
        if v != PROTOCOL_VERSION {
            return Err(ProtoError::Version(v));
        }
        let op = str_field(&value, "op")?;
        Ok(match op.as_slice() {
            b"ping" => Request::Ping,
            b"add_query" => Request::AddQuery {
                pattern: String::from_utf8(str_field(&value, "pattern")?)
                    .map_err(|_| ProtoError::Malformed("pattern is not UTF-8".into()))?,
                alphabet: str_field(&value, "alphabet")?,
            },
            b"add_doc" => Request::AddDoc {
                text: str_field(&value, "text")?,
            },
            b"add_doc_sharded" => Request::AddDocSharded {
                k: num_field(&value, "k")?,
                text: str_field(&value, "text")?,
            },
            b"task" => {
                let kind = str_field(&value, "task")?;
                let task = match kind.as_slice() {
                    b"non_emptiness" => WireTask::NonEmptiness,
                    b"model_check" => {
                        WireTask::ModelCheck(tuple_from_json(field(&value, "tuple")?)?)
                    }
                    b"count" => WireTask::Count,
                    b"compute" => WireTask::Compute {
                        limit: opt_num_field(&value, "limit")?,
                    },
                    b"enumerate" => WireTask::Enumerate {
                        skip: num_field(&value, "skip")?,
                        limit: opt_num_field(&value, "limit")?,
                    },
                    _ => {
                        return Err(ProtoError::Malformed(format!(
                            "unknown task kind '{}'",
                            String::from_utf8_lossy(&kind)
                        )))
                    }
                };
                Request::Task {
                    query: num_field(&value, "query")?,
                    doc: num_field(&value, "doc")?,
                    task,
                }
            }
            b"stats" => Request::Stats,
            b"shutdown" => Request::Shutdown,
            _ => {
                return Err(ProtoError::Malformed(format!(
                    "unknown op '{}'",
                    String::from_utf8_lossy(&op)
                )))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

impl WireStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("build_us", Json::Num(self.build_us)),
            ("task_us", Json::Num(self.task_us)),
            ("matrix_bytes", Json::num(self.matrix_bytes)),
            ("results", Json::num(self.results)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireStats, ProtoError> {
        Ok(WireStats {
            cache_hit: bool_field(value, "cache_hit")?,
            build_us: field(value, "build_us")?
                .as_num()
                .ok_or_else(|| ProtoError::Malformed("build_us is not a number".into()))?,
            task_us: field(value, "task_us")?
                .as_num()
                .ok_or_else(|| ProtoError::Malformed("task_us is not a number".into()))?,
            matrix_bytes: num_field(value, "matrix_bytes")?,
            results: num_field(value, "results")?,
        })
    }
}

impl WireServiceStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("requests", Json::num(self.requests)),
            ("non_emptiness", Json::num(self.non_emptiness)),
            ("model_check", Json::num(self.model_check)),
            ("count", Json::num(self.count)),
            ("compute", Json::num(self.compute)),
            ("enumerate", Json::num(self.enumerate)),
            ("cache_hits", Json::num(self.cache_hits)),
            ("cache_misses", Json::num(self.cache_misses)),
            ("evictions", Json::num(self.evictions)),
            ("resident_bytes", Json::num(self.resident_bytes)),
            ("resident_entries", Json::num(self.resident_entries)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireServiceStats, ProtoError> {
        Ok(WireServiceStats {
            requests: num_field(value, "requests")?,
            non_emptiness: num_field(value, "non_emptiness")?,
            model_check: num_field(value, "model_check")?,
            count: num_field(value, "count")?,
            compute: num_field(value, "compute")?,
            enumerate: num_field(value, "enumerate")?,
            cache_hits: num_field(value, "cache_hits")?,
            cache_misses: num_field(value, "cache_misses")?,
            evictions: num_field(value, "evictions")?,
            resident_bytes: num_field(value, "resident_bytes")?,
            resident_entries: num_field(value, "resident_entries")?,
        })
    }
}

impl WireServerStats {
    fn to_json(self) -> Json {
        obj(vec![
            ("connections", Json::num(self.connections)),
            ("frames", Json::num(self.frames)),
            ("busy_rejections", Json::num(self.busy_rejections)),
            ("malformed_frames", Json::num(self.malformed_frames)),
            ("oversized_frames", Json::num(self.oversized_frames)),
            ("pages_streamed", Json::num(self.pages_streamed)),
            ("inflight", Json::num(self.inflight)),
        ])
    }

    fn from_json(value: &Json) -> Result<WireServerStats, ProtoError> {
        Ok(WireServerStats {
            connections: num_field(value, "connections")?,
            frames: num_field(value, "frames")?,
            busy_rejections: num_field(value, "busy_rejections")?,
            malformed_frames: num_field(value, "malformed_frames")?,
            oversized_frames: num_field(value, "oversized_frames")?,
            pages_streamed: num_field(value, "pages_streamed")?,
            inflight: num_field(value, "inflight")?,
        })
    }
}

impl Response {
    /// Encodes the response as one canonical frame (no trailing newline).
    pub fn encode(&self) -> Vec<u8> {
        let value = match self {
            Response::Pong { proto } => {
                obj(vec![("ok", Json::Bool(true)), ("proto", Json::num(*proto))])
            }
            Response::QueryAdded { id } => {
                obj(vec![("ok", Json::Bool(true)), ("query", Json::num(*id))])
            }
            Response::DocAdded { id, shards, len } => obj(vec![
                ("ok", Json::Bool(true)),
                ("doc", Json::num(*id)),
                ("shards", Json::num(*shards)),
                ("len", Json::num(*len)),
            ]),
            Response::NonEmpty { value, stats } => obj(vec![
                ("ok", Json::Bool(true)),
                ("non_empty", Json::Bool(*value)),
                ("stats", stats.to_json()),
            ]),
            Response::Checked { value, stats } => obj(vec![
                ("ok", Json::Bool(true)),
                ("checked", Json::Bool(*value)),
                ("stats", stats.to_json()),
            ]),
            Response::Counted { value, stats } => obj(vec![
                ("ok", Json::Bool(true)),
                ("count", Json::Num(*value)),
                ("stats", stats.to_json()),
            ]),
            Response::Tuples { tuples, stats } => obj(vec![
                ("ok", Json::Bool(true)),
                ("tuples", tuples_to_json(tuples)),
                ("stats", stats.to_json()),
            ]),
            Response::Page { tuples } => obj(vec![("page", tuples_to_json(tuples))]),
            Response::StreamEnd { streamed, stats } => obj(vec![
                ("ok", Json::Bool(true)),
                ("streamed", Json::num(*streamed)),
                ("stats", stats.to_json()),
            ]),
            Response::Stats { service, server } => obj(vec![
                ("ok", Json::Bool(true)),
                ("service", service.to_json()),
                ("server", server.to_json()),
            ]),
            Response::ShuttingDown => obj(vec![
                ("ok", Json::Bool(true)),
                ("shutting_down", Json::Bool(true)),
            ]),
            Response::Error { code, detail } => obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(code.as_str())),
                ("detail", Json::str(detail)),
            ]),
        };
        value.to_bytes()
    }

    /// Decodes one response frame.
    pub fn decode(line: &[u8]) -> Result<Response, ProtoError> {
        let value = Json::parse(line)?;
        if let Some(page) = value.get("page") {
            return Ok(Response::Page {
                tuples: tuples_from_json(page)?,
            });
        }
        if !bool_field(&value, "ok")? {
            let code_bytes = str_field(&value, "error")?;
            let code = ErrorCode::parse(&code_bytes).ok_or_else(|| {
                ProtoError::Malformed(format!(
                    "unknown error code '{}'",
                    String::from_utf8_lossy(&code_bytes)
                ))
            })?;
            return Ok(Response::Error {
                code,
                detail: String::from_utf8_lossy(&str_field(&value, "detail")?).into_owned(),
            });
        }
        if let Some(proto) = value.get("proto") {
            return Ok(Response::Pong {
                proto: number(proto, "proto")?,
            });
        }
        if let Some(id) = value.get("query") {
            return Ok(Response::QueryAdded {
                id: number(id, "query")?,
            });
        }
        if let Some(id) = value.get("doc") {
            return Ok(Response::DocAdded {
                id: number(id, "doc")?,
                shards: num_field(&value, "shards")?,
                len: num_field(&value, "len")?,
            });
        }
        if let Some(flag) = value.get("non_empty") {
            return Ok(Response::NonEmpty {
                value: flag
                    .as_bool()
                    .ok_or_else(|| ProtoError::Malformed("non_empty is not a bool".into()))?,
                stats: WireStats::from_json(field(&value, "stats")?)?,
            });
        }
        if let Some(flag) = value.get("checked") {
            return Ok(Response::Checked {
                value: flag
                    .as_bool()
                    .ok_or_else(|| ProtoError::Malformed("checked is not a bool".into()))?,
                stats: WireStats::from_json(field(&value, "stats")?)?,
            });
        }
        if let Some(count) = value.get("count") {
            return Ok(Response::Counted {
                value: count
                    .as_num()
                    .ok_or_else(|| ProtoError::Malformed("count is not a number".into()))?,
                stats: WireStats::from_json(field(&value, "stats")?)?,
            });
        }
        if let Some(tuples) = value.get("tuples") {
            return Ok(Response::Tuples {
                tuples: tuples_from_json(tuples)?,
                stats: WireStats::from_json(field(&value, "stats")?)?,
            });
        }
        if let Some(streamed) = value.get("streamed") {
            return Ok(Response::StreamEnd {
                streamed: number(streamed, "streamed")?,
                stats: WireStats::from_json(field(&value, "stats")?)?,
            });
        }
        if let Some(service) = value.get("service") {
            return Ok(Response::Stats {
                service: WireServiceStats::from_json(service)?,
                server: WireServerStats::from_json(field(&value, "server")?)?,
            });
        }
        if value.get("shutting_down").is_some() {
            return Ok(Response::ShuttingDown);
        }
        Err(ProtoError::Malformed(
            "response carries no recognised payload key".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64) -> Span {
        Span::new(start, end).unwrap()
    }

    fn sample_tuple() -> SpanTuple {
        SpanTuple::from_assignment(vec![Some(span(1, 3)), None, Some(span(4, 4))])
    }

    fn sample_stats() -> WireStats {
        WireStats {
            cache_hit: true,
            build_us: 0,
            task_us: 42,
            matrix_bytes: 4096,
            results: 7,
        }
    }

    #[test]
    fn every_request_round_trips() {
        let requests = vec![
            Request::Ping,
            Request::AddQuery {
                pattern: ".*x{ab}.*".into(),
                alphabet: b"ab".to_vec(),
            },
            Request::AddDoc {
                text: (0u16..=255).map(|b| b as u8).collect(),
            },
            Request::AddDocSharded {
                k: 0,
                text: b"abababab".to_vec(),
            },
            Request::Task {
                query: 3,
                doc: 5,
                task: WireTask::NonEmptiness,
            },
            Request::Task {
                query: 0,
                doc: 0,
                task: WireTask::ModelCheck(sample_tuple()),
            },
            Request::Task {
                query: 1,
                doc: 2,
                task: WireTask::Count,
            },
            Request::Task {
                query: 1,
                doc: 2,
                task: WireTask::Compute { limit: None },
            },
            Request::Task {
                query: 1,
                doc: 2,
                task: WireTask::Compute { limit: Some(10) },
            },
            Request::Task {
                query: 1,
                doc: 2,
                task: WireTask::Enumerate {
                    skip: 5,
                    limit: Some(30),
                },
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let encoded = request.encode();
            let decoded = Request::decode(&encoded).unwrap();
            assert_eq!(decoded, request);
            // Canonical: re-encoding the decoded frame is byte-identical.
            assert_eq!(decoded.encode(), encoded);
            // Frames never contain a newline (they are the framing).
            assert!(!encoded.contains(&b'\n'));
        }
    }

    #[test]
    fn every_response_round_trips() {
        let responses = vec![
            Response::Pong { proto: 1 },
            Response::QueryAdded { id: 9 },
            Response::DocAdded {
                id: 2,
                shards: 4,
                len: 1000,
            },
            Response::NonEmpty {
                value: true,
                stats: sample_stats(),
            },
            Response::Checked {
                value: false,
                stats: sample_stats(),
            },
            Response::Counted {
                value: u128::MAX,
                stats: sample_stats(),
            },
            Response::Tuples {
                tuples: vec![sample_tuple(), SpanTuple::empty(2)],
                stats: sample_stats(),
            },
            Response::Page {
                tuples: vec![sample_tuple()],
            },
            Response::StreamEnd {
                streamed: 100,
                stats: sample_stats(),
            },
            Response::Stats {
                service: WireServiceStats {
                    requests: 11,
                    count: 4,
                    ..Default::default()
                },
                server: WireServerStats {
                    connections: 3,
                    busy_rejections: 1,
                    ..Default::default()
                },
            },
            Response::ShuttingDown,
        ];
        for response in responses {
            let encoded = response.encode();
            let decoded = Response::decode(&encoded).unwrap();
            assert_eq!(decoded, response);
            assert_eq!(decoded.encode(), encoded);
            assert!(!encoded.contains(&b'\n'));
        }
        for code in [
            ErrorCode::Busy,
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::Version,
            ErrorCode::UnknownId,
            ErrorCode::Eval,
            ErrorCode::ShuttingDown,
        ] {
            let response = Response::Error {
                code,
                detail: format!("detail for {code}"),
            };
            assert_eq!(Response::decode(&response.encode()).unwrap(), response);
        }
    }

    #[test]
    fn version_mismatch_is_a_distinct_error() {
        let mut frame = Request::Ping.encode();
        // Rewrite "v":1 into "v":2.
        let pos = frame.windows(4).position(|w| w == b"\"v\":").unwrap() + 4;
        frame[pos] = b'2';
        assert_eq!(Request::decode(&frame), Err(ProtoError::Version(2)));
    }

    #[test]
    fn malformed_frames_are_rejected_with_detail() {
        for bad in [
            &b"not json"[..],
            b"{}",
            b"{\"v\":1}",
            b"{\"v\":1,\"op\":\"nope\"}",
            b"{\"v\":1,\"op\":\"task\",\"task\":\"count\",\"query\":0}",
            b"{\"v\":1,\"op\":\"task\",\"task\":\"model_check\",\"query\":0,\"doc\":0,\"tuple\":[[3,1]]}",
        ] {
            assert!(
                matches!(Request::decode(bad), Err(ProtoError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn task_kinds_map_to_core_tasks() {
        assert_eq!(WireTask::NonEmptiness.to_task(), Task::NonEmptiness);
        assert_eq!(WireTask::Count.to_task(), Task::Count);
        assert_eq!(
            WireTask::Compute { limit: Some(5) }.to_task(),
            Task::Compute { limit: Some(5) }
        );
        assert_eq!(
            WireTask::Enumerate {
                skip: 2,
                limit: None
            }
            .to_task(),
            Task::Enumerate {
                skip: 2,
                limit: None
            }
        );
        let tuple = sample_tuple();
        assert_eq!(
            WireTask::ModelCheck(tuple.clone()).to_task(),
            Task::ModelCheck(tuple)
        );
    }
}
