//! # spanner-server — a network serving front-end over the evaluation
//! service
//!
//! The paper's economic argument (conf. PODS 2021, Schmid & Schweikardt)
//! is that spanner evaluation over SLP-compressed documents is fast enough
//! to *serve*: pay the `O(|M| + size(S)·q³)` preprocessing once per
//! (query, document) pair, then answer non-emptiness, model checking,
//! counting, computation and constant-delay enumeration from the cached
//! matrices.  The [`Service`](spanner_slp_core::Service) layer provides the
//! concurrency contract (`&self` evaluation, one globally budgeted matrix
//! cache); this crate puts a transport on top:
//!
//! * [`proto`] — the versioned, newline-delimited JSON-like wire format
//!   (hand-rolled over [`json`]; the build environment has no registry
//!   access, the same constraint as `crates/shims/*`), with canonical
//!   encode/decode round-trips for every frame.
//! * [`server`] — the long-running TCP server: accept loop, per-connection
//!   workers, bounded admission answered with structured `busy` errors
//!   (never a dropped connection), frame length caps, streamed enumeration
//!   pages, and graceful shutdown that drains in-flight work.
//! * [`client`] — a blocking typed client used by the integration tests,
//!   the CI smoke script and the load generator, plus the v3
//!   [`PipelinedClient`] that keeps many requests in flight on one socket
//!   and polls replies in completion order.
//! * [`remote`] — the distributed half: [`RemoteExecutor`] implements the
//!   core's `ShardExecutor` over the wire protocol as a self-managing
//!   worker fleet — content-hash have/need negotiation (block bytes cross
//!   the wire once per worker, see [`blockcache`]), rendezvous-hash
//!   shard→worker placement, optional background health probing with
//!   join/leave, and hedged passes that re-issue stragglers to a second
//!   worker (falling back to local execution when workers fail, so
//!   results are never lost).
//! * [`blockcache`] — the worker-resident byte-budgeted LRU of decoded
//!   blocks behind the negotiation.
//!
//! Two binaries ship with the crate: `spanner-server` (boot a server, a
//! `--worker` shard-pass engine, or a `--workers a,b` front-end over a
//! pool) and `spanner-client` (drive one with a script — see the CI smoke
//! steps).
//!
//! ## Loopback example
//!
//! ```
//! use spanner_slp_core::Service;
//! use spanner_server::{Client, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", Service::new(), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let q = client.add_query(".*x{ab}.*", b"ab").unwrap();
//! let d = client.add_doc(b"abababab").unwrap();
//! let (count, _stats) = client.count(q, d.id).unwrap();
//! assert_eq!(count, 4);
//! client.shutdown().unwrap();
//! server.join(); // drains in-flight work, then returns
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockcache;
pub mod client;
pub mod proto;
pub mod remote;
pub mod server;

// The canonical JSON layer moved into `spanner-store` (the on-disk log and
// snapshot formats share it); re-exported here so `crate::json` keeps
// working for the protocol and its tests.
pub use spanner_store::json;

pub use client::{
    retry_busy, Client, ClientError, DocReceipt, FullStats, PipelinedClient, PipelinedReply,
};
pub use proto::{
    ErrorCode, FrameMeta, Request, Response, WireNfa, WireObsStats, WireStoreStats, WireTask,
    WireTenantStats, PROTOCOL_VERSION,
};
pub use remote::RemoteExecutor;
pub use server::{
    PersistenceOptions, RecoveryReport, ReshardOptions, Server, ServerConfig, ServerOptions,
};
// The tenant spec doubles as the wire `tenant_create`/`tenant_update`
// payload; re-exported so clients need not depend on the store crate.
pub use spanner_store::TenantSpec;
