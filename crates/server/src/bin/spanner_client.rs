//! The `spanner-client` binary: drive a running `spanner-server` with a
//! scripted session (CI smoke, demos, ad-hoc poking).
//!
//! ```text
//! spanner-client <addr> [script-file]     # '-' or no file = stdin
//! ```
//!
//! One command per line (`#` starts a comment):
//!
//! ```text
//! ping
//! add_query <pattern> <alphabet>      # e.g. add_query .*x{ab}.* ab
//! add_doc <text>
//! add_doc_sharded <k> <text>          # k = 0 lets the server auto-tune
//! remove_doc <d>
//! nonempty <q> <d>
//! check <q> <d> <tuple>               # tuple: x0=1,3 x1=- … (start,end; - = unset)
//! count <q> <d>
//! compute <q> <d> <limit|->
//! enum <q> <d> <skip> <limit|->
//! stats
//! shutdown
//! ```
//!
//! Every reply is printed as one line.  `busy` backpressure is retried
//! with a small backoff; any other server error aborts with exit code 1,
//! so a CI script fails loudly.

use spanner::{Span, SpanTuple, Variable};
use spanner_server::{retry_busy, Client, ClientError};
use std::io::{BufRead, BufReader};
use std::time::Duration;

const RETRIES: usize = 200;
const BACKOFF: Duration = Duration::from_millis(10);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!("usage: spanner-client <addr> [script-file]");
        std::process::exit(2);
    };
    let script: Box<dyn BufRead> = match args.get(1).map(String::as_str) {
        None | Some("-") => Box::new(BufReader::new(std::io::stdin())),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(BufReader::new(file)),
            Err(e) => {
                eprintln!("cannot open script {path}: {e}");
                std::process::exit(2);
            }
        },
    };

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    for (lineno, line) in script.lines().enumerate() {
        let line = line.unwrap_or_else(|e| fail(lineno, &format!("read error: {e}")));
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match run_command(&mut client, line) {
            Ok(output) => println!("{output}"),
            Err(e) => fail(lineno, &format!("'{line}': {e}")),
        }
    }
}

fn fail(lineno: usize, message: &str) -> ! {
    eprintln!("spanner-client: line {}: {message}", lineno + 1);
    std::process::exit(1);
}

fn run_command(client: &mut Client, line: &str) -> Result<String, ClientError> {
    let mut words = line.split_whitespace();
    let command = words.next().expect("non-empty line");
    let rest: Vec<&str> = words.collect();
    let arg = |i: usize| -> Result<&str, ClientError> {
        rest.get(i)
            .copied()
            .ok_or_else(|| ClientError::Protocol(format!("{command}: missing argument {i}")))
    };
    let num = |i: usize| -> Result<u64, ClientError> {
        arg(i)?
            .parse()
            .map_err(|_| ClientError::Protocol(format!("{command}: argument {i} is not a number")))
    };
    let opt_num = |i: usize| -> Result<Option<u64>, ClientError> {
        let word = arg(i)?;
        if word == "-" {
            Ok(None)
        } else {
            Ok(Some(word.parse().map_err(|_| {
                ClientError::Protocol(format!("{command}: argument {i} is not a number or '-'"))
            })?))
        }
    };

    match command {
        "ping" => Ok(format!("pong proto={}", client.ping()?)),
        "add_query" => {
            let id = retry_busy(RETRIES, BACKOFF, || {
                client.add_query(arg(0)?, arg(1)?.as_bytes())
            })?;
            Ok(format!("query {id}"))
        }
        "add_doc" => {
            let receipt = retry_busy(RETRIES, BACKOFF, || client.add_doc(arg(0)?.as_bytes()))?;
            Ok(format!(
                "doc {} shards={} len={}",
                receipt.id, receipt.shards, receipt.len
            ))
        }
        "add_doc_sharded" => {
            let k = num(0)?;
            let receipt = retry_busy(RETRIES, BACKOFF, || {
                client.add_doc_sharded(arg(1)?.as_bytes(), k)
            })?;
            Ok(format!(
                "doc {} shards={} len={}",
                receipt.id, receipt.shards, receipt.len
            ))
        }
        "remove_doc" => {
            let d = num(0)?;
            retry_busy(RETRIES, BACKOFF, || client.remove_doc(d))?;
            Ok(format!("removed {d}"))
        }
        "nonempty" => {
            let (q, d) = (num(0)?, num(1)?);
            let (value, stats) = retry_busy(RETRIES, BACKOFF, || client.non_empty(q, d))?;
            Ok(format!("nonempty {value} cache_hit={}", stats.cache_hit))
        }
        "check" => {
            let (q, d) = (num(0)?, num(1)?);
            let tuple = parse_tuple(rest.get(2..).unwrap_or(&[]))?;
            let (value, _) = retry_busy(RETRIES, BACKOFF, || client.model_check(q, d, &tuple))?;
            Ok(format!("checked {value}"))
        }
        "count" => {
            let (q, d) = (num(0)?, num(1)?);
            let (value, stats) = retry_busy(RETRIES, BACKOFF, || client.count(q, d))?;
            Ok(format!("count {value} cache_hit={}", stats.cache_hit))
        }
        "compute" => {
            let (q, d, limit) = (num(0)?, num(1)?, opt_num(2)?);
            let (tuples, _) = retry_busy(RETRIES, BACKOFF, || client.compute(q, d, limit))?;
            Ok(format!(
                "tuples {} {}",
                tuples.len(),
                render_tuples(&tuples)
            ))
        }
        "enum" => {
            let (q, d, skip, limit) = (num(0)?, num(1)?, num(2)?, opt_num(3)?);
            let mut pages = 0;
            let (tuples, _) = retry_busy(RETRIES, BACKOFF, || {
                pages = 0;
                client.enumerate(q, d, skip, limit, |_| pages += 1)
            })?;
            Ok(format!("enumerated {} pages={pages}", tuples.len()))
        }
        "stats" => {
            let (service, server) = client.stats()?;
            Ok(format!(
                "stats requests={} hits={} misses={} evictions={} resident={} \
                 connections={} busy={} pages={}",
                service.requests,
                service.cache_hits,
                service.cache_misses,
                service.evictions,
                service.resident_bytes,
                server.connections,
                server.busy_rejections,
                server.pages_streamed,
            ))
        }
        "shutdown" => {
            client.shutdown()?;
            Ok("shutdown acknowledged".to_string())
        }
        other => Err(ClientError::Protocol(format!("unknown command '{other}'"))),
    }
}

/// Parses `x0=1,3 x1=- …` into a span-tuple (variable index, then
/// `start,end` or `-` for undefined).
fn parse_tuple(words: &[&str]) -> Result<SpanTuple, ClientError> {
    let bad = |w: &str| ClientError::Protocol(format!("bad tuple component '{w}'"));
    let mut tuple = SpanTuple::empty(words.len());
    for word in words {
        let (var, span) = word.split_once('=').ok_or_else(|| bad(word))?;
        let index: u8 = var
            .strip_prefix('x')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(word))?;
        if span == "-" {
            continue;
        }
        let (start, end) = span.split_once(',').ok_or_else(|| bad(word))?;
        let span = Span::new(
            start.parse().map_err(|_| bad(word))?,
            end.parse().map_err(|_| bad(word))?,
        )
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        tuple.set(Variable(index), span);
    }
    Ok(tuple)
}

fn render_tuples(tuples: &[SpanTuple]) -> String {
    let shown: Vec<String> = tuples
        .iter()
        .take(3)
        .map(|t| {
            let vars: Vec<String> = (0..t.num_vars())
                .map(|v| match t.get(Variable(v as u8)) {
                    Some(span) => format!("[{},{})", span.start, span.end),
                    None => "-".to_string(),
                })
                .collect();
            format!("({})", vars.join(" "))
        })
        .collect();
    let ellipsis = if tuples.len() > 3 { " …" } else { "" };
    format!("{}{}", shown.join(" "), ellipsis)
}
