//! The `spanner-client` binary: drive a running `spanner-server` with a
//! scripted session (CI smoke, demos, ad-hoc poking).
//!
//! ```text
//! spanner-client <addr> [script-file]     # '-' or no file = stdin
//! ```
//!
//! One command per line (`#` starts a comment):
//!
//! ```text
//! ping
//! tenant <t>                          # switch namespace (0 = default)
//! tenant_create <id> <name> <max_docs> <max_bytes> <cache_share> <weight>
//! tenant_update <id> <name> <max_docs> <max_bytes> <cache_share> <weight>
//! add_query <pattern> <alphabet>      # e.g. add_query .*x{ab}.* ab
//! add_doc <text>
//! add_doc_sharded <k> <text>          # k = 0 lets the server auto-tune
//! remove_doc <d>
//! nonempty <q> <d>
//! check <q> <d> <tuple>               # tuple: x0=1,3 x1=- … (start,end; - = unset)
//! count <q> <d>
//! compute <q> <d> <limit|->
//! enum <q> <d> <skip> <limit|->
//! trace <op> <args...>                # run any op sampled; print its span tree
//! stats                               # scrape-friendly text export
//! scrapelint                          # stats + well-formedness check
//! shutdown
//! ```
//!
//! Every reply is printed as one line — except `stats`, which exports
//! every counter the server exposes (per-task-kind counts, per-tenant
//! quota/cache rows, executor fallbacks, store metrics, and latency
//! histograms with p50/p95/p99 quantiles) as `spanner_<name>[{labels}]
//! <value>` lines, one metric per line, ready for a text-format scraper
//! (`scrapelint` additionally validates that shape and fails loudly on a
//! malformed line) — and `trace`, which re-runs any task command with
//! sampling on and pretty-prints the stitched span tree the server
//! returned, one indented line per span.  `busy` backpressure is retried
//! with a small backoff; any other server error aborts with exit code 1,
//! so a CI script fails loudly.

use spanner::{Span, SpanTuple, Variable};
use spanner_server::{retry_busy, Client, ClientError, TenantSpec};
use spanner_slp_core::service::Task;
use spanner_slp_core::trace::{HistSnapshot, SpanRec};
use std::io::{BufRead, BufReader};
use std::time::Duration;

const RETRIES: usize = 200;
const BACKOFF: Duration = Duration::from_millis(10);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!("usage: spanner-client <addr> [script-file]");
        std::process::exit(2);
    };
    let script: Box<dyn BufRead> = match args.get(1).map(String::as_str) {
        None | Some("-") => Box::new(BufReader::new(std::io::stdin())),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(BufReader::new(file)),
            Err(e) => {
                eprintln!("cannot open script {path}: {e}");
                std::process::exit(2);
            }
        },
    };

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    for (lineno, line) in script.lines().enumerate() {
        let line = line.unwrap_or_else(|e| fail(lineno, &format!("read error: {e}")));
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match run_command(&mut client, line) {
            Ok(output) => println!("{output}"),
            Err(e) => fail(lineno, &format!("'{line}': {e}")),
        }
    }
}

fn fail(lineno: usize, message: &str) -> ! {
    eprintln!("spanner-client: line {}: {message}", lineno + 1);
    std::process::exit(1);
}

fn run_command(client: &mut Client, line: &str) -> Result<String, ClientError> {
    let mut words = line.split_whitespace();
    let command = words.next().expect("non-empty line");
    let rest: Vec<&str> = words.collect();
    let arg = |i: usize| -> Result<&str, ClientError> {
        rest.get(i)
            .copied()
            .ok_or_else(|| ClientError::Protocol(format!("{command}: missing argument {i}")))
    };
    let num = |i: usize| -> Result<u64, ClientError> {
        arg(i)?
            .parse()
            .map_err(|_| ClientError::Protocol(format!("{command}: argument {i} is not a number")))
    };
    let opt_num = |i: usize| -> Result<Option<u64>, ClientError> {
        let word = arg(i)?;
        if word == "-" {
            Ok(None)
        } else {
            Ok(Some(word.parse().map_err(|_| {
                ClientError::Protocol(format!("{command}: argument {i} is not a number or '-'"))
            })?))
        }
    };

    let spec = || -> Result<TenantSpec, ClientError> {
        Ok(TenantSpec {
            id: num(0)? as u32,
            name: arg(1)?.to_string(),
            max_docs: num(2)?,
            max_corpus_bytes: num(3)?,
            cache_share: num(4)?,
            admission_weight: num(5)? as u32,
        })
    };

    match command {
        "ping" => Ok(format!("pong proto={}", client.ping()?)),
        "tenant" => {
            let t = num(0)? as u32;
            client.set_tenant(t);
            Ok(format!("tenant {t}"))
        }
        "tenant_create" => {
            let spec = spec()?;
            let id = spec.id;
            retry_busy(RETRIES, BACKOFF, || client.tenant_create(spec.clone()))?;
            Ok(format!("tenant {id} created"))
        }
        "tenant_update" => {
            let spec = spec()?;
            let id = spec.id;
            retry_busy(RETRIES, BACKOFF, || client.tenant_update(spec.clone()))?;
            Ok(format!("tenant {id} updated"))
        }
        "add_query" => {
            let id = retry_busy(RETRIES, BACKOFF, || {
                client.add_query(arg(0)?, arg(1)?.as_bytes())
            })?;
            Ok(format!("query {id}"))
        }
        "add_doc" => {
            let receipt = retry_busy(RETRIES, BACKOFF, || client.add_doc(arg(0)?.as_bytes()))?;
            Ok(format!(
                "doc {} shards={} len={}",
                receipt.id, receipt.shards, receipt.len
            ))
        }
        "add_doc_sharded" => {
            let k = num(0)?;
            let receipt = retry_busy(RETRIES, BACKOFF, || {
                client.add_doc_sharded(arg(1)?.as_bytes(), k)
            })?;
            Ok(format!(
                "doc {} shards={} len={}",
                receipt.id, receipt.shards, receipt.len
            ))
        }
        "remove_doc" => {
            let d = num(0)?;
            retry_busy(RETRIES, BACKOFF, || client.remove_doc(d))?;
            Ok(format!("removed {d}"))
        }
        "nonempty" => {
            let (q, d) = (num(0)?, num(1)?);
            let (value, stats) = retry_busy(RETRIES, BACKOFF, || client.non_empty(q, d))?;
            Ok(format!("nonempty {value} cache_hit={}", stats.cache_hit))
        }
        "check" => {
            let (q, d) = (num(0)?, num(1)?);
            let tuple = parse_tuple(rest.get(2..).unwrap_or(&[]))?;
            let (value, _) = retry_busy(RETRIES, BACKOFF, || client.model_check(q, d, &tuple))?;
            Ok(format!("checked {value}"))
        }
        "count" => {
            let (q, d) = (num(0)?, num(1)?);
            let (value, stats) = retry_busy(RETRIES, BACKOFF, || client.count(q, d))?;
            Ok(format!("count {value} cache_hit={}", stats.cache_hit))
        }
        "compute" => {
            let (q, d, limit) = (num(0)?, num(1)?, opt_num(2)?);
            let (tuples, _) = retry_busy(RETRIES, BACKOFF, || client.compute(q, d, limit))?;
            Ok(format!(
                "tuples {} {}",
                tuples.len(),
                render_tuples(&tuples)
            ))
        }
        "enum" => {
            let (q, d, skip, limit) = (num(0)?, num(1)?, num(2)?, opt_num(3)?);
            let mut pages = 0;
            let (tuples, _) = retry_busy(RETRIES, BACKOFF, || {
                pages = 0;
                client.enumerate(q, d, skip, limit, |_| pages += 1)
            })?;
            Ok(format!("enumerated {} pages={pages}", tuples.len()))
        }
        "trace" => {
            let inner = line
                .trim_start()
                .strip_prefix("trace")
                .expect("matched above")
                .trim();
            if inner.is_empty() || inner.starts_with("trace") {
                return Err(ClientError::Protocol(
                    "trace expects a task command to run, e.g. 'trace count 0 0'".into(),
                ));
            }
            client.set_tracing(true);
            let result = run_command(client, inner);
            let tree = client.last_trace().map(render_trace);
            client.set_tracing(false);
            let output = result?;
            match tree {
                Some(tree) => Ok(format!("{output}\n{tree}")),
                None => Ok(format!("{output}\n(no trace returned)")),
            }
        }
        "stats" => Ok(render_scrape(&client.stats_full()?)),
        "scrapelint" => {
            let text = render_scrape(&client.stats_full()?);
            match scrape_lint(&text) {
                Ok(lines) => Ok(format!("{text}\nscrapelint ok lines={lines}")),
                Err(e) => Err(ClientError::Protocol(format!("scrapelint: {e}"))),
            }
        }
        "shutdown" => {
            client.shutdown()?;
            Ok("shutdown acknowledged".to_string())
        }
        other => Err(ClientError::Protocol(format!("unknown command '{other}'"))),
    }
}

/// Renders the full stats answer as scrape-friendly text: one
/// `spanner_<name>[{labels}] <value>` line per metric.
fn render_scrape(full: &spanner_server::FullStats) -> String {
    let mut out = Vec::new();
    let s = &full.service;
    for (name, value) in [
        ("requests_total", s.requests),
        ("cache_hits_total", s.cache_hits),
        ("cache_misses_total", s.cache_misses),
        ("cache_evictions_total", s.evictions),
        ("cache_resident_bytes", s.resident_bytes),
        ("cache_resident_entries", s.resident_entries),
    ] {
        out.push(format!("spanner_{name} {value}"));
    }
    for (kind, value) in [
        ("nonemptiness", s.non_emptiness),
        ("model_check", s.model_check),
        ("count", s.count),
        ("compute", s.compute),
        ("enumerate", s.enumerate),
    ] {
        out.push(format!("spanner_tasks_total{{kind=\"{kind}\"}} {value}"));
    }
    let v = &full.server;
    for (name, value) in [
        ("connections_total", v.connections),
        ("frames_total", v.frames),
        ("busy_rejections_total", v.busy_rejections),
        ("quota_rejections_total", v.quota_rejections),
        ("malformed_frames_total", v.malformed_frames),
        ("oversized_frames_total", v.oversized_frames),
        ("pages_streamed_total", v.pages_streamed),
        ("executor_fallbacks_total", v.remote_fallbacks),
        ("executor_hedges_total", v.remote_hedges),
        ("block_cache_hits_total", v.block_cache_hits),
        ("block_cache_misses_total", v.block_cache_misses),
        ("block_cache_evictions_total", v.block_cache_evictions),
        ("block_cache_resident_bytes", v.block_cache_bytes),
        ("reshards_total", v.reshards),
        ("inflight", v.inflight),
    ] {
        out.push(format!("spanner_server_{name} {value}"));
    }
    for (class, depth) in [
        ("cheap", v.queue_depth_cheap),
        ("expensive", v.queue_depth_expensive),
    ] {
        out.push(format!("spanner_queue_depth{{class=\"{class}\"}} {depth}"));
    }
    for (reason, shed) in [("expired", v.shed_expired), ("overflow", v.shed_overflow)] {
        out.push(format!("spanner_shed_total{{reason=\"{reason}\"}} {shed}"));
    }
    for t in &full.tenants {
        let label = format!("{{tenant=\"{}\"}}", t.id);
        for (name, value) in [
            ("docs", t.docs),
            ("docs_quota", t.max_docs),
            ("corpus_bytes", t.corpus_bytes),
            ("corpus_bytes_quota", t.max_corpus_bytes),
            ("cache_resident_bytes", t.cache_resident),
            ("cache_share_bytes", t.cache_share),
            ("admission_weight", t.admission_weight as u64),
            ("inflight", t.inflight),
            ("busy_rejections_total", t.busy_rejections),
            ("quota_rejections_total", t.quota_rejections),
        ] {
            out.push(format!("spanner_tenant_{name}{label} {value}"));
        }
    }
    if let Some(store) = &full.store {
        out.push(format!("spanner_store_log_records {}", store.log_records));
        out.push(format!("spanner_store_log_bytes {}", store.log_bytes));
        out.push(format!("spanner_store_last_seq {}", store.last_seq));
        out.push(format!("spanner_store_snapshot_seq {}", store.snapshot_seq));
        out.push(format!("spanner_store_snapshots_total {}", store.snapshots));
        out.push(format!(
            "spanner_store_snapshot_triggers_total{{trigger=\"cadence\"}} {}",
            store.snapshots_on_cadence
        ));
        out.push(format!(
            "spanner_store_snapshot_triggers_total{{trigger=\"size\"}} {}",
            store.snapshots_on_size
        ));
        if let Some(age) = store.snapshot_age_secs {
            out.push(format!("spanner_store_snapshot_age_seconds {age}"));
        }
    }
    if let Some(obs) = &full.obs {
        for (i, hist) in obs.kinds.iter().enumerate() {
            let kind = Task::KIND_NAMES.get(i).copied().unwrap_or("unknown");
            render_hist(
                &mut out,
                "spanner_request_duration_us",
                &format!("kind=\"{kind}\""),
                hist,
            );
        }
        for (id, hist) in &obs.tenants {
            render_hist(
                &mut out,
                "spanner_request_duration_us",
                &format!("tenant=\"{id}\""),
                hist,
            );
        }
        render_hist(
            &mut out,
            "spanner_shard_pass_duration_us",
            "",
            &obs.shard_pass,
        );
        out.push(format!(
            "spanner_executor_hedge_budget_us {}",
            obs.hedge_budget_us
        ));
        out.push(format!(
            "spanner_executor_hedge_window_samples {}",
            obs.hedge_samples
        ));
        out.push(format!(
            "spanner_store_compactions_total {}",
            obs.compactions
        ));
        out.push(format!(
            "spanner_store_compaction_duration_us{{stat=\"last\"}} {}",
            obs.compaction_last_us
        ));
        out.push(format!(
            "spanner_store_compaction_duration_us{{stat=\"total\"}} {}",
            obs.compaction_total_us
        ));
    }
    out.join("\n")
}

/// Renders one log2 histogram in cumulative Prometheus text shape —
/// `_bucket{le=…}` lines ending at `le="+Inf"`, `_sum`, `_count` — plus
/// p50/p95/p99 quantile gauges under `<name>_p<q>`.
fn render_hist(out: &mut Vec<String>, name: &str, label: &str, hist: &HistSnapshot) {
    let sep = if label.is_empty() { "" } else { "," };
    let mut seen = 0u64;
    for (i, bucket) in hist.buckets.iter().enumerate() {
        seen += bucket;
        out.push(format!(
            "{name}_bucket{{{label}{sep}le=\"{}\"}} {seen}",
            spanner_slp_core::trace::bucket_le(i)
        ));
    }
    out.push(format!(
        "{name}_bucket{{{label}{sep}le=\"+Inf\"}} {}",
        hist.count
    ));
    let braces = |l: &str| {
        if l.is_empty() {
            String::new()
        } else {
            format!("{{{l}}}")
        }
    };
    out.push(format!("{name}_sum{} {}", braces(label), hist.sum));
    out.push(format!("{name}_count{} {}", braces(label), hist.count));
    for (suffix, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        out.push(format!(
            "{name}_{suffix}{} {}",
            braces(label),
            hist.percentile(p)
        ));
    }
}

/// Pretty-prints a stitched span tree, one indented line per span:
/// `name start..end µs` plus any attributes as `k=v` pairs.  Children
/// appear under their parent in recording order.
fn render_trace(spans: &[SpanRec]) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent {
            Some(p) if (p as usize) < spans.len() => children[p as usize].push(i),
            _ => roots.push(i),
        }
    }
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let span = &spans[i];
        let attrs: Vec<String> = span
            .attrs
            .iter()
            .map(|(k, v)| format!(" {k}={v}"))
            .collect();
        out.push(format!(
            "{}{} {}..{}µs{}",
            "  ".repeat(depth),
            span.name,
            span.start_us,
            span.end_us(),
            attrs.join("")
        ));
        for &child in children[i].iter().rev() {
            stack.push((child, depth + 1));
        }
    }
    out.join("\n")
}

/// Validates scrape text well-formedness without a regex engine: every
/// line must be `name{labels} value` with a legal metric name, properly
/// quoted labels, and an unsigned integer value; `_bucket` families must
/// be cumulative and end in a `le="+Inf"` bucket that matches the
/// family's `_count`.  Returns the number of lines checked.
/// One `_bucket` family during linting: the family key (metric name plus
/// non-`le` labels), the `(le bound, cumulative value)` pairs seen so far, and
/// the `+Inf` terminator value once it arrives.
type BucketFamily = (String, Vec<(f64, u64)>, Option<u64>);

fn scrape_lint(text: &str) -> Result<usize, String> {
    let name_ok = |name: &str| {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut seen = std::collections::HashSet::new();
    let mut families: Vec<BucketFamily> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();
    let mut lines = 0;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        lines += 1;
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value separator"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: value '{value}' is not an unsigned integer"))?;
        if !seen.insert(series.to_string()) {
            return Err(format!("line {lineno}: duplicate series {series}"));
        }
        let (name, labels) = match series.split_once('{') {
            None => (series, Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label braces"))?;
                let mut labels = Vec::new();
                for pair in body.split(',') {
                    let (key, val) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {lineno}: label '{pair}' has no '='"))?;
                    let val = val
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {lineno}: label '{pair}' is not quoted"))?;
                    if !name_ok(key) || val.contains(['"', '\\', '\n']) {
                        return Err(format!("line {lineno}: malformed label '{pair}'"));
                    }
                    labels.push((key.to_string(), val.to_string()));
                }
                (name, labels)
            }
        };
        if !name_ok(name) {
            return Err(format!("line {lineno}: malformed metric name '{name}'"));
        }
        let other_labels: Vec<String> = labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if let Some(base) = name.strip_suffix("_bucket") {
            let key = format!("{base}|{}", other_labels.join(","));
            let le = &labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("line {lineno}: bucket without le label"))?
                .1;
            let slot = match families.iter_mut().find(|(k, _, _)| *k == key) {
                Some(slot) => slot,
                None => {
                    families.push((key, Vec::new(), None));
                    families.last_mut().expect("just pushed")
                }
            };
            if le == "+Inf" {
                slot.2 = Some(value);
            } else {
                let bound: f64 = le
                    .parse()
                    .map_err(|_| format!("line {lineno}: bucket bound '{le}' is not numeric"))?;
                slot.1.push((bound, value));
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.push((format!("{base}|{}", other_labels.join(",")), value));
        }
    }
    for (key, buckets, inf) in &families {
        let inf =
            inf.ok_or_else(|| format!("bucket family {key} has no le=\"+Inf\" terminator"))?;
        let mut last = (f64::NEG_INFINITY, 0u64);
        for &(bound, cumulative) in buckets {
            if bound <= last.0 {
                return Err(format!("bucket family {key}: le bounds not increasing"));
            }
            if cumulative < last.1 {
                return Err(format!("bucket family {key}: counts not cumulative"));
            }
            last = (bound, cumulative);
        }
        if last.1 > inf {
            return Err(format!("bucket family {key}: +Inf below a finite bucket"));
        }
        if let Some((_, count)) = counts.iter().find(|(k, _)| k == key) {
            if *count != inf {
                return Err(format!("bucket family {key}: +Inf != _count"));
            }
        }
    }
    Ok(lines)
}

/// Parses `x0=1,3 x1=- …` into a span-tuple (variable index, then
/// `start,end` or `-` for undefined).
fn parse_tuple(words: &[&str]) -> Result<SpanTuple, ClientError> {
    let bad = |w: &str| ClientError::Protocol(format!("bad tuple component '{w}'"));
    let mut tuple = SpanTuple::empty(words.len());
    for word in words {
        let (var, span) = word.split_once('=').ok_or_else(|| bad(word))?;
        let index: u8 = var
            .strip_prefix('x')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(word))?;
        if span == "-" {
            continue;
        }
        let (start, end) = span.split_once(',').ok_or_else(|| bad(word))?;
        let span = Span::new(
            start.parse().map_err(|_| bad(word))?,
            end.parse().map_err(|_| bad(word))?,
        )
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        tuple.set(Variable(index), span);
    }
    Ok(tuple)
}

fn render_tuples(tuples: &[SpanTuple]) -> String {
    let shown: Vec<String> = tuples
        .iter()
        .take(3)
        .map(|t| {
            let vars: Vec<String> = (0..t.num_vars())
                .map(|v| match t.get(Variable(v as u8)) {
                    Some(span) => format!("[{},{})", span.start, span.end),
                    None => "-".to_string(),
                })
                .collect();
            format!("({})", vars.join(" "))
        })
        .collect();
    let ellipsis = if tuples.len() > 3 { " …" } else { "" };
    format!("{}{}", shown.join(" "), ellipsis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_with(samples: &[u64]) -> HistSnapshot {
        let hist = spanner_slp_core::trace::Hist::new();
        for &s in samples {
            hist.observe(s);
        }
        hist.snapshot().trimmed()
    }

    #[test]
    fn rendered_histograms_pass_the_lint() {
        let mut out = Vec::new();
        render_hist(
            &mut out,
            "spanner_request_duration_us",
            "kind=\"count\"",
            &hist_with(&[1, 5, 5, 900, 40_000]),
        );
        render_hist(
            &mut out,
            "spanner_shard_pass_duration_us",
            "",
            &hist_with(&[]),
        );
        let text = out.join("\n");
        assert_eq!(scrape_lint(&text).unwrap(), out.len());
        // The cumulative terminator equals the sample count.
        assert!(text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("spanner_request_duration_us_count{kind=\"count\"} 5"));
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        for (bad, why) in [
            ("spanner_x", "no value separator"),
            ("spanner_x notanumber", "non-numeric value"),
            ("9leading_digit 3", "bad metric name"),
            ("spanner_x{unquoted=3} 1", "unquoted label"),
            ("spanner_x{k=\"v\" 1", "unterminated braces"),
            ("spanner_x 1\nspanner_x 2", "duplicate series"),
            ("spanner_x_bucket{le=\"1\"} 1", "no +Inf terminator"),
            (
                "spanner_x_bucket{le=\"2\"} 5\nspanner_x_bucket{le=\"1\"} 1\nspanner_x_bucket{le=\"+Inf\"} 5",
                "bounds out of order",
            ),
            (
                "spanner_x_bucket{le=\"1\"} 5\nspanner_x_bucket{le=\"2\"} 3\nspanner_x_bucket{le=\"+Inf\"} 5",
                "not cumulative",
            ),
            (
                "spanner_x_bucket{le=\"1\"} 5\nspanner_x_bucket{le=\"+Inf\"} 5\nspanner_x_count 4",
                "+Inf disagrees with _count",
            ),
        ] {
            assert!(scrape_lint(bad).is_err(), "lint accepted: {why}");
        }
    }

    #[test]
    fn lint_accepts_plain_counters_and_labelled_gauges() {
        let text = "spanner_requests_total 12\n\
                    spanner_tenant_docs{tenant=\"7\"} 3\n\
                    spanner_store_compaction_duration_us{stat=\"last\"} 0";
        assert_eq!(scrape_lint(text).unwrap(), 3);
    }

    #[test]
    fn trace_rendering_indents_children_under_parents() {
        let spans = vec![
            SpanRec {
                name: "task_exec".into(),
                start_us: 0,
                dur_us: 100,
                parent: None,
                attrs: vec![("kind".into(), "count".into())],
            },
            SpanRec {
                name: "shard_rpc".into(),
                start_us: 10,
                dur_us: 50,
                parent: Some(0),
                attrs: Vec::new(),
            },
            SpanRec {
                name: "shard_pass".into(),
                start_us: 15,
                dur_us: 40,
                parent: Some(1),
                attrs: Vec::new(),
            },
        ];
        let text = render_trace(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "task_exec 0..100µs kind=count");
        assert_eq!(lines[1], "  shard_rpc 10..60µs");
        assert_eq!(lines[2], "    shard_pass 15..55µs");
    }
}
