//! The `spanner-client` binary: drive a running `spanner-server` with a
//! scripted session (CI smoke, demos, ad-hoc poking).
//!
//! ```text
//! spanner-client <addr> [script-file]     # '-' or no file = stdin
//! ```
//!
//! One command per line (`#` starts a comment):
//!
//! ```text
//! ping
//! tenant <t>                          # switch namespace (0 = default)
//! tenant_create <id> <name> <max_docs> <max_bytes> <cache_share> <weight>
//! tenant_update <id> <name> <max_docs> <max_bytes> <cache_share> <weight>
//! add_query <pattern> <alphabet>      # e.g. add_query .*x{ab}.* ab
//! add_doc <text>
//! add_doc_sharded <k> <text>          # k = 0 lets the server auto-tune
//! remove_doc <d>
//! nonempty <q> <d>
//! check <q> <d> <tuple>               # tuple: x0=1,3 x1=- … (start,end; - = unset)
//! count <q> <d>
//! compute <q> <d> <limit|->
//! enum <q> <d> <skip> <limit|->
//! stats                               # scrape-friendly text export
//! shutdown
//! ```
//!
//! Every reply is printed as one line — except `stats`, which exports
//! every counter the server exposes (per-task-kind counts, per-tenant
//! quota/cache rows, executor fallbacks, store metrics) as
//! `spanner_<name>[{labels}] <value>` lines, one metric per line, ready
//! for a text-format scraper.  `busy` backpressure is retried with a
//! small backoff; any other server error aborts with exit code 1, so a
//! CI script fails loudly.

use spanner::{Span, SpanTuple, Variable};
use spanner_server::{retry_busy, Client, ClientError, TenantSpec};
use std::io::{BufRead, BufReader};
use std::time::Duration;

const RETRIES: usize = 200;
const BACKOFF: Duration = Duration::from_millis(10);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first() else {
        eprintln!("usage: spanner-client <addr> [script-file]");
        std::process::exit(2);
    };
    let script: Box<dyn BufRead> = match args.get(1).map(String::as_str) {
        None | Some("-") => Box::new(BufReader::new(std::io::stdin())),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(BufReader::new(file)),
            Err(e) => {
                eprintln!("cannot open script {path}: {e}");
                std::process::exit(2);
            }
        },
    };

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    for (lineno, line) in script.lines().enumerate() {
        let line = line.unwrap_or_else(|e| fail(lineno, &format!("read error: {e}")));
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match run_command(&mut client, line) {
            Ok(output) => println!("{output}"),
            Err(e) => fail(lineno, &format!("'{line}': {e}")),
        }
    }
}

fn fail(lineno: usize, message: &str) -> ! {
    eprintln!("spanner-client: line {}: {message}", lineno + 1);
    std::process::exit(1);
}

fn run_command(client: &mut Client, line: &str) -> Result<String, ClientError> {
    let mut words = line.split_whitespace();
    let command = words.next().expect("non-empty line");
    let rest: Vec<&str> = words.collect();
    let arg = |i: usize| -> Result<&str, ClientError> {
        rest.get(i)
            .copied()
            .ok_or_else(|| ClientError::Protocol(format!("{command}: missing argument {i}")))
    };
    let num = |i: usize| -> Result<u64, ClientError> {
        arg(i)?
            .parse()
            .map_err(|_| ClientError::Protocol(format!("{command}: argument {i} is not a number")))
    };
    let opt_num = |i: usize| -> Result<Option<u64>, ClientError> {
        let word = arg(i)?;
        if word == "-" {
            Ok(None)
        } else {
            Ok(Some(word.parse().map_err(|_| {
                ClientError::Protocol(format!("{command}: argument {i} is not a number or '-'"))
            })?))
        }
    };

    let spec = || -> Result<TenantSpec, ClientError> {
        Ok(TenantSpec {
            id: num(0)? as u32,
            name: arg(1)?.to_string(),
            max_docs: num(2)?,
            max_corpus_bytes: num(3)?,
            cache_share: num(4)?,
            admission_weight: num(5)? as u32,
        })
    };

    match command {
        "ping" => Ok(format!("pong proto={}", client.ping()?)),
        "tenant" => {
            let t = num(0)? as u32;
            client.set_tenant(t);
            Ok(format!("tenant {t}"))
        }
        "tenant_create" => {
            let spec = spec()?;
            let id = spec.id;
            retry_busy(RETRIES, BACKOFF, || client.tenant_create(spec.clone()))?;
            Ok(format!("tenant {id} created"))
        }
        "tenant_update" => {
            let spec = spec()?;
            let id = spec.id;
            retry_busy(RETRIES, BACKOFF, || client.tenant_update(spec.clone()))?;
            Ok(format!("tenant {id} updated"))
        }
        "add_query" => {
            let id = retry_busy(RETRIES, BACKOFF, || {
                client.add_query(arg(0)?, arg(1)?.as_bytes())
            })?;
            Ok(format!("query {id}"))
        }
        "add_doc" => {
            let receipt = retry_busy(RETRIES, BACKOFF, || client.add_doc(arg(0)?.as_bytes()))?;
            Ok(format!(
                "doc {} shards={} len={}",
                receipt.id, receipt.shards, receipt.len
            ))
        }
        "add_doc_sharded" => {
            let k = num(0)?;
            let receipt = retry_busy(RETRIES, BACKOFF, || {
                client.add_doc_sharded(arg(1)?.as_bytes(), k)
            })?;
            Ok(format!(
                "doc {} shards={} len={}",
                receipt.id, receipt.shards, receipt.len
            ))
        }
        "remove_doc" => {
            let d = num(0)?;
            retry_busy(RETRIES, BACKOFF, || client.remove_doc(d))?;
            Ok(format!("removed {d}"))
        }
        "nonempty" => {
            let (q, d) = (num(0)?, num(1)?);
            let (value, stats) = retry_busy(RETRIES, BACKOFF, || client.non_empty(q, d))?;
            Ok(format!("nonempty {value} cache_hit={}", stats.cache_hit))
        }
        "check" => {
            let (q, d) = (num(0)?, num(1)?);
            let tuple = parse_tuple(rest.get(2..).unwrap_or(&[]))?;
            let (value, _) = retry_busy(RETRIES, BACKOFF, || client.model_check(q, d, &tuple))?;
            Ok(format!("checked {value}"))
        }
        "count" => {
            let (q, d) = (num(0)?, num(1)?);
            let (value, stats) = retry_busy(RETRIES, BACKOFF, || client.count(q, d))?;
            Ok(format!("count {value} cache_hit={}", stats.cache_hit))
        }
        "compute" => {
            let (q, d, limit) = (num(0)?, num(1)?, opt_num(2)?);
            let (tuples, _) = retry_busy(RETRIES, BACKOFF, || client.compute(q, d, limit))?;
            Ok(format!(
                "tuples {} {}",
                tuples.len(),
                render_tuples(&tuples)
            ))
        }
        "enum" => {
            let (q, d, skip, limit) = (num(0)?, num(1)?, num(2)?, opt_num(3)?);
            let mut pages = 0;
            let (tuples, _) = retry_busy(RETRIES, BACKOFF, || {
                pages = 0;
                client.enumerate(q, d, skip, limit, |_| pages += 1)
            })?;
            Ok(format!("enumerated {} pages={pages}", tuples.len()))
        }
        "stats" => Ok(render_scrape(&client.stats_full()?)),
        "shutdown" => {
            client.shutdown()?;
            Ok("shutdown acknowledged".to_string())
        }
        other => Err(ClientError::Protocol(format!("unknown command '{other}'"))),
    }
}

/// Renders the full stats answer as scrape-friendly text: one
/// `spanner_<name>[{labels}] <value>` line per metric.
fn render_scrape(full: &spanner_server::FullStats) -> String {
    let mut out = Vec::new();
    let s = &full.service;
    for (name, value) in [
        ("requests_total", s.requests),
        ("cache_hits_total", s.cache_hits),
        ("cache_misses_total", s.cache_misses),
        ("cache_evictions_total", s.evictions),
        ("cache_resident_bytes", s.resident_bytes),
        ("cache_resident_entries", s.resident_entries),
    ] {
        out.push(format!("spanner_{name} {value}"));
    }
    for (kind, value) in [
        ("nonemptiness", s.non_emptiness),
        ("model_check", s.model_check),
        ("count", s.count),
        ("compute", s.compute),
        ("enumerate", s.enumerate),
    ] {
        out.push(format!("spanner_tasks_total{{kind=\"{kind}\"}} {value}"));
    }
    let v = &full.server;
    for (name, value) in [
        ("connections_total", v.connections),
        ("frames_total", v.frames),
        ("busy_rejections_total", v.busy_rejections),
        ("quota_rejections_total", v.quota_rejections),
        ("malformed_frames_total", v.malformed_frames),
        ("oversized_frames_total", v.oversized_frames),
        ("pages_streamed_total", v.pages_streamed),
        ("executor_fallbacks_total", v.remote_fallbacks),
        ("executor_hedges_total", v.remote_hedges),
        ("block_cache_hits_total", v.block_cache_hits),
        ("block_cache_misses_total", v.block_cache_misses),
        ("block_cache_evictions_total", v.block_cache_evictions),
        ("block_cache_resident_bytes", v.block_cache_bytes),
        ("reshards_total", v.reshards),
        ("inflight", v.inflight),
    ] {
        out.push(format!("spanner_server_{name} {value}"));
    }
    for t in &full.tenants {
        let label = format!("{{tenant=\"{}\"}}", t.id);
        for (name, value) in [
            ("docs", t.docs),
            ("docs_quota", t.max_docs),
            ("corpus_bytes", t.corpus_bytes),
            ("corpus_bytes_quota", t.max_corpus_bytes),
            ("cache_resident_bytes", t.cache_resident),
            ("cache_share_bytes", t.cache_share),
            ("admission_weight", t.admission_weight as u64),
            ("inflight", t.inflight),
            ("busy_rejections_total", t.busy_rejections),
            ("quota_rejections_total", t.quota_rejections),
        ] {
            out.push(format!("spanner_tenant_{name}{label} {value}"));
        }
    }
    if let Some(store) = &full.store {
        out.push(format!("spanner_store_log_records {}", store.log_records));
        out.push(format!("spanner_store_log_bytes {}", store.log_bytes));
        out.push(format!("spanner_store_last_seq {}", store.last_seq));
        out.push(format!("spanner_store_snapshot_seq {}", store.snapshot_seq));
        out.push(format!("spanner_store_snapshots_total {}", store.snapshots));
        out.push(format!(
            "spanner_store_snapshot_triggers_total{{trigger=\"cadence\"}} {}",
            store.snapshots_on_cadence
        ));
        out.push(format!(
            "spanner_store_snapshot_triggers_total{{trigger=\"size\"}} {}",
            store.snapshots_on_size
        ));
        if let Some(age) = store.snapshot_age_secs {
            out.push(format!("spanner_store_snapshot_age_seconds {age}"));
        }
    }
    out.join("\n")
}

/// Parses `x0=1,3 x1=- …` into a span-tuple (variable index, then
/// `start,end` or `-` for undefined).
fn parse_tuple(words: &[&str]) -> Result<SpanTuple, ClientError> {
    let bad = |w: &str| ClientError::Protocol(format!("bad tuple component '{w}'"));
    let mut tuple = SpanTuple::empty(words.len());
    for word in words {
        let (var, span) = word.split_once('=').ok_or_else(|| bad(word))?;
        let index: u8 = var
            .strip_prefix('x')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(word))?;
        if span == "-" {
            continue;
        }
        let (start, end) = span.split_once(',').ok_or_else(|| bad(word))?;
        let span = Span::new(
            start.parse().map_err(|_| bad(word))?,
            end.parse().map_err(|_| bad(word))?,
        )
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        tuple.set(Variable(index), span);
    }
    Ok(tuple)
}

fn render_tuples(tuples: &[SpanTuple]) -> String {
    let shown: Vec<String> = tuples
        .iter()
        .take(3)
        .map(|t| {
            let vars: Vec<String> = (0..t.num_vars())
                .map(|v| match t.get(Variable(v as u8)) {
                    Some(span) => format!("[{},{})", span.start, span.end),
                    None => "-".to_string(),
                })
                .collect();
            format!("({})", vars.join(" "))
        })
        .collect();
    let ellipsis = if tuples.len() > 3 { " …" } else { "" };
    format!("{}{}", shown.join(" "), ellipsis)
}
