//! The `spanner-server` binary: boot a long-running evaluation server, a
//! shard worker, or a front-end over a worker pool.
//!
//! ```text
//! spanner-server [--addr HOST:PORT] [--max-inflight N] [--max-frame BYTES]
//!                [--page-size N] [--cache-budget BYTES]
//!                [--block-cache-budget BYTES]
//!                [--data-dir DIR] [--snapshot-every N] [--snapshot-bytes B]
//!                [--reshard-interval-ms MS] [--reshard-rounds N]
//!                [--reshard-cores N]
//!                [--worker] [--workers ADDR,ADDR,...]
//!                [--health-interval-ms MS] [--hedge-after-ms MS]
//!                [--slow-log-ms MS] [--trace-sample-rate R]
//!                [--pipeline-window N] [--sched-workers N]
//!                [--class-queue-depth N] [--fifo]
//! ```
//!
//! `--worker` boots a stateless shard-pass worker (serves `shard_build`,
//! `ping`, `stats`, `shutdown`; refuses registrations and tasks).  Workers
//! keep a `--block-cache-budget`-byte content-addressed cache of decoded
//! blocks (default 64 MiB; 0 disables it) so repeat builds negotiate down
//! to hash-sized frames.
//! `--workers a,b` boots a front-end whose sharded matrix builds scatter
//! over the listed worker processes (falling back to local execution when
//! a worker fails).  The two are the halves of a distributed pool: boot N
//! workers, then one front-end pointing at them.  The front-end probes
//! worker health every `--health-interval-ms` (default 1000; 0 disables
//! probing — dead workers are then only discovered at scatter time), and
//! hedges straggler shards to a second worker after `--hedge-after-ms`
//! (default 0 = adaptive, 3× the median observed pass latency).
//!
//! `--data-dir DIR` makes the server durable: corpus verbs are appended to
//! `DIR/corpus.log`, a snapshot is cut every `--snapshot-every` verbs
//! (default 256; 0 disables periodic snapshots) or whenever the log grows
//! past `--snapshot-bytes` (default 0 = no size trigger), and on boot the
//! store is replayed — tenants, quotas, wire ids and shard layouts come
//! back bit-identically, with zero `auto_k` re-probing.  A recovered boot
//! prints `RECOVERED docs=<n> tenants=<n> verbs=<n> snapshot=<bool>`
//! before `LISTENING`.
//!
//! `--reshard-interval-ms MS` enables the background auto re-shard policy:
//! every interval, documents whose registered shard count persistently
//! diverges (for `--reshard-rounds` consecutive rounds, default 3) from
//! the measured cost model's advice are transparently re-registered at the
//! advised count.
//!
//! `--slow-log-ms MS` arms the slow-query log: any task slower than MS
//! milliseconds emits its span tree as one structured JSON line on stderr
//! (rate-limited to one line per second).  `--trace-sample-rate R` (a
//! fraction in `[0, 1]`) additionally traces that share of untraced
//! requests server-side, emitting `sampled_query` lines on the same
//! rate-limited stderr channel.
//!
//! The v3 pipelining knobs: `--pipeline-window N` bounds the per-
//! connection in-flight window (default 32), `--sched-workers N` sizes the
//! QoS dispatcher pool (default 4), `--class-queue-depth N` bounds each
//! weighted-fair class queue (default 64), and `--fifo` collapses the
//! scheduler to a single FIFO class — the experiment baseline, not a
//! production mode.
//!
//! Prints `LISTENING <addr>` once the socket is bound (scripts parse this
//! to learn an ephemeral port), then serves until a client sends the
//! `shutdown` verb; exits 0 after a clean drain.

use spanner_server::{
    PersistenceOptions, RemoteExecutor, ReshardOptions, Server, ServerConfig, ServerOptions,
};
use spanner_slp_core::Service;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut cache_budget: Option<usize> = None;
    let mut workers: Vec<String> = Vec::new();
    let mut data_dir: Option<PathBuf> = None;
    let mut snapshot_every: u64 = 256;
    let mut snapshot_bytes: u64 = 0;
    let mut health_interval_ms: u64 = 1000;
    let mut hedge_after_ms: u64 = 0;
    let mut reshard_interval_ms: Option<u64> = None;
    let mut reshard_rounds: u32 = ReshardOptions::default().rounds;
    let mut reshard_cores: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--addr" => addr = value(i),
            "--max-inflight" => config.max_inflight = parse(&value(i), "--max-inflight"),
            "--max-frame" => config.max_frame_len = parse(&value(i), "--max-frame"),
            "--page-size" => config.page_size = parse(&value(i), "--page-size"),
            "--cache-budget" => cache_budget = Some(parse(&value(i), "--cache-budget")),
            "--block-cache-budget" => {
                config.block_cache_budget = parse(&value(i), "--block-cache-budget")
            }
            "--data-dir" => data_dir = Some(PathBuf::from(value(i))),
            "--snapshot-every" => snapshot_every = parse(&value(i), "--snapshot-every") as u64,
            "--snapshot-bytes" => snapshot_bytes = parse(&value(i), "--snapshot-bytes") as u64,
            "--health-interval-ms" => {
                health_interval_ms = parse(&value(i), "--health-interval-ms") as u64
            }
            "--hedge-after-ms" => hedge_after_ms = parse(&value(i), "--hedge-after-ms") as u64,
            "--slow-log-ms" => config.slow_log_ms = parse(&value(i), "--slow-log-ms") as u64,
            "--trace-sample-rate" => {
                config.trace_sample_rate = parse_rate(&value(i), "--trace-sample-rate")
            }
            "--pipeline-window" => config.pipeline_window = parse(&value(i), "--pipeline-window"),
            "--sched-workers" => config.scheduler_workers = parse(&value(i), "--sched-workers"),
            "--class-queue-depth" => {
                config.class_queue_depth = parse(&value(i), "--class-queue-depth")
            }
            "--fifo" => {
                config.fifo_scheduler = true;
                i += 1;
                continue;
            }
            "--reshard-interval-ms" => {
                reshard_interval_ms = Some(parse(&value(i), "--reshard-interval-ms") as u64)
            }
            "--reshard-rounds" => reshard_rounds = parse(&value(i), "--reshard-rounds") as u32,
            "--reshard-cores" => reshard_cores = Some(parse(&value(i), "--reshard-cores")),
            "--worker" => {
                config.worker = true;
                i += 1;
                continue;
            }
            "--workers" => {
                workers = value(i)
                    .split(',')
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--help" | "-h" => {
                println!(
                    "usage: spanner-server [--addr HOST:PORT] [--max-inflight N] \
                     [--max-frame BYTES] [--page-size N] [--cache-budget BYTES] \
                     [--block-cache-budget BYTES] \
                     [--data-dir DIR] [--snapshot-every N] [--snapshot-bytes B] \
                     [--reshard-interval-ms MS] [--reshard-rounds N] [--reshard-cores N] \
                     [--worker] [--workers ADDR,ADDR,...] \
                     [--health-interval-ms MS] [--hedge-after-ms MS] [--slow-log-ms MS] \
                     [--trace-sample-rate R] [--pipeline-window N] [--sched-workers N] \
                     [--class-queue-depth N] [--fifo]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if config.worker && !workers.is_empty() {
        eprintln!("--worker and --workers are mutually exclusive roles");
        std::process::exit(2);
    }
    if config.worker && data_dir.is_some() {
        eprintln!("--worker processes are stateless; --data-dir makes no sense there");
        std::process::exit(2);
    }

    let mut builder = Service::builder();
    if let Some(budget) = cache_budget {
        builder = builder.cache_budget(budget);
    }
    let remote = (!workers.is_empty()).then(|| {
        let mut executor = RemoteExecutor::new(workers);
        if hedge_after_ms > 0 {
            executor = executor.with_hedge_after(Duration::from_millis(hedge_after_ms));
        }
        if health_interval_ms > 0 {
            executor = executor.with_health_check(Duration::from_millis(health_interval_ms));
        }
        Arc::new(executor)
    });
    if let Some(remote) = &remote {
        builder = builder.shard_executor(remote.clone());
    }
    let options = ServerOptions {
        config,
        persistence: data_dir.map(|dir| PersistenceOptions {
            dir,
            snapshot_every,
            snapshot_bytes,
        }),
        remote,
        reshard: reshard_interval_ms.map(|ms| ReshardOptions {
            interval: Duration::from_millis(ms),
            rounds: reshard_rounds,
            cores: reshard_cores,
        }),
    };
    let server = match Server::bind_with(addr.as_str(), builder.build(), options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(report) = server.recovery() {
        println!(
            "RECOVERED docs={} tenants={} verbs={} snapshot={}",
            report.documents, report.tenants, report.replayed_verbs, report.from_snapshot
        );
    }
    println!("LISTENING {}", server.local_addr());
    // Scripts wait for the line above; make sure it is not stuck in a pipe
    // buffer.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    server.join();
    println!("SHUTDOWN clean");
}

fn parse(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an unsigned integer, got '{value}'");
        std::process::exit(2);
    })
}

fn parse_rate(value: &str, flag: &str) -> f64 {
    let rate: f64 = value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a fraction in [0, 1], got '{value}'");
        std::process::exit(2);
    });
    if !(0.0..=1.0).contains(&rate) {
        eprintln!("{flag} expects a fraction in [0, 1], got '{value}'");
        std::process::exit(2);
    }
    rate
}
