//! The `spanner-server` binary: boot a long-running evaluation server, a
//! shard worker, or a front-end over a worker pool.
//!
//! ```text
//! spanner-server [--addr HOST:PORT] [--max-inflight N] [--max-frame BYTES]
//!                [--page-size N] [--cache-budget BYTES]
//!                [--worker] [--workers ADDR,ADDR,...]
//! ```
//!
//! `--worker` boots a stateless shard-pass worker (serves `shard_build`,
//! `ping`, `stats`, `shutdown`; refuses registrations and tasks).
//! `--workers a,b` boots a front-end whose sharded matrix builds scatter
//! over the listed worker processes (falling back to local execution when
//! a worker fails).  The two are the halves of a distributed pool: boot N
//! workers, then one front-end pointing at them.
//!
//! Prints `LISTENING <addr>` once the socket is bound (scripts parse this
//! to learn an ephemeral port), then serves until a client sends the
//! `shutdown` verb; exits 0 after a clean drain.

use spanner_server::{RemoteExecutor, Server, ServerConfig};
use spanner_slp_core::Service;
use std::sync::Arc;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut cache_budget: Option<usize> = None;
    let mut workers: Vec<String> = Vec::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--addr" => addr = value(i),
            "--max-inflight" => config.max_inflight = parse(&value(i), "--max-inflight"),
            "--max-frame" => config.max_frame_len = parse(&value(i), "--max-frame"),
            "--page-size" => config.page_size = parse(&value(i), "--page-size"),
            "--cache-budget" => cache_budget = Some(parse(&value(i), "--cache-budget")),
            "--worker" => {
                config.worker = true;
                i += 1;
                continue;
            }
            "--workers" => {
                workers = value(i)
                    .split(',')
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--help" | "-h" => {
                println!(
                    "usage: spanner-server [--addr HOST:PORT] [--max-inflight N] \
                     [--max-frame BYTES] [--page-size N] [--cache-budget BYTES] \
                     [--worker] [--workers ADDR,ADDR,...]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if config.worker && !workers.is_empty() {
        eprintln!("--worker and --workers are mutually exclusive roles");
        std::process::exit(2);
    }

    let mut builder = Service::builder();
    if let Some(budget) = cache_budget {
        builder = builder.cache_budget(budget);
    }
    if !workers.is_empty() {
        builder = builder.shard_executor(Arc::new(RemoteExecutor::new(workers)));
    }
    let server = match Server::bind(addr.as_str(), builder.build(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.local_addr());
    // Scripts wait for the line above; make sure it is not stuck in a pipe
    // buffer.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    server.join();
    println!("SHUTDOWN clean");
}

fn parse(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an unsigned integer, got '{value}'");
        std::process::exit(2);
    })
}
