//! The `spanner-server` binary: boot a long-running evaluation server.
//!
//! ```text
//! spanner-server [--addr HOST:PORT] [--max-inflight N] [--max-frame BYTES]
//!                [--page-size N] [--cache-budget BYTES]
//! ```
//!
//! Prints `LISTENING <addr>` once the socket is bound (scripts parse this
//! to learn an ephemeral port), then serves until a client sends the
//! `shutdown` verb; exits 0 after a clean drain.

use spanner_server::{Server, ServerConfig};
use spanner_slp_core::Service;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut cache_budget: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--addr" => addr = value(i),
            "--max-inflight" => config.max_inflight = parse(&value(i), "--max-inflight"),
            "--max-frame" => config.max_frame_len = parse(&value(i), "--max-frame"),
            "--page-size" => config.page_size = parse(&value(i), "--page-size"),
            "--cache-budget" => cache_budget = Some(parse(&value(i), "--cache-budget")),
            "--help" | "-h" => {
                println!(
                    "usage: spanner-server [--addr HOST:PORT] [--max-inflight N] \
                     [--max-frame BYTES] [--page-size N] [--cache-budget BYTES]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let mut builder = Service::builder();
    if let Some(budget) = cache_budget {
        builder = builder.cache_budget(budget);
    }
    let server = match Server::bind(addr.as_str(), builder.build(), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.local_addr());
    // Scripts wait for the line above; make sure it is not stuck in a pipe
    // buffer.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    server.join();
    println!("SHUTDOWN clean");
}

fn parse(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an unsigned integer, got '{value}'");
        std::process::exit(2);
    })
}
