//! Clients for the wire protocol: the blocking [`Client`] (typed calls
//! over one TCP connection, page streaming for `enumerate`), the v3
//! [`PipelinedClient`] (many requests in flight on one socket, responses
//! matched back by request id), and a busy-retry helper with capped
//! exponential backoff.
//!
//! [`Client`] keeps the lock-step discipline (one request, then its
//! response — or its page stream): a simple synchronous state machine
//! whose frames carry no request id, byte-identical to a v2 client.
//! [`PipelinedClient`] tags every submission with a fresh id and lets the
//! server complete them out of order — `submit` as fast as the socket
//! accepts, then `poll` replies in completion order.  Server-side errors
//! surface as [`ClientError::Server`] with the structured [`ErrorCode`],
//! so callers can distinguish backpressure ([`ErrorCode::Busy`] — retry)
//! and deadline shedding ([`ErrorCode::Expired`]) from real failures.

use crate::proto::{
    ErrorCode, FrameMeta, ProtoError, Request, Response, WireObsStats, WireServerStats,
    WireServiceStats, WireStats, WireStoreStats, WireTask, WireTenantStats,
};
use spanner::SpanTuple;
use spanner_slp_core::trace::{splitmix64, SpanRec};
use spanner_store::TenantSpec;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide trace-id counter: ids are `pid << 32 | counter`, unique
/// within a process and practically unique across the clients of one
/// server (never 0, which the wire reserves for "unsampled").
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_trace_id() -> u64 {
    (std::process::id() as u64) << 32 | TRACE_COUNTER.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff
}

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection refused, reset, …).
    Io(io::Error),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered with a structured error frame.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::Server { code, detail } => write!(f, "server error [{code}]: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

impl ClientError {
    /// `true` if this is the server's structured backpressure signal
    /// ([`ErrorCode::Busy`]) — the one error that invites a retry.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

/// The document-registration receipt of `add_doc` / `add_doc_sharded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocReceipt {
    /// Wire id for task requests.
    pub id: u64,
    /// Shard count the server registered the document with (interesting
    /// after `add_doc_sharded(…, 0)`, where the server auto-tunes it).
    pub shards: u64,
    /// Document length in bytes.
    pub len: u64,
}

/// The full `stats` answer: service, transport, per-tenant rows and (on a
/// durable server) store metrics.
#[derive(Debug, Clone, Default)]
pub struct FullStats {
    /// Service-wide evaluation counters.
    pub service: WireServiceStats,
    /// Transport-level counters.
    pub server: WireServerStats,
    /// One row per known tenant, ascending by id.
    pub tenants: Vec<WireTenantStats>,
    /// Durable-store metrics; `None` on an in-memory server.
    pub store: Option<WireStoreStats>,
    /// Latency histograms and compaction timings; `None` on servers
    /// predating the tracing subsystem.
    pub obs: Option<WireObsStats>,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The tenant namespace corpus verbs and tasks run in; `0` (the
    /// default tenant) keeps frames byte-identical to pre-tenancy clients.
    tenant: u32,
    /// When `true`, every task request carries a fresh trace id (`"tr"`)
    /// and the server's span tree is captured in [`Client::last_trace`].
    tracing: bool,
    /// The span forest of the most recent traced response.
    last_trace: Option<Vec<SpanRec>>,
}

impl Client {
    /// Connects to a server (as the default tenant).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            tenant: 0,
            tracing: false,
            last_trace: None,
        })
    }

    /// Turns request tracing on or off: when on, every task request is
    /// *sampled* — it carries a fresh trace id, the server records spans
    /// end-to-end (through workers, for sharded documents), and the
    /// stitched tree is captured in [`Client::last_trace`].
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.last_trace = None;
        }
    }

    /// The span forest of the most recent traced task response (`None`
    /// before any traced call, or when tracing is off).
    pub fn last_trace(&self) -> Option<&[SpanRec]> {
        self.last_trace.as_deref()
    }

    /// The trace id the next task request will carry: a fresh id when
    /// tracing is on, 0 (unsampled) otherwise.
    fn task_trace_id(&self) -> u64 {
        if self.tracing {
            next_trace_id()
        } else {
            0
        }
    }

    /// Captures the `"trace"` field of a task response.
    fn capture_trace(&mut self, trace: &Option<Vec<SpanRec>>) {
        if let Some(spans) = trace {
            self.last_trace = Some(spans.clone());
        }
    }

    /// Switches the tenant namespace subsequent calls run in (`0` is the
    /// default tenant).
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// Builder-style [`Client::set_tenant`].
    pub fn with_tenant(mut self, tenant: u32) -> Client {
        self.set_tenant(tenant);
        self
    }

    /// The tenant namespace this client currently runs in.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut frame = request.encode();
        frame.push(b'\n');
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = Vec::new();
        let n = self.reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        if line.last() == Some(&b'\n') {
            line.pop();
        }
        Ok(Response::decode(&line)?)
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        let response = self.recv()?;
        if let Response::Error { code, detail } = response {
            return Err(ClientError::Server { code, detail });
        }
        Ok(response)
    }

    /// Probes liveness; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong { proto } => Ok(proto),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Compiles and pools a query; returns its wire id.
    pub fn add_query(&mut self, pattern: &str, alphabet: &[u8]) -> Result<u64, ClientError> {
        let request = Request::AddQuery {
            pattern: pattern.to_string(),
            alphabet: alphabet.to_vec(),
        };
        match self.call(&request)? {
            Response::QueryAdded { id } => Ok(id),
            other => Err(unexpected("query id", &other)),
        }
    }

    /// Compresses and pools a document (monolithic).
    pub fn add_doc(&mut self, text: &[u8]) -> Result<DocReceipt, ClientError> {
        self.add_doc_request(&Request::AddDoc {
            tenant: self.tenant,
            text: text.to_vec(),
        })
    }

    /// Compresses and pools a document split into `k` shards; `k = 0` lets
    /// the server auto-tune the count (see the receipt's `shards`).
    pub fn add_doc_sharded(&mut self, text: &[u8], k: u64) -> Result<DocReceipt, ClientError> {
        self.add_doc_request(&Request::AddDocSharded {
            tenant: self.tenant,
            k,
            text: text.to_vec(),
        })
    }

    fn add_doc_request(&mut self, request: &Request) -> Result<DocReceipt, ClientError> {
        match self.call(request)? {
            Response::DocAdded { id, shards, len } => Ok(DocReceipt { id, shards, len }),
            other => Err(unexpected("document receipt", &other)),
        }
    }

    /// Unregisters a pooled document: its wire id stops resolving and the
    /// server invalidates every matrix the document held in its cache.
    pub fn remove_doc(&mut self, doc: u64) -> Result<(), ClientError> {
        match self.call(&Request::RemoveDoc {
            tenant: self.tenant,
            doc,
        })? {
            Response::DocRemoved { id } if id == doc => Ok(()),
            other => Err(unexpected("removal receipt", &other)),
        }
    }

    /// Non-emptiness of a pooled pair.
    pub fn non_empty(&mut self, query: u64, doc: u64) -> Result<(bool, WireStats), ClientError> {
        match self.task(query, doc, WireTask::NonEmptiness)? {
            Response::NonEmpty { value, stats, .. } => Ok((value, stats)),
            other => Err(unexpected("non-emptiness verdict", &other)),
        }
    }

    /// Model-checks a tuple against a pooled pair.
    pub fn model_check(
        &mut self,
        query: u64,
        doc: u64,
        tuple: &SpanTuple,
    ) -> Result<(bool, WireStats), ClientError> {
        match self.task(query, doc, WireTask::ModelCheck(tuple.clone()))? {
            Response::Checked { value, stats, .. } => Ok((value, stats)),
            other => Err(unexpected("model-check verdict", &other)),
        }
    }

    /// Counts the results of a pooled pair.
    pub fn count(&mut self, query: u64, doc: u64) -> Result<(u128, WireStats), ClientError> {
        match self.task(query, doc, WireTask::Count)? {
            Response::Counted { value, stats, .. } => Ok((value, stats)),
            other => Err(unexpected("count", &other)),
        }
    }

    /// Materialises (up to `limit`) results of a pooled pair.
    pub fn compute(
        &mut self,
        query: u64,
        doc: u64,
        limit: Option<u64>,
    ) -> Result<(Vec<SpanTuple>, WireStats), ClientError> {
        match self.task(query, doc, WireTask::Compute { limit })? {
            Response::Tuples { tuples, stats, .. } => Ok((tuples, stats)),
            other => Err(unexpected("tuples", &other)),
        }
    }

    /// Streams an enumeration window, invoking `on_page` for every page as
    /// it arrives (so the caller observes the per-page delay), and returns
    /// all tuples plus the terminal stats.
    pub fn enumerate(
        &mut self,
        query: u64,
        doc: u64,
        skip: u64,
        limit: Option<u64>,
        mut on_page: impl FnMut(&[SpanTuple]),
    ) -> Result<(Vec<SpanTuple>, WireStats), ClientError> {
        self.send(&Request::Task {
            tenant: self.tenant,
            trace: self.task_trace_id(),
            query,
            doc,
            task: WireTask::Enumerate { skip, limit },
        })?;
        let mut all = Vec::new();
        loop {
            match self.recv()? {
                Response::Page { tuples } => {
                    on_page(&tuples);
                    all.extend(tuples);
                }
                Response::StreamEnd {
                    streamed,
                    stats,
                    trace,
                } => {
                    self.capture_trace(&trace);
                    if streamed as usize != all.len() {
                        return Err(ClientError::Protocol(format!(
                            "stream announced {streamed} tuples but delivered {}",
                            all.len()
                        )));
                    }
                    return Ok((all, stats));
                }
                Response::Error { code, detail } => {
                    return Err(ClientError::Server { code, detail })
                }
                other => return Err(unexpected("page or stream end", &other)),
            }
        }
    }

    /// Runs one task and returns the raw response frame (errors already
    /// lifted to [`ClientError::Server`]).  Prefer the typed wrappers; this
    /// is for tests and tooling.  Not for [`WireTask::Enumerate`] — that
    /// response is a stream, use [`Client::enumerate`].
    pub fn task(&mut self, query: u64, doc: u64, task: WireTask) -> Result<Response, ClientError> {
        debug_assert!(
            !matches!(task, WireTask::Enumerate { .. }),
            "enumerate responses are streams; use Client::enumerate"
        );
        let response = self.call(&Request::Task {
            tenant: self.tenant,
            trace: self.task_trace_id(),
            query,
            doc,
            task,
        })?;
        match &response {
            Response::NonEmpty { trace, .. }
            | Response::Checked { trace, .. }
            | Response::Counted { trace, .. }
            | Response::Tuples { trace, .. } => self.capture_trace(trace),
            _ => {}
        }
        Ok(response)
    }

    /// Creates a tenant from a full spec (quotas, cache share, admission
    /// weight).  Fails if the id is already taken.
    pub fn tenant_create(&mut self, spec: TenantSpec) -> Result<(), ClientError> {
        let id = spec.id;
        match self.call(&Request::TenantCreate { spec })? {
            Response::TenantOk { id: got, created } if got == id && created => Ok(()),
            other => Err(unexpected("tenant receipt", &other)),
        }
    }

    /// Reconfigures an existing tenant (existing usage is never re-checked
    /// against the new quotas; only future registrations are).
    pub fn tenant_update(&mut self, spec: TenantSpec) -> Result<(), ClientError> {
        let id = spec.id;
        match self.call(&Request::TenantUpdate { spec })? {
            Response::TenantOk { id: got, created } if got == id && !created => Ok(()),
            other => Err(unexpected("tenant receipt", &other)),
        }
    }

    /// Snapshots the server's service-wide and transport-level counters.
    /// See [`Client::stats_full`] for the tenant and store breakdowns.
    pub fn stats(&mut self) -> Result<(WireServiceStats, WireServerStats), ClientError> {
        self.stats_full().map(|full| (full.service, full.server))
    }

    /// Snapshots everything the `stats` verb exports: service counters,
    /// transport counters, per-tenant rows, durable-store metrics and the
    /// observability block (histograms, hedge window, compaction timings).
    pub fn stats_full(&mut self) -> Result<FullStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats {
                service,
                server,
                tenants,
                store,
                obs,
            } => Ok(FullStats {
                service,
                server,
                tenants,
                store,
                obs,
            }),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown acknowledgement", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

// ---------------------------------------------------------------------------
// Pipelined client (protocol v3)
// ---------------------------------------------------------------------------

/// One completed pipelined request, handed back by
/// [`PipelinedClient::poll`] in *completion* order.
#[derive(Debug)]
pub struct PipelinedReply {
    /// The id [`PipelinedClient::submit`] returned for this request.
    pub id: u64,
    /// The terminal response frame.  Per-request failures (busy, expired,
    /// unknown id, eval errors) arrive here as [`Response::Error`] —
    /// [`ClientError`] is reserved for transport and protocol faults that
    /// affect the whole connection.
    pub response: Response,
    /// Tuples streamed ahead of the terminal frame (enumerate pages;
    /// empty for every other task kind).
    pub pages: Vec<SpanTuple>,
}

impl PipelinedReply {
    /// `true` when the terminal frame is a structured server error.
    pub fn is_error(&self) -> bool {
        matches!(self.response, Response::Error { .. })
    }
}

/// A v3 pipelined connection: submit many tasks without waiting, then
/// poll replies as the server completes them — out of order, interleaved
/// with the pages of concurrent enumerations, all on one socket.
///
/// The server bounds the in-flight window per connection
/// (`pipeline_window`); past it, submissions block in TCP rather than
/// drawing errors.  For lock-step semantics (and v2 servers), use
/// [`Client`].
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    tenant: u32,
    next_id: u64,
    /// Submitted but not yet completed request ids.
    outstanding: usize,
    /// Pages accumulated for still-running enumerations, by request id.
    pages: HashMap<u64, Vec<SpanTuple>>,
}

impl PipelinedClient {
    /// Connects to a v3 server (as the default tenant).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            tenant: 0,
            next_id: 1,
            outstanding: 0,
            pages: HashMap::new(),
        })
    }

    /// Switches the tenant namespace subsequent submissions run in.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// Submitted requests whose replies have not been polled yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submits one task without waiting for its result; returns the id its
    /// reply will carry.
    pub fn submit(&mut self, query: u64, doc: u64, task: WireTask) -> Result<u64, ClientError> {
        self.submit_meta(query, doc, task, 0)
    }

    /// [`PipelinedClient::submit`] with a deadline budget: if the task is
    /// still queued server-side when `deadline` has elapsed since the
    /// server read the frame, it is shed with [`ErrorCode::Expired`]
    /// instead of being executed late.
    pub fn submit_with_deadline(
        &mut self,
        query: u64,
        doc: u64,
        task: WireTask,
        deadline: Duration,
    ) -> Result<u64, ClientError> {
        self.submit_meta(query, doc, task, (deadline.as_micros() as u64).max(1))
    }

    fn submit_meta(
        &mut self,
        query: u64,
        doc: u64,
        task: WireTask,
        deadline_us: u64,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut frame = Request::Task {
            tenant: self.tenant,
            trace: 0,
            query,
            doc,
            task,
        }
        .encode_with(FrameMeta { id, deadline_us });
        frame.push(b'\n');
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        self.outstanding += 1;
        Ok(id)
    }

    /// Blocks until the next request *completes* (whichever finishes
    /// first, not submission order) and returns its reply.  Pages of
    /// still-running enumerations are absorbed along the way and handed
    /// back with their own terminal frame.
    pub fn poll(&mut self) -> Result<PipelinedReply, ClientError> {
        if self.outstanding == 0 {
            return Err(ClientError::Protocol(
                "poll with no outstanding requests".into(),
            ));
        }
        loop {
            let mut line = Vec::new();
            let n = self.reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("server closed the connection".into()));
            }
            if line.last() == Some(&b'\n') {
                line.pop();
            }
            let (id, response) = Response::decode_framed(&line)?;
            if id == 0 {
                return Err(ClientError::Protocol(format!(
                    "response frame without a request id: {response:?}"
                )));
            }
            if let Response::Page { tuples } = response {
                self.pages.entry(id).or_default().extend(tuples);
                continue;
            }
            self.outstanding -= 1;
            return Ok(PipelinedReply {
                id,
                response,
                pages: self.pages.remove(&id).unwrap_or_default(),
            });
        }
    }

    /// Polls until every outstanding request has completed.
    pub fn drain(&mut self) -> Result<Vec<PipelinedReply>, ClientError> {
        let mut replies = Vec::with_capacity(self.outstanding);
        while self.outstanding > 0 {
            replies.push(self.poll()?);
        }
        Ok(replies)
    }
}

// ---------------------------------------------------------------------------
// Busy retry with capped exponential backoff
// ---------------------------------------------------------------------------

/// Process-wide decorrelation salt for retry jitter: every sleeping
/// retrier draws a distinct pseudo-random stream, deterministically.
static RETRY_SALT: AtomicU64 = AtomicU64::new(1);

/// Largest multiple of the base backoff the exponential ramp reaches
/// (attempt 6 and beyond sleep `base × 64`, jittered).
const BACKOFF_CAP_SHIFT: u32 = 6;

/// Calls `operation` until it succeeds or fails with something other than
/// the server's `busy` backpressure signal (at most `attempts` tries; the
/// last busy error is returned if the budget runs out).
///
/// Between attempts it sleeps an exponentially growing multiple of
/// `backoff` — `1×, 2×, 4×, … 64×` (capped) — scaled by a deterministic
/// pseudo-random jitter in `[0.5, 1.0]`.  The ramp sheds load from an
/// overloaded server instead of hammering it at a fixed rate, and the
/// jitter decorrelates the retry herd a shed synchronizes: without it,
/// every client rejected in the same instant would retry in the same
/// instant, forever.
pub fn retry_busy<T>(
    attempts: usize,
    backoff: Duration,
    mut operation: impl FnMut() -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut last = None;
    for attempt in 0..attempts.max(1) as u32 {
        match operation() {
            Err(e) if e.is_busy() => {
                last = Some(e);
                std::thread::sleep(backoff_delay(
                    backoff,
                    attempt,
                    RETRY_SALT.fetch_add(1, Ordering::Relaxed),
                ));
            }
            other => return other,
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// The sleep before retry `attempt + 1`: `base × 2^min(attempt, cap)`,
/// jittered into `[0.5, 1.0]` of itself by a SplitMix64 draw over `salt`.
/// Pure, so the policy is testable without sleeping.
fn backoff_delay(base: Duration, attempt: u32, salt: u64) -> Duration {
    let ramp = base.saturating_mul(1u32 << attempt.min(BACKOFF_CAP_SHIFT));
    // 53 uniform mantissa bits → factor in [0.5, 1.0].
    let unit = (splitmix64(salt) >> 11) as f64 / (1u64 << 53) as f64;
    ramp.mul_f64(0.5 + unit / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_ramps_exponentially_and_caps() {
        let base = Duration::from_millis(10);
        for attempt in 0..12 {
            let delay = backoff_delay(base, attempt, 42);
            let ramp = base * (1 << attempt.min(BACKOFF_CAP_SHIFT));
            assert!(
                delay >= ramp / 2,
                "attempt {attempt}: {delay:?} < half ramp"
            );
            assert!(delay <= ramp, "attempt {attempt}: {delay:?} > full ramp");
        }
        // The cap: attempts past the shift all ramp to the same ceiling.
        assert!(backoff_delay(base, 40, 7) <= base * 64);
    }

    #[test]
    fn jitter_is_deterministic_but_decorrelated() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff_delay(base, 3, 9), backoff_delay(base, 3, 9));
        // Two clients retrying the same attempt draw different delays —
        // the herd decorrelates.
        let distinct: std::collections::HashSet<Duration> =
            (0..32).map(|salt| backoff_delay(base, 3, salt)).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct delays",
            distinct.len()
        );
    }
}
