//! The remote shard-execution backend: a pool client implementing the
//! evaluation core's [`ShardExecutor`] over the wire protocol.
//!
//! A [`RemoteExecutor`] holds the addresses of long-running
//! `spanner-server --worker` processes.  When a sharded matrix build
//! scatters, each shard's [`ShardJob`] is serialized as a `shard_build`
//! frame — the query's end-transformed automaton plus the shard's
//! *standalone rule block*, never the document text — and shipped to a
//! worker (jobs spread round-robin over the pool; concurrent shards of
//! one build reach different workers in parallel).  The worker answers
//! with the block's three-valued summaries as packed bitplanes — 2 bits
//! per entry — so the gather leg is *summary-sized* — the full marker-set
//! matrices of Lemma 6.5 stay on whichever side computed them, and the
//! leaf tables are rebuilt by the coordinator from the automaton alone.
//!
//! **Results are never lost.**  Every failure — connection refused, a
//! worker dying mid-build, a timeout, a malformed or short reply, busy
//! backpressure beyond the retry budget — falls back to the in-process
//! [`LocalExecutor`] for that shard, marks the outcome as a fallback
//! (surfaced through `ShardBuildStats::fallbacks` and
//! [`RemoteExecutor::fallback_count`]) and drops the broken connection so
//! the next build reconnects cleanly.  A build against a fully dead pool
//! therefore degrades to exactly the local scatter-gather path.

use crate::client::ClientError;
use crate::proto::{ErrorCode, Request, Response, WireNfa};
use spanner_slp_core::executor::{LocalExecutor, ShardExecutor, ShardJob, ShardOutcome};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One pooled worker connection, re-established lazily after failures.
#[derive(Debug)]
struct WorkerSlot {
    addr: String,
    /// The live connection, if any.  The mutex also serializes the
    /// lock-step request/response exchange per worker; shards assigned to
    /// *different* workers proceed in parallel.
    conn: Mutex<Option<Conn>>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A pool client that executes shard passes on remote worker processes,
/// falling back to [`LocalExecutor`] whenever a worker cannot answer.
/// See the module docs for the failure semantics.
#[derive(Debug)]
pub struct RemoteExecutor {
    workers: Vec<WorkerSlot>,
    /// Per-exchange read/write timeout: a worker that stalls longer than
    /// this has its shard re-run locally.
    timeout: Duration,
    /// Frame cap, both ways: scatter frames larger than this are not
    /// shipped at all (the workers' `ServerConfig::max_frame_len` would
    /// reject them anyway — falling back locally up front avoids moving
    /// megabytes just to be refused on every build), and worker replies
    /// are read at most this far, so a misbehaving peer streaming
    /// newline-free bytes cannot grow coordinator memory without bound.
    max_frame: usize,
    /// How many times a `busy` answer is retried before falling back.
    busy_retries: usize,
    /// Round-robin cursor over the pool, so jobs spread across every
    /// worker regardless of shard counts (a `k = 2` document on a 4-worker
    /// pool must not pin the same two workers forever) and concurrent
    /// builds interleave over the whole pool.
    next_worker: AtomicU64,
    fallbacks: AtomicU64,
    remote_passes: AtomicU64,
    scatter_bytes: AtomicU64,
    gather_bytes: AtomicU64,
}

impl RemoteExecutor {
    /// Creates a pool client over worker addresses (e.g.
    /// `["127.0.0.1:7001", "127.0.0.1:7002"]`) with a 10-second exchange
    /// timeout.
    ///
    /// # Panics
    /// If `addrs` is empty — an empty pool is a configuration error, not a
    /// "silently always local" mode.
    pub fn new<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> RemoteExecutor {
        let workers: Vec<WorkerSlot> = addrs
            .into_iter()
            .map(|addr| WorkerSlot {
                addr: addr.into(),
                conn: Mutex::new(None),
            })
            .collect();
        assert!(
            !workers.is_empty(),
            "a remote pool needs at least one worker"
        );
        RemoteExecutor {
            workers,
            timeout: Duration::from_secs(10),
            busy_retries: 20,
            max_frame: crate::server::ServerConfig::default().max_frame_len,
            next_worker: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            remote_passes: AtomicU64::new(0),
            scatter_bytes: AtomicU64::new(0),
            gather_bytes: AtomicU64::new(0),
        }
    }

    /// Sets the per-exchange timeout (connection, write and read).
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteExecutor {
        self.timeout = timeout;
        self
    }

    /// Sets the frame cap, which must match the workers'
    /// `ServerConfig::max_frame_len` (the default matches the server
    /// default).  Shard blocks that would exceed it run locally without
    /// touching the wire.
    pub fn with_max_frame(mut self, max_frame: usize) -> RemoteExecutor {
        self.max_frame = max_frame.max(1);
        self
    }

    /// Number of workers in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Shard passes completed remotely over this executor's lifetime.
    pub fn remote_pass_count(&self) -> u64 {
        self.remote_passes.load(Ordering::Relaxed)
    }

    /// Shard passes that fell back to local execution.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Bytes shipped to workers (serialized shard blocks + automata) —
    /// the scatter leg of the wire cost.
    pub fn scatter_bytes(&self) -> u64 {
        self.scatter_bytes.load(Ordering::Relaxed)
    }

    /// Bytes received from workers (summary rows) — the gather leg.
    pub fn gather_bytes(&self) -> u64 {
        self.gather_bytes.load(Ordering::Relaxed)
    }

    /// One lock-step `shard_build` exchange with the worker owning this
    /// shard.  Any error leaves the slot disconnected so the next call
    /// starts from a fresh connection.
    fn try_remote(
        &self,
        job: &ShardJob<'_>,
    ) -> Result<Vec<spanner_slp_core::matrices::RMatrix>, ClientError> {
        let request = Request::ShardBuild {
            nfa: WireNfa::from_nfa(job.nfa),
            rules: job.block.rules().to_vec(),
            root: job.block.start().0 as u64,
        };
        let mut frame = request.encode();
        frame.push(b'\n');
        if frame.len() > self.max_frame {
            // The workers would answer `oversized` on every attempt — do
            // not ship megabytes just to be refused; run this shard
            // locally up front.
            return Err(ClientError::Protocol(format!(
                "shard block frame of {} bytes exceeds the {}-byte worker frame cap",
                frame.len(),
                self.max_frame
            )));
        }

        let pick = self.next_worker.fetch_add(1, Ordering::Relaxed) as usize;
        let slot = &self.workers[pick % self.workers.len()];
        let mut guard = slot.conn.lock().expect("worker slot poisoned");

        let result = (|| -> Result<Vec<spanner_slp_core::matrices::RMatrix>, ClientError> {
            for attempt in 0.. {
                let conn = match guard.as_mut() {
                    Some(conn) => conn,
                    None => {
                        let stream = TcpStream::connect(slot.addr.as_str())?;
                        stream.set_nodelay(true)?;
                        stream.set_read_timeout(Some(self.timeout))?;
                        stream.set_write_timeout(Some(self.timeout))?;
                        *guard = Some(Conn {
                            reader: BufReader::new(stream.try_clone()?),
                            writer: stream,
                        });
                        guard.as_mut().expect("just connected")
                    }
                };
                conn.writer.write_all(&frame)?;
                conn.writer.flush()?;
                self.scatter_bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);

                // Bounded read: a peer streaming newline-free bytes must
                // exhaust the cap, not the coordinator's memory.
                let mut line = Vec::new();
                let n = (&mut conn.reader)
                    .take(self.max_frame as u64 + 1)
                    .read_until(b'\n', &mut line)?;
                if n == 0 {
                    return Err(ClientError::Protocol(
                        "worker closed the connection mid-build".into(),
                    ));
                }
                if line.last() != Some(&b'\n') {
                    return Err(ClientError::Protocol(format!(
                        "worker reply exceeds the {}-byte frame cap",
                        self.max_frame
                    )));
                }
                self.gather_bytes
                    .fetch_add(line.len() as u64, Ordering::Relaxed);
                if line.last() == Some(&b'\n') {
                    line.pop();
                }
                match Response::decode(&line)? {
                    Response::ShardBuilt { q, rows, .. } => {
                        if q as usize != job.nfa.num_states()
                            || rows.len() != job.block.num_non_terminals()
                        {
                            return Err(ClientError::Protocol(format!(
                                "worker answered q={q}, {} rows for a q={}, {}-rule block",
                                rows.len(),
                                job.nfa.num_states(),
                                job.block.num_non_terminals(),
                            )));
                        }
                        return Ok(rows);
                    }
                    Response::Error {
                        code: ErrorCode::Busy,
                        ..
                    } if attempt < self.busy_retries => {
                        // Structured backpressure: the worker is at its
                        // admission cap, not broken — back off briefly.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Response::Error { code, detail } => {
                        return Err(ClientError::Server { code, detail })
                    }
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "expected shard rows, got {other:?}"
                        )))
                    }
                }
            }
            unreachable!("the retry loop returns")
        })();
        if result.is_err() {
            // Whatever broke, do not reuse the stream: the lock-step
            // protocol state is unknown.  The next build reconnects.
            *guard = None;
        }
        result
    }
}

impl ShardExecutor for RemoteExecutor {
    fn execute(&self, job: &ShardJob<'_>) -> ShardOutcome {
        let start = Instant::now();
        match self.try_remote(job) {
            Ok(rows) => {
                self.remote_passes.fetch_add(1, Ordering::Relaxed);
                ShardOutcome {
                    rows,
                    // Leaf tables are rebuilt by the coordinator from the
                    // automaton; they never cross the wire.
                    leaf_tables: None,
                    elapsed: start.elapsed(),
                    fallback: false,
                }
            }
            Err(_) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                let mut outcome = LocalExecutor.execute(job);
                outcome.fallback = true;
                // Charge the failed remote attempt (connect, stall, up to
                // the full timeout) to this shard too: the build really
                // did wait that long, and the measured critical-path
                // ratios fed to re-shard advice must see it.
                outcome.elapsed = start.elapsed();
                outcome
            }
        }
    }

    fn name(&self) -> &'static str {
        "remote"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pools_are_rejected() {
        RemoteExecutor::new(Vec::<String>::new());
    }

    #[test]
    fn counters_start_at_zero() {
        let executor = RemoteExecutor::new(["127.0.0.1:1"]);
        assert_eq!(executor.worker_count(), 1);
        assert_eq!(executor.remote_pass_count(), 0);
        assert_eq!(executor.fallback_count(), 0);
        assert_eq!(executor.scatter_bytes() + executor.gather_bytes(), 0);
        assert_eq!(executor.name(), "remote");
    }
}
