//! The remote shard-execution backend: a self-managing worker-fleet
//! client implementing the evaluation core's [`ShardExecutor`] over the
//! wire protocol.
//!
//! A [`RemoteExecutor`] holds the addresses of long-running
//! `spanner-server --worker` processes.  When a sharded matrix build
//! scatters, each shard's [`ShardJob`] becomes a `shard_build` frame —
//! the query's end-transformed automaton plus the shard's *standalone
//! rule block*, never the document text — and the worker answers with the
//! block's three-valued summaries as packed bitplanes, so the gather leg
//! is summary-sized.  On top of that seam the executor manages the fleet:
//!
//! * **Content-addressed negotiation.**  Both payload halves are keyed by
//!   content hash ([`WireNfa::content_hash`],
//!   `NormalFormSlp::content_hash`).  The executor remembers, per worker,
//!   which hashes it has successfully shipped and sends hash-only frames
//!   for those — a warm re-build of a document collapses to hash-sized
//!   scatter traffic.  A worker that lost the bytes (restart, cache
//!   eviction) answers `need`, and the exchange re-sends them on the same
//!   connection ([`RemoteExecutor::renegotiation_count`]).
//! * **Rendezvous placement.**  Shards map to workers by
//!   highest-random-weight hashing of the block's content hash against
//!   each live worker's address: deterministic, stable under join/leave
//!   (only the departed worker's shards move), and cache-affine — the
//!   same block keeps landing on the same warm worker.
//! * **Health-checked membership.**  An optional background prober
//!   ([`RemoteExecutor::with_health_check`]) pings every worker and flips
//!   it dead/alive; dead workers are excluded from placement *before*
//!   scatter, and a rejoining worker re-enters the rendezvous ranking
//!   with its shipped-hash memory cleared (a restarted process holds an
//!   empty cache).
//! * **Hedged passes.**  After a per-shard latency budget — fixed
//!   ([`RemoteExecutor::with_hedge_after`]) or 3× the median of recently
//!   observed pass latencies — a straggling shard is re-issued to the
//!   next worker in the rendezvous ranking and the first answer wins:
//!   tail-latency insurance against one slow worker.  Both attempts
//!   compute the same deterministic summaries, so whichever copy lands
//!   first is entry-identical to the other.
//!
//! **Results are never lost.**  Every failure — connection refused, a
//! worker dying mid-build, a timeout, a malformed or short reply, busy
//! backpressure beyond the retry budget, both copies of a hedged pass
//! failing — falls back to the in-process [`LocalExecutor`] for that
//! shard, marks the outcome as a fallback (surfaced through
//! `ShardBuildStats::fallbacks` and [`RemoteExecutor::fallback_count`])
//! and drops the broken connection so the next build reconnects cleanly.
//! A build against a fully dead pool therefore degrades to exactly the
//! local scatter-gather path.

use crate::client::ClientError;
use crate::proto::{ErrorCode, Request, Response, WireNfa};
use slp::NfRule;
use spanner_slp_core::executor::{LocalExecutor, ShardExecutor, ShardJob, ShardOutcome};
use spanner_slp_core::matrices::RMatrix;
use spanner_slp_core::prepared::EByte;
use spanner_slp_core::trace::{self, Hist, HistSnapshot, ShardTrace, SpanRec};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Key domains of the per-worker shipped-hash memory (mirrors the
/// worker's cache key domains).
const DOMAIN_NFA: u8 = 0;
const DOMAIN_BLOCK: u8 = 1;

/// One pooled worker: its address, a lazily re-established connection,
/// its liveness flag and the set of content hashes known to be shipped.
#[derive(Debug)]
struct WorkerSlot {
    addr: String,
    /// The live connection, if any.  The mutex also serializes the
    /// lock-step request/response exchange per worker; shards assigned to
    /// *different* workers proceed in parallel.
    conn: Mutex<Option<Conn>>,
    /// `false` while the health prober considers this worker dead; dead
    /// workers are excluded from rendezvous placement.
    alive: AtomicBool,
    /// Content hashes this worker has acknowledged receiving the bytes
    /// for — the coordinator's half of the have/need negotiation.  An
    /// entry here only ever costs one extra round-trip if it turns out
    /// stale (the worker answers `need`).
    shipped: Mutex<HashSet<(u8, u64)>>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The shared half of the executor: worker slots plus every counter, held
/// in an `Arc` so hedge attempts and the health prober outlive no one.
#[derive(Debug)]
struct Pool {
    workers: Vec<WorkerSlot>,
    /// Set on drop; stops the health prober.
    stop: AtomicBool,
    /// When set, exchange failures also mark the worker dead (the prober
    /// will resurrect it); when unset, liveness never changes, preserving
    /// the try-every-build semantics of prober-less pools.
    health_enabled: AtomicBool,
    fallbacks: AtomicU64,
    remote_passes: AtomicU64,
    scatter_bytes: AtomicU64,
    gather_bytes: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    hash_only_passes: AtomicU64,
    renegotiations: AtomicU64,
    evictions: AtomicU64,
    rejoins: AtomicU64,
    /// Every shard pass's total wall-clock (remote wins and local
    /// fallbacks alike) — the histogram behind the adaptive-hedge window.
    pass_hist: Hist,
}

impl Pool {
    /// Marks `idx` dead (if health management is on) and counts the
    /// transition.
    fn mark_dead(&self, idx: usize) {
        if self.health_enabled.load(Ordering::Relaxed)
            && self.workers[idx].alive.swap(false, Ordering::Relaxed)
        {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The copyable exchange knobs handed to attempt threads.
#[derive(Debug, Clone, Copy)]
struct ExchangeCfg {
    timeout: Duration,
    max_frame: usize,
    busy_retries: usize,
}

/// One shard's owned wire payload: everything an attempt thread needs to
/// run the negotiation without borrowing the job.
struct Payload {
    wire_nfa: WireNfa,
    rules: Vec<NfRule<EByte>>,
    root: u64,
    nfa_hash: u64,
    block_hash: u64,
    /// Trace id propagated on the wire (`"tr"` key); 0 when the build is
    /// unsampled, and the key is then omitted entirely.
    trace: u64,
    expected_q: usize,
    expected_rows: usize,
}

impl Payload {
    fn of_job(job: &ShardJob<'_>) -> Payload {
        let wire_nfa = WireNfa::from_nfa(job.nfa);
        let nfa_hash = wire_nfa.content_hash();
        let block_hash = job.block.content_hash();
        Payload {
            wire_nfa,
            rules: job.block.rules().to_vec(),
            root: job.block.start().0 as u64,
            nfa_hash,
            block_hash,
            trace: job
                .trace
                .filter(|t| t.ctx.sampled)
                .map(|t| t.ctx.trace_id)
                .unwrap_or(0),
            expected_q: job.nfa.num_states(),
            expected_rows: job.block.num_non_terminals(),
        }
    }

    /// Encodes one `shard_build` frame (newline-terminated), shipping each
    /// half inline or as its hash alone.
    fn frame(&self, include_nfa: bool, include_block: bool) -> Vec<u8> {
        let request = Request::ShardBuild {
            nfa: include_nfa.then(|| self.wire_nfa.clone()),
            rules: include_block.then(|| self.rules.clone()),
            root: self.root,
            nfa_hash: self.nfa_hash,
            block_hash: self.block_hash,
            trace: self.trace,
        };
        let mut frame = request.encode();
        frame.push(b'\n');
        frame
    }
}

/// A fleet client that executes shard passes on remote worker processes,
/// falling back to [`LocalExecutor`] whenever a worker cannot answer.
/// See the module docs for placement, negotiation, hedging and the
/// failure semantics.
#[derive(Debug)]
pub struct RemoteExecutor {
    pool: Arc<Pool>,
    /// Per-exchange read/write timeout: a worker that stalls longer than
    /// this has its shard re-run locally.
    timeout: Duration,
    /// Frame cap, both ways: scatter frames larger than this are not
    /// shipped at all (the workers' `ServerConfig::max_frame_len` would
    /// reject them anyway — falling back locally up front avoids moving
    /// megabytes just to be refused on every build), and worker replies
    /// are read at most this far, so a misbehaving peer streaming
    /// newline-free bytes cannot grow coordinator memory without bound.
    max_frame: usize,
    /// How many times a `busy` answer is retried before falling back.
    busy_retries: usize,
    /// Fixed hedge budget; `None` = adaptive (3× the median of recent
    /// pass latencies, once enough samples exist).
    hedge_after: Option<Duration>,
    /// Recent successful pass latencies feeding the adaptive budget.
    latencies: Mutex<VecDeque<Duration>>,
    prober: Mutex<Option<JoinHandle<()>>>,
}

/// Latency samples required before the adaptive hedge budget activates.
const HEDGE_MIN_SAMPLES: usize = 8;
/// Latency samples retained for the adaptive hedge budget.
const HEDGE_WINDOW: usize = 64;

impl RemoteExecutor {
    /// Creates a pool client over worker addresses (e.g.
    /// `["127.0.0.1:7001", "127.0.0.1:7002"]`) with a 10-second exchange
    /// timeout, no health prober and adaptive hedging.
    ///
    /// # Panics
    /// If `addrs` is empty — an empty pool is a configuration error, not a
    /// "silently always local" mode.
    pub fn new<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> RemoteExecutor {
        let workers: Vec<WorkerSlot> = addrs
            .into_iter()
            .map(|addr| WorkerSlot {
                addr: addr.into(),
                conn: Mutex::new(None),
                alive: AtomicBool::new(true),
                shipped: Mutex::new(HashSet::new()),
            })
            .collect();
        assert!(
            !workers.is_empty(),
            "a remote pool needs at least one worker"
        );
        RemoteExecutor {
            pool: Arc::new(Pool {
                workers,
                stop: AtomicBool::new(false),
                health_enabled: AtomicBool::new(false),
                fallbacks: AtomicU64::new(0),
                remote_passes: AtomicU64::new(0),
                scatter_bytes: AtomicU64::new(0),
                gather_bytes: AtomicU64::new(0),
                hedges: AtomicU64::new(0),
                hedge_wins: AtomicU64::new(0),
                hash_only_passes: AtomicU64::new(0),
                renegotiations: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                rejoins: AtomicU64::new(0),
                pass_hist: Hist::new(),
            }),
            timeout: Duration::from_secs(10),
            busy_retries: 20,
            max_frame: crate::server::ServerConfig::default().max_frame_len,
            hedge_after: None,
            latencies: Mutex::new(VecDeque::new()),
            prober: Mutex::new(None),
        }
    }

    /// Sets the per-exchange timeout (connection, write and read).
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteExecutor {
        self.timeout = timeout;
        self
    }

    /// Sets the frame cap, which must match the workers'
    /// `ServerConfig::max_frame_len` (the default matches the server
    /// default).  Shard blocks that would exceed it run locally without
    /// touching the wire.
    pub fn with_max_frame(mut self, max_frame: usize) -> RemoteExecutor {
        self.max_frame = max_frame.max(1);
        self
    }

    /// Fixes the hedge budget: a shard unanswered after `budget` is
    /// re-issued to the next worker in its rendezvous ranking.  Without
    /// this the budget adapts to 3× the median of recent pass latencies
    /// (no hedging until enough samples exist).
    pub fn with_hedge_after(mut self, budget: Duration) -> RemoteExecutor {
        self.hedge_after = Some(budget);
        self
    }

    /// Starts the background health prober: every `interval` each worker
    /// is pinged on a fresh connection and flipped dead/alive.  Dead
    /// workers are evicted from placement before scatter; a worker that
    /// answers again rejoins the ranking with its shipped-hash memory
    /// cleared (a restarted process holds an empty block cache).  With
    /// health management on, exchange failures also mark the worker dead
    /// immediately instead of waiting for the next probe.
    pub fn with_health_check(self, interval: Duration) -> RemoteExecutor {
        let interval = interval.max(Duration::from_millis(10));
        self.pool.health_enabled.store(true, Ordering::Relaxed);
        let pool = self.pool.clone();
        let handle = std::thread::spawn(move || health_loop(&pool, interval));
        *self.prober.lock().expect("prober handle poisoned") = Some(handle);
        self
    }

    /// Number of workers in the pool (alive or not).
    pub fn worker_count(&self) -> usize {
        self.pool.workers.len()
    }

    /// Number of workers currently considered alive (equals
    /// [`RemoteExecutor::worker_count`] unless a health prober demoted
    /// some).
    pub fn alive_worker_count(&self) -> usize {
        self.pool
            .workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Shard passes completed remotely over this executor's lifetime.
    pub fn remote_pass_count(&self) -> u64 {
        self.pool.remote_passes.load(Ordering::Relaxed)
    }

    /// Shard passes that fell back to local execution.
    pub fn fallback_count(&self) -> u64 {
        self.pool.fallbacks.load(Ordering::Relaxed)
    }

    /// Bytes shipped to workers (serialized shard blocks + automata, or
    /// their hashes on warm paths) — the scatter leg of the wire cost.
    pub fn scatter_bytes(&self) -> u64 {
        self.pool.scatter_bytes.load(Ordering::Relaxed)
    }

    /// Bytes received from workers (summary rows) — the gather leg.
    pub fn gather_bytes(&self) -> u64 {
        self.pool.gather_bytes.load(Ordering::Relaxed)
    }

    /// Shard passes re-issued to a second worker after the hedge budget.
    pub fn hedge_count(&self) -> u64 {
        self.pool.hedges.load(Ordering::Relaxed)
    }

    /// Hedged passes whose *second* copy answered first.
    pub fn hedge_win_count(&self) -> u64 {
        self.pool.hedge_wins.load(Ordering::Relaxed)
    }

    /// Remote passes completed without shipping any block bytes (both
    /// halves answered from the worker's content-addressed cache).
    pub fn hash_only_pass_count(&self) -> u64 {
        self.pool.hash_only_passes.load(Ordering::Relaxed)
    }

    /// `need` answers received: hash-only frames the worker could not
    /// satisfy, each followed by an inline re-send on the same connection.
    pub fn renegotiation_count(&self) -> u64 {
        self.pool.renegotiations.load(Ordering::Relaxed)
    }

    /// Workers demoted alive→dead (by the prober or an exchange failure
    /// under health management).
    pub fn eviction_count(&self) -> u64 {
        self.pool.evictions.load(Ordering::Relaxed)
    }

    /// Workers promoted dead→alive by the prober.
    pub fn rejoin_count(&self) -> u64 {
        self.pool.rejoins.load(Ordering::Relaxed)
    }

    /// The hedge budget currently in force, in microseconds — the fixed
    /// budget, or 3× the window median once enough samples exist.  0 while
    /// hedging is off (adaptive mode warming up).
    pub fn hedge_budget_us(&self) -> u64 {
        self.hedge_budget()
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Latency samples currently held in the adaptive-hedge window.
    pub fn hedge_sample_count(&self) -> u64 {
        self.latencies
            .lock()
            .expect("latency window poisoned")
            .len() as u64
    }

    /// Snapshot of the shard-pass latency histogram (remote passes and
    /// local fallbacks alike).
    pub fn pass_latency_histogram(&self) -> HistSnapshot {
        self.pool.pass_hist.snapshot()
    }

    fn cfg(&self) -> ExchangeCfg {
        ExchangeCfg {
            timeout: self.timeout,
            max_frame: self.max_frame,
            busy_retries: self.busy_retries,
        }
    }

    /// The current hedge budget, or `None` when hedging is off (adaptive
    /// mode without enough samples yet).
    fn hedge_budget(&self) -> Option<Duration> {
        if let Some(fixed) = self.hedge_after {
            return Some(fixed.max(Duration::from_micros(100)));
        }
        let latencies = self.latencies.lock().expect("latency window poisoned");
        if latencies.len() < HEDGE_MIN_SAMPLES {
            return None;
        }
        let mut sorted: Vec<Duration> = latencies.iter().copied().collect();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        Some((median * 3).max(Duration::from_millis(1)))
    }

    fn record_latency(&self, sample: Duration) {
        let mut latencies = self.latencies.lock().expect("latency window poisoned");
        if latencies.len() == HEDGE_WINDOW {
            latencies.pop_front();
        }
        latencies.push_back(sample);
    }
}

impl Drop for RemoteExecutor {
    fn drop(&mut self) {
        self.pool.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.prober.lock().expect("prober handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

/// Ranks the *alive* workers for `key` by rendezvous (highest-random-
/// weight) hashing: score every worker by `fnv(addr ++ key)` and sort
/// descending.  Deterministic for a given membership; removing a worker
/// only moves the shards it owned.
fn rendezvous_ranking(pool: &Pool, key: u64) -> Vec<usize> {
    use std::hash::Hasher;
    let mut scored: Vec<(u64, usize)> = pool
        .workers
        .iter()
        .enumerate()
        .filter(|(_, w)| w.alive.load(Ordering::Relaxed))
        .map(|(i, w)| {
            let mut h = slp::Fnv64::new();
            h.write(w.addr.as_bytes());
            h.write_u64(key);
            (h.finish(), i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, i)| i).collect()
}

/// The health prober body: ping every worker each `interval`, flipping
/// liveness and counting the transitions.
fn health_loop(pool: &Pool, interval: Duration) {
    let probe_timeout = interval.min(Duration::from_secs(1));
    while !pool.stop.load(Ordering::Relaxed) {
        for (idx, slot) in pool.workers.iter().enumerate() {
            let ok = probe(&slot.addr, probe_timeout);
            let was = slot.alive.swap(ok, Ordering::Relaxed);
            if was && !ok {
                pool.evictions.fetch_add(1, Ordering::Relaxed);
                // The lock-step state of any cached connection is unknown
                // (and probably broken); reconnect next build.
                *slot.conn.lock().expect("worker slot poisoned") = None;
                let _ = idx;
            } else if !was && ok {
                pool.rejoins.fetch_add(1, Ordering::Relaxed);
                // A rejoining process may be a fresh restart with an empty
                // block cache: forget what was shipped so the next build
                // re-negotiates instead of betting on a stale `have`.
                slot.shipped.lock().expect("shipped set poisoned").clear();
            }
        }
        // Shutdown-aware sleep: check the stop flag every few ms so drop
        // never waits a full interval.
        let mut remaining = interval;
        while remaining > Duration::ZERO && !pool.stop.load(Ordering::Relaxed) {
            let step = remaining.min(Duration::from_millis(5));
            std::thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
    }
}

/// One liveness probe: fresh connect, `ping`, expect `pong`.  Any error
/// or timeout is "dead" — the prober retries next interval.
fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(mut addrs) = addr.to_socket_addrs() else {
        return false;
    };
    let Some(sock_addr) = addrs.next() else {
        return false;
    };
    let Ok(stream) = TcpStream::connect_timeout(&sock_addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let mut frame = Request::Ping.encode();
    frame.push(b'\n');
    let mut stream = stream;
    if stream.write_all(&frame).is_err() || stream.flush().is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    match (&mut reader).take(4096).read_until(b'\n', &mut line) {
        Ok(n) if n > 0 && line.last() == Some(&b'\n') => {
            line.pop();
            matches!(Response::decode(&line), Ok(Response::Pong { .. }))
        }
        _ => false,
    }
}

/// One lock-step negotiated `shard_build` exchange with worker `idx`:
/// optimistic frame under the shipped-hash memory, at most one `need`
/// re-send, busy retries.  Any error leaves the slot disconnected (and,
/// under health management, the worker marked dead) so the next call
/// starts from a fresh connection.
fn exchange(
    pool: &Pool,
    idx: usize,
    cfg: ExchangeCfg,
    payload: &Payload,
) -> Result<(Vec<RMatrix>, Vec<SpanRec>), ClientError> {
    let slot = &pool.workers[idx];
    let mut guard = slot.conn.lock().expect("worker slot poisoned");

    let result = (|| -> Result<(Vec<RMatrix>, Vec<SpanRec>), ClientError> {
        for attempt in 0.. {
            let conn = match guard.as_mut() {
                Some(conn) => conn,
                None => {
                    let stream = TcpStream::connect(slot.addr.as_str())?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(cfg.timeout))?;
                    stream.set_write_timeout(Some(cfg.timeout))?;
                    *guard = Some(Conn {
                        reader: BufReader::new(stream.try_clone()?),
                        writer: stream,
                    });
                    guard.as_mut().expect("just connected")
                }
            };
            // Optimistic frame: ship only the halves this worker is not
            // known to hold.
            let (include_nfa, include_block) = {
                let shipped = slot.shipped.lock().expect("shipped set poisoned");
                (
                    !shipped.contains(&(DOMAIN_NFA, payload.nfa_hash)),
                    !shipped.contains(&(DOMAIN_BLOCK, payload.block_hash)),
                )
            };
            let frame = payload.frame(include_nfa, include_block);
            conn.writer.write_all(&frame)?;
            conn.writer.flush()?;
            pool.scatter_bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);

            match read_reply(conn, cfg, pool)? {
                Response::ShardBuilt { q, rows, spans, .. } => {
                    if q as usize != payload.expected_q || rows.len() != payload.expected_rows {
                        return Err(ClientError::Protocol(format!(
                            "worker answered q={q}, {} rows for a q={}, {}-rule block",
                            rows.len(),
                            payload.expected_q,
                            payload.expected_rows,
                        )));
                    }
                    {
                        let mut shipped = slot.shipped.lock().expect("shipped set poisoned");
                        shipped.insert((DOMAIN_NFA, payload.nfa_hash));
                        shipped.insert((DOMAIN_BLOCK, payload.block_hash));
                    }
                    if !include_nfa && !include_block {
                        pool.hash_only_passes.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((rows, spans));
                }
                Response::NeedBlocks {
                    need_nfa,
                    need_block,
                } => {
                    // The worker lost (or never had) what we thought we
                    // shipped: forget it and loop — the next frame carries
                    // the bytes inline on this same connection.
                    if (need_nfa && include_nfa) || (need_block && include_block) {
                        return Err(ClientError::Protocol(
                            "worker demanded blocks that were sent inline".into(),
                        ));
                    }
                    pool.renegotiations.fetch_add(1, Ordering::Relaxed);
                    let mut shipped = slot.shipped.lock().expect("shipped set poisoned");
                    if need_nfa {
                        shipped.remove(&(DOMAIN_NFA, payload.nfa_hash));
                    }
                    if need_block {
                        shipped.remove(&(DOMAIN_BLOCK, payload.block_hash));
                    }
                }
                Response::Error {
                    code: ErrorCode::Busy,
                    ..
                } if attempt < cfg.busy_retries => {
                    // Structured backpressure: the worker is at its
                    // admission cap, not broken — back off briefly.
                    std::thread::sleep(Duration::from_millis(2));
                }
                Response::Error { code, detail } => {
                    return Err(ClientError::Server { code, detail })
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected shard rows, got {other:?}"
                    )))
                }
            }
        }
        unreachable!("the retry loop returns")
    })();
    if result.is_err() {
        // Whatever broke, do not reuse the stream: the lock-step protocol
        // state is unknown.  The next build reconnects.
        *guard = None;
        drop(guard);
        pool.mark_dead(idx);
    }
    result
}

/// Reads one bounded reply frame: a peer streaming newline-free bytes
/// must exhaust the cap, not the coordinator's memory.
fn read_reply(conn: &mut Conn, cfg: ExchangeCfg, pool: &Pool) -> Result<Response, ClientError> {
    let mut line = Vec::new();
    let n = (&mut conn.reader)
        .take(cfg.max_frame as u64 + 1)
        .read_until(b'\n', &mut line)?;
    if n == 0 {
        return Err(ClientError::Protocol(
            "worker closed the connection mid-build".into(),
        ));
    }
    if line.last() != Some(&b'\n') {
        return Err(ClientError::Protocol(format!(
            "worker reply exceeds the {}-byte frame cap",
            cfg.max_frame
        )));
    }
    pool.gather_bytes
        .fetch_add(line.len() as u64, Ordering::Relaxed);
    line.pop();
    Ok(Response::decode(&line)?)
}

/// One hedge attempt's answer: attempt index, worker index, round-trip
/// time, and the rows plus the worker's span fragment (worker timebase).
type AttemptReply = (
    usize,
    usize,
    Duration,
    Result<(Vec<RMatrix>, Vec<SpanRec>), ClientError>,
);

/// Builds the span record for one winning remote attempt: a `shard_rpc`
/// span anchored at the attempt's issue offset (request timebase), with
/// the worker's fragment re-based under it — the worker clock starts at
/// its frame receipt, so adding the issue offset places its spans inside
/// the rpc window (wire latency shows up as the gap on either side).
fn rpc_spans(
    trace: Option<ShardTrace>,
    shard: usize,
    worker_addr: &str,
    attempt: usize,
    issue_us: u64,
    rtt: Duration,
    fragment: &[SpanRec],
) -> Vec<SpanRec> {
    if trace.filter(|t| t.ctx.sampled).is_none() {
        return Vec::new();
    }
    let mut spans = vec![SpanRec {
        name: "shard_rpc".to_string(),
        start_us: issue_us,
        dur_us: rtt.as_micros() as u64,
        parent: None,
        attrs: vec![
            ("shard".to_string(), shard.to_string()),
            ("worker".to_string(), worker_addr.to_string()),
            ("attempt".to_string(), attempt.to_string()),
        ],
    }];
    trace::graft(&mut spans, fragment, Some(0), issue_us);
    spans
}

impl ShardExecutor for RemoteExecutor {
    fn execute(&self, job: &ShardJob<'_>) -> ShardOutcome {
        let start = Instant::now();
        let payload = Arc::new(Payload::of_job(job));
        // Up-front frame-cap check on the *full* frame: a block the
        // workers would reject as oversized runs locally without shipping
        // a byte (and without betting on a hash-only frame whose `need`
        // answer would force the oversized bytes anyway).
        let oversized = payload.frame(true, true).len() > self.max_frame;
        let ranking = rendezvous_ranking(&self.pool, payload.block_hash);
        let sampled = job.trace.filter(|t| t.ctx.sampled);

        let mut rows: Option<Vec<RMatrix>> = None;
        let mut spans: Vec<SpanRec> = Vec::new();
        let mut hedged = false;
        if !oversized && !ranking.is_empty() {
            let (tx, rx) = mpsc::channel::<AttemptReply>();
            let cfg = self.cfg();
            let spawn_attempt = |attempt: usize, worker: usize| {
                let pool = self.pool.clone();
                let payload = payload.clone();
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let issued = Instant::now();
                    let result = exchange(&pool, worker, cfg, &payload);
                    let _ = tx.send((attempt, worker, issued.elapsed(), result));
                });
            };
            let mut issue_us = [0u64; 2];
            if let Some(trace) = sampled {
                issue_us[0] = trace.offset_us(Instant::now());
            }
            spawn_attempt(0, ranking[0]);
            // The hard deadline only guards against pathological stalls;
            // attempt threads are already bounded by their socket
            // timeouts.
            let hard_wait = cfg.timeout.saturating_mul(2) + Duration::from_secs(1);
            let first_wait = self.hedge_budget().unwrap_or(hard_wait).min(hard_wait);
            match rx.recv_timeout(first_wait) {
                Ok((attempt, worker, rtt, Ok((answer, fragment)))) => {
                    spans = rpc_spans(
                        sampled,
                        job.shard_index,
                        &self.pool.workers[worker].addr,
                        attempt,
                        issue_us[attempt],
                        rtt,
                        &fragment,
                    );
                    rows = Some(answer);
                }
                Ok((_, _, _, Err(_))) => {}
                Err(_) => {
                    // The primary is a straggler.  Re-issue to the next
                    // worker in the ranking and take whichever answers
                    // first; the loser's result is discarded when it
                    // lands (both are entry-identical by contract).
                    let mut outstanding = 1usize;
                    if let Some(&second) = ranking.get(1) {
                        hedged = true;
                        self.pool.hedges.fetch_add(1, Ordering::Relaxed);
                        if let Some(trace) = sampled {
                            issue_us[1] = trace.offset_us(Instant::now());
                            spans.push(SpanRec {
                                name: "hedge_issue".to_string(),
                                start_us: issue_us[1],
                                dur_us: 0,
                                parent: None,
                                attrs: vec![
                                    ("shard".to_string(), job.shard_index.to_string()),
                                    ("worker".to_string(), self.pool.workers[second].addr.clone()),
                                ],
                            });
                        }
                        spawn_attempt(1, second);
                        outstanding += 1;
                    }
                    while outstanding > 0 && rows.is_none() {
                        match rx.recv_timeout(hard_wait) {
                            Ok((attempt, worker, rtt, Ok((answer, fragment)))) => {
                                outstanding -= 1;
                                if attempt == 1 {
                                    self.pool.hedge_wins.fetch_add(1, Ordering::Relaxed);
                                }
                                let mut won = rpc_spans(
                                    sampled,
                                    job.shard_index,
                                    &self.pool.workers[worker].addr,
                                    attempt,
                                    issue_us[attempt],
                                    rtt,
                                    &fragment,
                                );
                                if attempt == 1 {
                                    if let Some(root) = won.first_mut() {
                                        root.attrs
                                            .push(("hedge_win".to_string(), "true".to_string()));
                                    }
                                }
                                spans.append(&mut won);
                                rows = Some(answer);
                            }
                            Ok((_, _, _, Err(_))) => outstanding -= 1,
                            Err(_) => break,
                        }
                    }
                }
            }
        }

        match rows {
            Some(rows) => {
                self.pool.remote_passes.fetch_add(1, Ordering::Relaxed);
                let elapsed = start.elapsed();
                self.record_latency(elapsed);
                self.pool.pass_hist.observe(elapsed.as_micros() as u64);
                ShardOutcome {
                    rows,
                    // Leaf tables are rebuilt by the coordinator from the
                    // automaton; they never cross the wire.
                    leaf_tables: None,
                    elapsed,
                    fallback: false,
                    hedged,
                    spans,
                }
            }
            None => {
                self.pool.fallbacks.fetch_add(1, Ordering::Relaxed);
                if let Some(trace) = sampled {
                    spans.push(SpanRec {
                        name: "local_fallback".to_string(),
                        start_us: trace.offset_us(Instant::now()),
                        dur_us: 0,
                        parent: None,
                        attrs: vec![("shard".to_string(), job.shard_index.to_string())],
                    });
                }
                let mut outcome = LocalExecutor.execute(job);
                outcome.fallback = true;
                outcome.hedged = hedged;
                // Charge the failed remote attempt (connect, stall, up to
                // the full timeout) to this shard too: the build really
                // did wait that long, and the measured critical-path
                // ratios fed to re-shard advice must see it.
                outcome.elapsed = start.elapsed();
                self.pool
                    .pass_hist
                    .observe(outcome.elapsed.as_micros() as u64);
                spans.append(&mut outcome.spans);
                outcome.spans = spans;
                outcome
            }
        }
    }

    fn name(&self) -> &'static str {
        "remote"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pools_are_rejected() {
        RemoteExecutor::new(Vec::<String>::new());
    }

    #[test]
    fn counters_start_at_zero() {
        let executor = RemoteExecutor::new(["127.0.0.1:1"]);
        assert_eq!(executor.worker_count(), 1);
        assert_eq!(executor.alive_worker_count(), 1);
        assert_eq!(executor.remote_pass_count(), 0);
        assert_eq!(executor.fallback_count(), 0);
        assert_eq!(executor.scatter_bytes() + executor.gather_bytes(), 0);
        assert_eq!(executor.hedge_count() + executor.hedge_win_count(), 0);
        assert_eq!(
            executor.hash_only_pass_count() + executor.renegotiation_count(),
            0
        );
        assert_eq!(executor.eviction_count() + executor.rejoin_count(), 0);
        assert_eq!(executor.name(), "remote");
    }

    #[test]
    fn rendezvous_ranking_is_deterministic_and_stable_under_leave() {
        let executor = RemoteExecutor::new(["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        let pool = &executor.pool;
        for key in [1u64, 42, 0xdead_beef, u64::MAX] {
            let a = rendezvous_ranking(pool, key);
            let b = rendezvous_ranking(pool, key);
            assert_eq!(a, b, "same membership, same key, same ranking");
            assert_eq!(a.len(), 3);
        }
        // Killing one worker must not move keys between the survivors:
        // every key either keeps its primary or (if it owned the dead
        // worker) falls to its old second choice.
        let before: Vec<Vec<usize>> = (0..200).map(|k| rendezvous_ranking(pool, k)).collect();
        pool.workers[1].alive.store(false, Ordering::Relaxed);
        for (k, old) in before.iter().enumerate() {
            let new = rendezvous_ranking(pool, k as u64);
            let expected: Vec<usize> = old.iter().copied().filter(|&w| w != 1).collect();
            assert_eq!(
                new, expected,
                "key {k}: survivors keep their relative order"
            );
        }
        pool.workers[1].alive.store(true, Ordering::Relaxed);
    }

    #[test]
    fn rendezvous_spreads_keys_over_the_pool() {
        let executor = RemoteExecutor::new(["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        let mut owned = [0usize; 3];
        for key in 0..300 {
            owned[rendezvous_ranking(&executor.pool, key)[0]] += 1;
        }
        for (i, &count) in owned.iter().enumerate() {
            assert!(
                count > 30,
                "worker {i} owns {count}/300 keys — placement is pathologically skewed"
            );
        }
    }

    #[test]
    fn dead_workers_leave_the_ranking() {
        let executor = RemoteExecutor::new(["127.0.0.1:7001", "127.0.0.1:7002"]);
        executor.pool.workers[0]
            .alive
            .store(false, Ordering::Relaxed);
        executor.pool.workers[1]
            .alive
            .store(false, Ordering::Relaxed);
        assert_eq!(executor.alive_worker_count(), 0);
        assert!(rendezvous_ranking(&executor.pool, 7).is_empty());
    }

    #[test]
    fn fixed_hedge_budget_overrides_the_adaptive_window() {
        let fixed =
            RemoteExecutor::new(["127.0.0.1:1"]).with_hedge_after(Duration::from_millis(50));
        assert_eq!(fixed.hedge_budget(), Some(Duration::from_millis(50)));

        let adaptive = RemoteExecutor::new(["127.0.0.1:1"]);
        assert_eq!(
            adaptive.hedge_budget(),
            None,
            "no samples yet — hedging stays off"
        );
        for _ in 0..HEDGE_MIN_SAMPLES {
            adaptive.record_latency(Duration::from_millis(10));
        }
        assert_eq!(adaptive.hedge_budget(), Some(Duration::from_millis(30)));
    }
}
