//! The worker-resident content-addressed block cache behind the
//! `shard_build` have/need negotiation.
//!
//! A worker that has once decoded a shard's rule block (or a query's
//! automaton) keeps the *decoded* value keyed by its content hash, so a
//! later build of the same document — the dominant pattern under matrix-
//! cache misses and multi-query workloads — needs only a hash-sized frame
//! from the coordinator.  The cache is a plain byte-budgeted LRU:
//!
//! * keys are `(domain, hash)` pairs — automata and rule blocks live in
//!   separate key domains so a (contrived) cross-kind hash collision
//!   cannot alias them;
//! * recency is a monotone stamp bumped on every touch (`O(1)`), eviction
//!   scans for the minimum stamp (`O(n)` — the cache holds at most a few
//!   thousand entries, far below where a heap would matter);
//! * a value whose cost alone exceeds the budget is served but never
//!   inserted, so one oversized block cannot wipe the cache.
//!
//! Trust: the coordinator's claimed hash is **verified by recomputation**
//! over the decoded value before it is inserted or served (see the
//! `shard_build` handler) — the cache itself never stores an unverified
//! claim, so a hash-collision-shaped adversarial frame costs a rejected
//! request, never a poisoned cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Key domain of a cached value (part of the key, so equal hashes of
/// different kinds never alias).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A query automaton (`WireNfa` content hash).
    Nfa,
    /// A standalone shard rule block (`block_content_hash`).
    Rules,
}

struct Entry<V> {
    value: V,
    bytes: usize,
    stamp: u64,
}

/// A byte-budgeted LRU over content-addressed values.  `V` is whatever the
/// worker wants to keep decoded (the server stores `Arc`s so a hit is one
/// pointer clone).
pub struct BlockCache<V> {
    entries: Mutex<HashMap<(BlockKind, u64), Entry<V>>>,
    budget: usize,
    clock: AtomicU64,
    resident: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> std::fmt::Debug for BlockCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("budget", &self.budget)
            .field("resident", &self.resident.load(Ordering::Relaxed))
            .finish()
    }
}

impl<V: Clone> BlockCache<V> {
    /// An empty cache holding at most `budget` bytes of values (as costed
    /// by the caller at insert time).  A zero budget disables caching:
    /// every lookup misses and nothing is retained.
    pub fn new(budget: usize) -> BlockCache<V> {
        BlockCache {
            entries: Mutex::new(HashMap::new()),
            budget,
            clock: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks `(kind, hash)` up, refreshing its recency on a hit.
    pub fn get(&self, kind: BlockKind, hash: u64) -> Option<V> {
        let mut entries = self.entries.lock().unwrap();
        match entries.get_mut(&(kind, hash)) {
            Some(entry) => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `(kind, hash)` at cost `bytes`, evicting
    /// least-recently-used entries until the budget holds.  A value whose
    /// cost alone exceeds the budget is not inserted.
    pub fn put(&self, kind: BlockKind, hash: u64, value: V, bytes: usize) {
        if bytes > self.budget {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        let mut resident: usize = entries.values().map(|e| e.bytes).sum();
        if let Some(old) = entries.remove(&(kind, hash)) {
            resident -= old.bytes;
        }
        while resident + bytes > self.budget {
            let Some((&key, _)) = entries.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            let evicted = entries.remove(&key).expect("min key present");
            resident -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entries.insert(
            (kind, hash),
            Entry {
                value,
                bytes,
                stamp,
            },
        );
        resident += bytes;
        self.resident.store(resident as u64, Ordering::Relaxed);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted under the byte budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes of values currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_recency_and_misses_count() {
        let cache: BlockCache<u32> = BlockCache::new(100);
        assert_eq!(cache.get(BlockKind::Rules, 1), None);
        cache.put(BlockKind::Rules, 1, 11, 40);
        cache.put(BlockKind::Rules, 2, 22, 40);
        assert_eq!(cache.get(BlockKind::Rules, 1), Some(11));
        // Entry 2 is now the least recently used: inserting a third 40-byte
        // value must evict it, not entry 1.
        cache.put(BlockKind::Rules, 3, 33, 40);
        assert_eq!(cache.get(BlockKind::Rules, 1), Some(11));
        assert_eq!(cache.get(BlockKind::Rules, 2), None);
        assert_eq!(cache.get(BlockKind::Rules, 3), Some(33));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.resident_bytes(), 80);
    }

    #[test]
    fn kinds_are_separate_key_domains() {
        let cache: BlockCache<u32> = BlockCache::new(100);
        cache.put(BlockKind::Nfa, 7, 1, 10);
        cache.put(BlockKind::Rules, 7, 2, 10);
        assert_eq!(cache.get(BlockKind::Nfa, 7), Some(1));
        assert_eq!(cache.get(BlockKind::Rules, 7), Some(2));
    }

    #[test]
    fn oversized_values_are_never_inserted_and_zero_budget_disables() {
        let cache: BlockCache<u32> = BlockCache::new(50);
        cache.put(BlockKind::Rules, 1, 11, 51);
        assert_eq!(cache.get(BlockKind::Rules, 1), None);
        assert_eq!(cache.resident_bytes(), 0);

        let off: BlockCache<u32> = BlockCache::new(0);
        off.put(BlockKind::Rules, 1, 11, 1);
        assert_eq!(off.get(BlockKind::Rules, 1), None);
    }

    #[test]
    fn reinserting_a_key_replaces_its_cost() {
        let cache: BlockCache<u32> = BlockCache::new(100);
        cache.put(BlockKind::Rules, 1, 11, 90);
        cache.put(BlockKind::Rules, 1, 12, 30);
        cache.put(BlockKind::Rules, 2, 22, 60);
        // 30 + 60 fits: the re-insert released the original 90 bytes.
        assert_eq!(cache.get(BlockKind::Rules, 1), Some(12));
        assert_eq!(cache.get(BlockKind::Rules, 2), Some(22));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn eviction_frees_enough_for_a_large_newcomer() {
        let cache: BlockCache<u32> = BlockCache::new(100);
        for i in 0..5 {
            cache.put(BlockKind::Rules, i, i as u32, 20);
        }
        cache.put(BlockKind::Rules, 99, 99, 100);
        assert_eq!(cache.get(BlockKind::Rules, 99), Some(99));
        assert_eq!(cache.evictions(), 5);
        assert_eq!(cache.resident_bytes(), 100);
    }
}
