//! # spanner-baseline — decompress-and-solve spanner evaluation
//!
//! The comparison point of the paper's introduction: evaluate the spanner on
//! the *uncompressed* document with the classical product-graph approach of
//! Florenzano et al. / Amarilli et al. ([9, 2] in the paper).  The document
//! is treated as a path, its product with the automaton is a DAG that
//! represents all accepting runs, and results are read off that DAG.
//!
//! Data complexity: `O(d · |M|)` preprocessing for every task;
//! [`ProductDag::enumerate`] then has output-linear delay (at most one full
//! root-to-sink path, i.e. `O(d)`, between results — see DESIGN.md §5 for
//! why this preserves the comparison the paper makes against constant-delay
//! enumeration).
//!
//! All entry points exist in two flavours: `*_uncompressed` operating on an
//! explicit `&[u8]` document, and `*_slp` which first **decompresses** the
//! SLP (that is the whole point of the baseline) and then proceeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod product_dag;

pub use product_dag::ProductDag;

use slp::NormalFormSlp;
use spanner::{MarkedWord, SpanTuple, SpannerAutomaton};

/// Non-emptiness on an explicit document: `⟦M⟧(D) ≠ ∅`, in `O(d · |M|)`.
pub fn is_non_empty_uncompressed(automaton: &SpannerAutomaton<u8>, document: &[u8]) -> bool {
    ProductDag::build(automaton, document).has_results()
}

/// Model checking on an explicit document (Proposition 3.3): `t ∈ ⟦M⟧(D)`.
pub fn check_uncompressed(
    automaton: &SpannerAutomaton<u8>,
    document: &[u8],
    tuple: &SpanTuple,
) -> Result<bool, spanner::SpannerError> {
    let w = MarkedWord::from_document_and_tuple(document, tuple)?;
    Ok(automaton.accepts_marked_word(&w))
}

/// Computes the whole relation `⟦M⟧(D)` on an explicit document.
pub fn compute_uncompressed(automaton: &SpannerAutomaton<u8>, document: &[u8]) -> Vec<SpanTuple> {
    ProductDag::build(automaton, document).enumerate().collect()
}

/// Decompress-and-solve non-emptiness: derive the document from the SLP,
/// then run the uncompressed algorithm.
pub fn is_non_empty_slp(automaton: &SpannerAutomaton<u8>, slp: &NormalFormSlp<u8>) -> bool {
    is_non_empty_uncompressed(automaton, &slp.derive())
}

/// Decompress-and-solve model checking.
pub fn check_slp(
    automaton: &SpannerAutomaton<u8>,
    slp: &NormalFormSlp<u8>,
    tuple: &SpanTuple,
) -> Result<bool, spanner::SpannerError> {
    check_uncompressed(automaton, &slp.derive(), tuple)
}

/// Decompress-and-solve computation of `⟦M⟧(D)`.
pub fn compute_slp(automaton: &SpannerAutomaton<u8>, slp: &NormalFormSlp<u8>) -> Vec<SpanTuple> {
    compute_uncompressed(automaton, &slp.derive())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Bisection, Compressor};
    use spanner::examples::figure_2_spanner;
    use spanner::{reference, regex, Span, Variable};
    use std::collections::BTreeSet;

    #[test]
    fn baseline_matches_reference_on_small_documents() {
        let m = figure_2_spanner();
        for doc in [&b"aabccaabaa"[..], b"ca", b"cccc", b"ab", b"bca"] {
            let expected = reference::evaluate(&m, doc);
            let got: BTreeSet<SpanTuple> = compute_uncompressed(&m, doc).into_iter().collect();
            assert_eq!(got, expected, "doc {:?}", doc);
            assert_eq!(
                is_non_empty_uncompressed(&m, doc),
                !expected.is_empty(),
                "doc {:?}",
                doc
            );
        }
    }

    #[test]
    fn baseline_matches_reference_for_regex_spanners() {
        let patterns: Vec<(&str, &[u8])> = vec![
            (".*x{a+}y{b+}.*", b"ab"),
            ("(x{a})?b*y{b}", b"ab"),
            (".*x{ab}.*", b"ab"),
        ];
        for (pattern, alphabet) in patterns {
            let m = regex::compile(pattern, alphabet).unwrap();
            for doc in [&b"ab"[..], b"aabb", b"bbaa", b"abab"] {
                let expected = reference::evaluate(&m, doc);
                let got: BTreeSet<SpanTuple> = compute_uncompressed(&m, doc).into_iter().collect();
                assert_eq!(got, expected, "pattern {pattern}, doc {:?}", doc);
            }
        }
    }

    #[test]
    fn decompress_and_solve_agrees_with_direct_calls() {
        let m = figure_2_spanner();
        let doc = b"aabccaabaa";
        let slp = Bisection.compress(doc);
        assert_eq!(
            is_non_empty_slp(&m, &slp),
            is_non_empty_uncompressed(&m, doc)
        );
        assert_eq!(
            compute_slp(&m, &slp).len(),
            compute_uncompressed(&m, doc).len()
        );
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        assert!(check_slp(&m, &slp, &t).unwrap());
    }

    #[test]
    fn duplicates_never_appear_for_deterministic_automata() {
        let m = figure_2_spanner();
        let results = compute_uncompressed(&m, b"aabccaabaa");
        let set: BTreeSet<SpanTuple> = results.iter().cloned().collect();
        assert_eq!(results.len(), set.len());
    }
}
