//! The product DAG of a spanner automaton and an explicit document — the
//! data structure behind the classical uncompressed evaluation algorithms
//! (\[2, 9\] in the paper; see Figure 1 of the paper's reference \[3\] for a
//! picture).
//!
//! Layer `i` (for `0 ≤ i ≤ d`) holds one node per automaton state; an edge
//! from `(i, p)` to `(i+1, q)` labelled with a marker set `S` means "read
//! the (possibly empty) marker set `S` at position `i+1`, then the terminal
//! `D[i+1]`, moving from state `p` to state `q`".  A final layer of edges
//! into a sink accounts for markers at position `d+1` (tail-spanning spans)
//! and for acceptance.  After pruning to nodes that are both reachable and
//! co-reachable, every path from the source to the sink spells exactly one
//! accepted subword-marked word for `D`, i.e. one result tuple.

use spanner::{MarkedSymbol, MarkerSet, PartialMarkerSet, SpanTuple, SpannerAutomaton};
use spanner_automata::nfa::{Label, StateId};

/// The pruned product DAG (see module docs).
#[derive(Debug)]
pub struct ProductDag {
    /// `edges[node]` for `node = layer·q + state`; the sink is node `(d+1)·q`.
    edges: Vec<Vec<(MarkerSet, usize)>>,
    source: usize,
    sink: usize,
    source_useful: bool,
    num_vars: usize,
}

impl ProductDag {
    /// Builds the product DAG of `automaton` and `document` in `O(d · |M|)`.
    pub fn build(automaton: &SpannerAutomaton<u8>, document: &[u8]) -> Self {
        let automaton = if automaton.nfa().has_epsilon() {
            automaton.without_epsilon()
        } else {
            automaton.clone()
        };
        let nfa = automaton.nfa();
        let q = nfa.num_states();
        let d = document.len();
        let node = |layer: usize, state: StateId| layer * q + state;
        let sink = (d + 1) * q;

        // Per-state successor helpers.
        let terminal_succ = |p: StateId, b: u8| -> Vec<StateId> {
            nfa.transitions_from(p)
                .iter()
                .filter_map(|&(l, t)| match l {
                    Label::Symbol(MarkedSymbol::Terminal(c)) if c == b => Some(t),
                    _ => None,
                })
                .collect()
        };
        let marker_succ = |p: StateId| -> Vec<(MarkerSet, StateId)> {
            nfa.transitions_from(p)
                .iter()
                .filter_map(|&(l, t)| match l {
                    Label::Symbol(MarkedSymbol::Markers(s)) => Some((s, t)),
                    _ => None,
                })
                .collect()
        };

        // Forward reachability over layers.
        let mut reachable = vec![false; (d + 1) * q];
        reachable[node(0, nfa.start())] = true;
        for (i, &b) in document.iter().enumerate() {
            for p in 0..q {
                if !reachable[node(i, p)] {
                    continue;
                }
                for t in terminal_succ(p, b) {
                    reachable[node(i + 1, t)] = true;
                }
                for (_, p2) in marker_succ(p) {
                    for t in terminal_succ(p2, b) {
                        reachable[node(i + 1, t)] = true;
                    }
                }
            }
        }

        // Backward co-reachability (from acceptance at layer d, possibly via
        // one trailing marker set).
        let accepts_at_end = |p: StateId| -> bool {
            nfa.is_accepting(p) || marker_succ(p).iter().any(|&(_, t)| nfa.is_accepting(t))
        };
        let mut co_reachable = vec![false; (d + 1) * q];
        for p in 0..q {
            if accepts_at_end(p) {
                co_reachable[node(d, p)] = true;
            }
        }
        for i in (0..d).rev() {
            let b = document[i];
            for p in 0..q {
                let mut ok = false;
                for t in terminal_succ(p, b) {
                    if co_reachable[node(i + 1, t)] {
                        ok = true;
                    }
                }
                if !ok {
                    for (_, p2) in marker_succ(p) {
                        for t in terminal_succ(p2, b) {
                            if co_reachable[node(i + 1, t)] {
                                ok = true;
                            }
                        }
                    }
                }
                if ok {
                    co_reachable[node(i, p)] = true;
                }
            }
        }

        let useful = |n: usize| reachable[n] && co_reachable[n];

        // Materialise edges between useful nodes only.
        let mut edges: Vec<Vec<(MarkerSet, usize)>> = vec![Vec::new(); (d + 1) * q + 1];
        for (i, &b) in document.iter().enumerate() {
            for p in 0..q {
                let from = node(i, p);
                if !useful(from) {
                    continue;
                }
                for t in terminal_succ(p, b) {
                    if useful(node(i + 1, t)) {
                        edges[from].push((MarkerSet::EMPTY, node(i + 1, t)));
                    }
                }
                for (s, p2) in marker_succ(p) {
                    for t in terminal_succ(p2, b) {
                        if useful(node(i + 1, t)) {
                            edges[from].push((s, node(i + 1, t)));
                        }
                    }
                }
            }
        }
        // Final edges into the sink.
        for p in 0..q {
            let from = node(d, p);
            if !useful(from) {
                continue;
            }
            if nfa.is_accepting(p) {
                edges[from].push((MarkerSet::EMPTY, sink));
            }
            for (s, t) in marker_succ(p) {
                if nfa.is_accepting(t) {
                    edges[from].push((s, sink));
                }
            }
        }

        let source = node(0, nfa.start());
        let source_useful = useful(source);
        ProductDag {
            edges,
            source,
            sink,
            source_useful,
            num_vars: automaton.num_vars(),
        }
    }

    /// `true` iff `⟦M⟧(D) ≠ ∅`.
    pub fn has_results(&self) -> bool {
        self.source_useful
    }

    /// Number of nodes carrying at least one outgoing edge (a size proxy for
    /// the "preprocessing output is as large as the document" point the
    /// paper makes in Section 1.4).
    pub fn num_live_nodes(&self) -> usize {
        self.edges.iter().filter(|e| !e.is_empty()).count()
    }

    /// Enumerates all result tuples by depth-first traversal of the pruned
    /// DAG.  Every partial path extends to the sink, so the delay between
    /// results is at most one root-to-sink walk, i.e. `O(d)`.
    pub fn enumerate(&self) -> ProductDagIter<'_> {
        let mut stack = Vec::new();
        if self.source_useful {
            stack.push(Frame {
                node: self.source,
                edge: 0,
                markers: Vec::new(),
            });
        }
        ProductDagIter { dag: self, stack }
    }
}

struct Frame {
    node: usize,
    edge: usize,
    /// Marker entries (position, set) collected on the path so far.
    markers: Vec<(u64, MarkerSet)>,
}

/// Iterator over the result tuples of a [`ProductDag`].
pub struct ProductDagIter<'a> {
    dag: &'a ProductDag,
    stack: Vec<Frame>,
}

impl Iterator for ProductDagIter<'_> {
    type Item = SpanTuple;

    fn next(&mut self) -> Option<SpanTuple> {
        loop {
            let top = self.stack.last_mut()?;
            let node = top.node;
            let edge_idx = top.edge;
            if edge_idx >= self.dag.edges[node].len() {
                self.stack.pop();
                continue;
            }
            top.edge += 1;
            let (set, target) = self.dag.edges[node][edge_idx];
            // The layer of `node` is node / q-ish, but we only need the
            // position, which equals the number of frames on the stack
            // (markers are read at position depth+1).
            let position = self.stack.len() as u64;
            let mut markers = self.stack.last().expect("non-empty").markers.clone();
            if !set.is_empty() {
                markers.push((position, set));
            }
            if target == self.dag.sink {
                let pm = PartialMarkerSet::from_entries(markers);
                return Some(
                    SpanTuple::from_marker_set(&pm, self.dag.num_vars)
                        .expect("accepted subword-marked words encode valid span-tuples"),
                );
            }
            self.stack.push(Frame {
                node: target,
                edge: 0,
                markers,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner::examples::figure_2_spanner;
    use spanner::reference;
    use std::collections::BTreeSet;

    #[test]
    fn dag_enumeration_matches_reference() {
        let m = figure_2_spanner();
        for doc in [&b"aabccaabaa"[..], b"abc", b"ca", b"cc", b"a"] {
            let dag = ProductDag::build(&m, doc);
            let got: BTreeSet<SpanTuple> = dag.enumerate().collect();
            let expected = reference::evaluate(&m, doc);
            assert_eq!(got, expected, "doc {:?}", doc);
            assert_eq!(dag.has_results(), !expected.is_empty());
        }
    }

    #[test]
    fn empty_document_is_handled() {
        // No results for Figure 2 on the empty document (it needs at least
        // one a/b after a close marker).
        let m = figure_2_spanner();
        let dag = ProductDag::build(&m, b"");
        assert!(!dag.has_results());
        assert_eq!(dag.enumerate().count(), 0);
    }

    #[test]
    fn tail_spanning_results_are_found() {
        // x = the trailing b-block, whose close marker sits at position d+1.
        let m = spanner::regex::compile(".*x{b+}", b"ab").unwrap();
        let dag = ProductDag::build(&m, b"aabb");
        let got: BTreeSet<SpanTuple> = dag.enumerate().collect();
        let expected = reference::evaluate(&m, b"aabb");
        assert!(!expected.is_empty());
        assert_eq!(got, expected);
    }

    #[test]
    fn live_node_count_is_linear_in_the_document() {
        let m = figure_2_spanner();
        let doc: Vec<u8> = std::iter::repeat_n(b"aabcc".iter().copied(), 100)
            .flatten()
            .collect();
        let dag = ProductDag::build(&m, &doc);
        assert!(dag.num_live_nodes() >= doc.len());
    }
}
