//! A concurrent, byte-budgeted cache for the pair-dependent matrices of
//! Lemma 6.5.
//!
//! Every [`PreparedDocument`](crate::engine::PreparedDocument) owns one
//! [`MatrixCache`] mapping query tokens to `Arc<Preprocessed>`.  The cache
//! is designed for the service layer's `&self` evaluation contract:
//!
//! * **Sharded `RwLock` map.**  Lookups take a shard read lock only, so any
//!   number of threads can serve cache hits simultaneously; inserts take a
//!   single shard's write lock.
//! * **Benign build races.**  On a miss the `O(size(S)·q³)` matrix build
//!   runs *outside* all locks.  If two threads miss on the same token
//!   concurrently, both build, and the first insert wins — the loser adopts
//!   the winner's `Arc` and drops its own copy.  Matrices are read-only
//!   after construction and deterministic per (query, document) pair, so
//!   duplicated work is the only cost, never divergence.
//! * **LRU admission/eviction under a byte budget.**  Each entry is weighed
//!   by [`Preprocessed::approx_bytes`]; when an insert pushes the resident
//!   total over the budget, least-recently-used entries are evicted until
//!   the total fits again.  Recency is tracked with a lock-free logical
//!   clock, so the LRU order is approximate under contention (exact when
//!   requests are sequential).  Evicted matrices that are still referenced
//!   by in-flight evaluations stay alive through their `Arc`s and are
//!   simply rebuilt on the next request.

use crate::matrices::Preprocessed;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Number of independent lock shards.  Query tokens are sequential, so
/// `token % SHARDS` spreads a pool of queries evenly.
const SHARDS: usize = 8;

/// One cached matrix set plus its bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    pre: Arc<Preprocessed>,
    /// Admission weight, [`Preprocessed::approx_bytes`] at insert time.
    bytes: usize,
    /// Logical timestamp of the last lookup that returned this entry.
    last_used: AtomicU64,
}

/// The outcome of one cache lookup, reported back to the caller for
/// per-request statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLookup {
    /// `true` if the matrices were already resident (no build ran in this
    /// request).
    pub hit: bool,
    /// Wall-clock time this request spent building matrices (zero on a
    /// hit; on a lost build race the loser still reports its build time).
    pub build_time: Duration,
    /// [`Preprocessed::approx_bytes`] of the returned matrices.
    pub bytes: usize,
}

/// Cumulative counters of one [`MatrixCache`] (monotone over its lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from resident matrices.
    pub hits: u64,
    /// Lookups that had to build (including lost build races).
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub resident_entries: usize,
}

/// A sharded, optionally byte-budgeted map from query tokens to the
/// preprocessed matrices of Lemma 6.5.  See the module docs for the
/// concurrency contract.
#[derive(Debug)]
pub struct MatrixCache {
    shards: Box<[RwLock<HashMap<u64, CacheEntry>>]>,
    /// Logical clock for LRU recency.
    clock: AtomicU64,
    /// Sum of `bytes` over all resident entries.
    resident: AtomicUsize,
    /// `None` = unbounded (the pre-service default).
    budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl MatrixCache {
    /// Creates a cache; `budget` is the maximum resident byte total
    /// (`None` = unbounded).
    pub fn new(budget: Option<usize>) -> Self {
        MatrixCache {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, token: u64) -> &RwLock<HashMap<u64, CacheEntry>> {
        &self.shards[(token % SHARDS as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Returns the matrices for `token`, building them with `build` on a
    /// miss.  Concurrent callers with the same token may build in parallel;
    /// the first insert wins (see the module docs).
    pub fn get_or_build(
        &self,
        token: u64,
        build: impl FnOnce() -> Preprocessed,
    ) -> (Arc<Preprocessed>, CacheLookup) {
        if let Some((pre, bytes)) = self.lookup(token) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (
                pre,
                CacheLookup {
                    hit: true,
                    build_time: Duration::ZERO,
                    bytes,
                },
            );
        }

        // Miss: build outside all locks.
        let start = Instant::now();
        let built = Arc::new(build());
        let build_time = start.elapsed();
        let bytes = built.approx_bytes();
        self.misses.fetch_add(1, Ordering::Relaxed);

        let pre = {
            let mut shard = self.shard(token).write().expect("cache lock poisoned");
            match shard.entry(token) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    // Lost a benign build race: adopt the first insert.
                    e.get().last_used.store(self.tick(), Ordering::Relaxed);
                    e.get().pre.clone()
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.resident.fetch_add(bytes, Ordering::Relaxed);
                    e.insert(CacheEntry {
                        pre: built.clone(),
                        bytes,
                        last_used: AtomicU64::new(self.tick()),
                    });
                    built
                }
            }
        };
        self.enforce_budget();
        (
            pre,
            CacheLookup {
                hit: false,
                build_time,
                bytes,
            },
        )
    }

    /// The matrices for `token` (with their stored byte weight) if they are
    /// resident, bumping recency.  The weight comes from the entry, not a
    /// re-walk of the matrices, so hits stay read-lock-only and `O(1)`.
    pub fn lookup(&self, token: u64) -> Option<(Arc<Preprocessed>, usize)> {
        let shard = self.shard(token).read().expect("cache lock poisoned");
        shard.get(&token).map(|e| {
            e.last_used.store(self.tick(), Ordering::Relaxed);
            (e.pre.clone(), e.bytes)
        })
    }

    /// The matrices for `token` if they are resident, *without* bumping
    /// recency or hit counters (introspection).
    pub fn peek(&self, token: u64) -> Option<Arc<Preprocessed>> {
        let shard = self.shard(token).read().expect("cache lock poisoned");
        shard.get(&token).map(|e| e.pre.clone())
    }

    /// Evicts least-recently-used entries until the resident total fits the
    /// budget again.  If a single entry alone exceeds the whole budget it is
    /// evicted too — the invariant `resident_bytes ≤ budget` holds whenever
    /// no insert is in flight.
    fn enforce_budget(&self) {
        let Some(budget) = self.budget else { return };
        while self.resident.load(Ordering::Relaxed) > budget {
            // Snapshot the globally least-recently-used entry.
            let mut lru: Option<(u64, u64)> = None; // (last_used, token)
            for shard in self.shards.iter() {
                let shard = shard.read().expect("cache lock poisoned");
                for (&token, entry) in shard.iter() {
                    let used = entry.last_used.load(Ordering::Relaxed);
                    if lru.map(|(u, _)| used < u).unwrap_or(true) {
                        lru = Some((used, token));
                    }
                }
            }
            let Some((_, token)) = lru else { return };
            let mut shard = self.shard(token).write().expect("cache lock poisoned");
            if let Some(entry) = shard.remove(&token) {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock poisoned").len())
            .sum()
    }

    /// `true` if no matrices are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Drops all resident matrices (in-flight `Arc`s stay alive).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.write().expect("cache lock poisoned");
            for (_, entry) in shard.drain() {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
            }
        }
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes(),
            resident_entries: self.len(),
        }
    }
}

impl Clone for MatrixCache {
    /// Clones the cache *contents* (sharing the immutable `Arc`d matrices)
    /// and the budget; the cumulative counters restart from the current
    /// resident state.
    fn clone(&self) -> Self {
        let clone = MatrixCache::new(self.budget);
        for shard in self.shards.iter() {
            let shard = shard.read().expect("cache lock poisoned");
            for (&token, entry) in shard.iter() {
                let mut target = clone.shard(token).write().expect("cache lock poisoned");
                clone.resident.fetch_add(entry.bytes, Ordering::Relaxed);
                target.insert(
                    token,
                    CacheEntry {
                        pre: entry.pre.clone(),
                        bytes: entry.bytes,
                        last_used: AtomicU64::new(entry.last_used.load(Ordering::Relaxed)),
                    },
                );
            }
        }
        clone
            .clock
            .store(self.clock.load(Ordering::Relaxed), Ordering::Relaxed);
        clone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PreparedDocument, PreparedQuery};
    use slp::families;
    use spanner::regex;

    fn build_one(k: u64) -> Preprocessed {
        let m = regex::compile(".*x{ab}.*", b"ab").unwrap();
        let q = PreparedQuery::determinized(&m);
        let d = PreparedDocument::new(&families::power_word(b"ab", k));
        Preprocessed::build(q.nfa(), d.ended(), q.num_vars())
    }

    #[test]
    fn hits_misses_and_races_share_one_allocation() {
        let cache = MatrixCache::new(None);
        let (a, first) = cache.get_or_build(7, || build_one(16));
        assert!(!first.hit);
        assert!(first.bytes > 0);
        let (b, second) = cache.get_or_build(7, || panic!("must not rebuild"));
        assert!(second.hit);
        assert!(Arc::ptr_eq(&a, &b));
        // A lost race adopts the resident entry.
        let (c, third) = cache.get_or_build(7, || build_one(16));
        assert!(third.hit);
        assert!(Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.resident_entries, 1);
        assert_eq!(stats.resident_bytes, first.bytes);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let probe = build_one(16).approx_bytes();
        // Room for two entries, not three.
        let cache = MatrixCache::new(Some(probe * 5 / 2));
        cache.get_or_build(0, || build_one(16));
        cache.get_or_build(1, || build_one(16));
        assert_eq!(cache.len(), 2);
        // Touch 0 so 1 is the LRU victim.
        assert!(cache.lookup(0).is_some());
        cache.get_or_build(2, || build_one(16));
        assert!(cache.resident_bytes() <= probe * 5 / 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(0).is_some(), "recently used survives");
        assert!(cache.peek(1).is_none(), "LRU entry evicted");
        assert!(cache.peek(2).is_some(), "new entry admitted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_entry_is_not_retained() {
        let cache = MatrixCache::new(Some(8));
        let (pre, lookup) = cache.get_or_build(0, || build_one(64));
        assert!(lookup.bytes > 8);
        // The caller still gets the matrices; the cache stays within budget.
        assert!(!pre.reachable_accepting().is_empty());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn clear_resets_residency() {
        let cache = MatrixCache::new(None);
        cache.get_or_build(0, || build_one(16));
        cache.get_or_build(1, || build_one(32));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn clone_shares_matrices_and_budget() {
        let cache = MatrixCache::new(Some(1 << 20));
        let (a, _) = cache.get_or_build(3, || build_one(16));
        let clone = cache.clone();
        assert_eq!(clone.budget(), Some(1 << 20));
        let b = clone.peek(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(clone.resident_bytes(), cache.resident_bytes());
    }
}
