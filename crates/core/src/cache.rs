//! A concurrent, byte-budgeted cache for the pair-dependent matrices of
//! Lemma 6.5 — shared **service-wide** across documents.
//!
//! Entries are keyed by a [`PairKey`] (document token × query token).  A
//! standalone [`PreparedDocument`](crate::engine::PreparedDocument) owns a
//! private cache; documents registered in a
//! [`Service`](crate::service::Service) are re-homed onto the service's one
//! shared cache, so the matrices of *every* document — and every shard of
//! every document — compete for a single byte pool under one global budget
//! with one shared eviction clock.  The cache is designed for the service
//! layer's `&self` evaluation contract:
//!
//! * **Sharded `RwLock` map.**  Lookups take a shard read lock only, so any
//!   number of threads can serve cache hits simultaneously; inserts take a
//!   single shard's write lock.
//! * **Benign build races.**  On a miss the `O(size(S)·q³)` matrix build
//!   runs *outside* all locks.  If two threads miss on the same key
//!   concurrently, both build, and the first insert wins — the loser adopts
//!   the winner's `Arc` and drops its own copy.  Matrices are read-only
//!   after construction and deterministic per (query, document) pair, so
//!   duplicated work is the only cost, never divergence.
//! * **Global LRU admission/eviction under one byte budget.**  Each entry
//!   is weighed by [`Preprocessed::approx_bytes`]; when an insert pushes
//!   the resident total over the budget, the globally least-recently-used
//!   entries — regardless of which document they belong to — are evicted
//!   until the total fits again.  Recency is tracked with a lock-free
//!   logical clock shared by all documents, so the LRU order is approximate
//!   under contention (exact when requests are sequential).  Evicted
//!   matrices that are still referenced by in-flight evaluations stay alive
//!   through their `Arc`s and are simply rebuilt on the next request.

use crate::matrices::{Preprocessed, ShardBuildStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Number of independent lock shards.  Tokens are sequential, so mixing the
/// document and query halves spreads a pool of pairs evenly.
const SHARDS: usize = 8;

/// The cache key of one (document, query) pair: both sides carry a
/// process-unique token, so one shared map can serve every document of a
/// service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairKey {
    /// The prepared document's unique token.
    pub doc: u64,
    /// The prepared query's unique token.
    pub query: u64,
}

/// One cached matrix set plus its bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    pre: Arc<Preprocessed>,
    /// Admission weight, [`Preprocessed::approx_bytes`] at insert time.
    bytes: usize,
    /// Owning tenant, resolved from the document token at insert time (so
    /// eviction accounting never drifts even if the mapping changes later).
    tenant: u32,
    /// Logical timestamp of the last lookup that returned this entry.
    last_used: AtomicU64,
}

/// Per-tenant state of the shared pool: which document tokens belong to
/// which tenant, each tenant's reserved byte share, and each tenant's
/// current resident total.
#[derive(Debug, Default)]
struct Tenancy {
    /// Document token → owning tenant (absent = default tenant 0).
    doc_tenants: HashMap<u64, u32>,
    /// Tenant → reserved byte share (only tenants with a non-zero share).
    shares: HashMap<u32, usize>,
    /// Tenant → bytes currently resident for its documents.
    resident: HashMap<u32, usize>,
}

/// The outcome of one cache lookup, reported back to the caller for
/// per-request statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLookup {
    /// `true` if the matrices were already resident (no build ran in this
    /// request).
    pub hit: bool,
    /// Wall-clock time this request spent building matrices (zero on a
    /// hit; on a lost build race the loser still reports its build time).
    pub build_time: Duration,
    /// [`Preprocessed::approx_bytes`] of the returned matrices.
    pub bytes: usize,
    /// Per-shard build/merge timings when this lookup ran a scatter-gather
    /// build (`None` on hits and on monolithic builds).
    pub shard_stats: Option<ShardBuildStats>,
}

/// Cumulative counters of one [`MatrixCache`] (monotone over its lifetime).
/// For documents registered in a service these are the *service-wide*
/// totals of the shared cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from resident matrices.
    pub hits: u64,
    /// Lookups that had to build (including lost build races).
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub resident_entries: usize,
}

/// A sharded, optionally byte-budgeted map from (document, query) pair keys
/// to the preprocessed matrices of Lemma 6.5.  See the module docs for the
/// concurrency contract and the global-budget semantics.
#[derive(Debug)]
pub struct MatrixCache {
    shards: Box<[RwLock<HashMap<PairKey, CacheEntry>>]>,
    /// Logical clock for LRU recency, shared by every document on this
    /// cache (the service-wide eviction clock).
    clock: AtomicU64,
    /// Sum of `bytes` over all resident entries.
    resident: AtomicUsize,
    /// `None` = unbounded (the standalone-document default).
    budget: Option<usize>,
    /// Per-tenant document ownership, shares and residency (see the
    /// module docs on tenant shares).
    tenancy: RwLock<Tenancy>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl MatrixCache {
    /// Creates a cache; `budget` is the maximum resident byte total across
    /// every document that shares this cache (`None` = unbounded).
    pub fn new(budget: Option<usize>) -> Self {
        MatrixCache {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            budget,
            tenancy: RwLock::new(Tenancy::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: PairKey) -> &RwLock<HashMap<PairKey, CacheEntry>> {
        let mixed = key
            .doc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.query);
        &self.shards[(mixed % SHARDS as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Assigns a document token to a tenant: entries inserted for that
    /// document from now on count against the tenant's residency and enjoy
    /// its reserved share.  Tokens never assigned belong to the default
    /// tenant 0.
    pub fn assign_doc_tenant(&self, doc: u64, tenant: u32) {
        let mut tenancy = self.tenancy.write().expect("tenancy lock poisoned");
        if tenant == 0 {
            tenancy.doc_tenants.remove(&doc);
        } else {
            tenancy.doc_tenants.insert(doc, tenant);
        }
    }

    /// Sets a tenant's reserved byte share of the budgeted pool (`0`
    /// removes the reservation).  While a tenant's resident total is at or
    /// below its share, budget pressure from *other* tenants cannot evict
    /// its entries — shares are carved out of the global budget, so callers
    /// should keep the sum of shares within it.
    pub fn set_tenant_share(&self, tenant: u32, bytes: usize) {
        let mut tenancy = self.tenancy.write().expect("tenancy lock poisoned");
        if bytes == 0 {
            tenancy.shares.remove(&tenant);
        } else {
            tenancy.shares.insert(tenant, bytes);
        }
    }

    /// Bytes currently resident for one tenant's documents.
    pub fn resident_bytes_for_tenant(&self, tenant: u32) -> usize {
        self.tenancy
            .read()
            .expect("tenancy lock poisoned")
            .resident
            .get(&tenant)
            .copied()
            .unwrap_or(0)
    }

    /// The tenant a document token currently maps to.
    fn tenant_of(&self, doc: u64) -> u32 {
        self.tenancy
            .read()
            .expect("tenancy lock poisoned")
            .doc_tenants
            .get(&doc)
            .copied()
            .unwrap_or(0)
    }

    fn add_tenant_resident(&self, tenant: u32, bytes: usize) {
        let mut tenancy = self.tenancy.write().expect("tenancy lock poisoned");
        *tenancy.resident.entry(tenant).or_default() += bytes;
    }

    fn sub_tenant_resident(&self, tenant: u32, bytes: usize) {
        let mut tenancy = self.tenancy.write().expect("tenancy lock poisoned");
        if let Some(total) = tenancy.resident.get_mut(&tenant) {
            *total = total.saturating_sub(bytes);
            if *total == 0 {
                tenancy.resident.remove(&tenant);
            }
        }
    }

    /// Returns the matrices for `key`, building them with `build` on a
    /// miss.  `build` also reports the scatter-gather timings if the build
    /// was sharded.  Concurrent callers with the same key may build in
    /// parallel; the first insert wins (see the module docs).
    pub fn get_or_build(
        &self,
        key: PairKey,
        build: impl FnOnce() -> (Preprocessed, Option<ShardBuildStats>),
    ) -> (Arc<Preprocessed>, CacheLookup) {
        if let Some((pre, bytes)) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (
                pre,
                CacheLookup {
                    hit: true,
                    build_time: Duration::ZERO,
                    bytes,
                    shard_stats: None,
                },
            );
        }

        // Miss: build outside all locks.
        let start = Instant::now();
        let (built, shard_stats) = build();
        let built = Arc::new(built);
        let build_time = start.elapsed();
        let bytes = built.approx_bytes();
        self.misses.fetch_add(1, Ordering::Relaxed);

        let tenant = self.tenant_of(key.doc);
        let pre = {
            let mut shard = self.shard(key).write().expect("cache lock poisoned");
            match shard.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    // Lost a benign build race: adopt the first insert.
                    e.get().last_used.store(self.tick(), Ordering::Relaxed);
                    e.get().pre.clone()
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.resident.fetch_add(bytes, Ordering::Relaxed);
                    self.add_tenant_resident(tenant, bytes);
                    e.insert(CacheEntry {
                        pre: built.clone(),
                        bytes,
                        tenant,
                        last_used: AtomicU64::new(self.tick()),
                    });
                    built
                }
            }
        };
        self.enforce_budget();
        (
            pre,
            CacheLookup {
                hit: false,
                build_time,
                bytes,
                shard_stats,
            },
        )
    }

    /// The matrices for `key` (with their stored byte weight) if they are
    /// resident, bumping recency.  The weight comes from the entry, not a
    /// re-walk of the matrices, so hits stay read-lock-only and `O(1)`.
    pub fn lookup(&self, key: PairKey) -> Option<(Arc<Preprocessed>, usize)> {
        let shard = self.shard(key).read().expect("cache lock poisoned");
        shard.get(&key).map(|e| {
            e.last_used.store(self.tick(), Ordering::Relaxed);
            (e.pre.clone(), e.bytes)
        })
    }

    /// The matrices for `key` if they are resident, *without* bumping
    /// recency or hit counters (introspection).
    pub fn peek(&self, key: PairKey) -> Option<Arc<Preprocessed>> {
        let shard = self.shard(key).read().expect("cache lock poisoned");
        shard.get(&key).map(|e| e.pre.clone())
    }

    /// Copies one document's entries from `other` into this cache (used
    /// when a prepared document joins a service: its already built matrices
    /// follow it into the shared pool).  Only entries keyed by `doc` are
    /// taken, and `other` is left untouched — it may be another service's
    /// shared pool (a registered document was cloned across services),
    /// whose residents must not be disturbed; the matrices themselves are
    /// shared `Arc`s, so a copy costs no rebuild.  Existing entries win on
    /// key collision.
    pub fn absorb_doc(&self, other: &MatrixCache, doc: u64) {
        for shard in other.shards.iter() {
            let shard = shard.read().expect("cache lock poisoned");
            for (&key, entry) in shard.iter().filter(|(k, _)| k.doc == doc) {
                let tenant = self.tenant_of(key.doc);
                let mut target = self.shard(key).write().expect("cache lock poisoned");
                if let std::collections::hash_map::Entry::Vacant(e) = target.entry(key) {
                    self.resident.fetch_add(entry.bytes, Ordering::Relaxed);
                    self.add_tenant_resident(tenant, entry.bytes);
                    e.insert(CacheEntry {
                        pre: entry.pre.clone(),
                        bytes: entry.bytes,
                        tenant,
                        last_used: AtomicU64::new(self.tick()),
                    });
                }
            }
        }
        self.enforce_budget();
    }

    /// Evicts least-recently-used entries until the resident total fits the
    /// budget again.  If a single entry alone exceeds the whole budget it is
    /// evicted too — the invariant `resident_bytes ≤ budget` holds whenever
    /// no insert is in flight.
    ///
    /// Victim selection honours tenant shares: an entry is *protected* while
    /// its tenant's resident total is at or below the tenant's reserved
    /// share, so budget pressure (e.g. one tenant flooding the pool) evicts
    /// from unprotected tenants first.  Only if every resident entry is
    /// protected — shares oversubscribed against the budget, which callers
    /// are expected to avoid — does eviction fall back to the global LRU.
    fn enforce_budget(&self) {
        let Some(budget) = self.budget else { return };
        while self.resident.load(Ordering::Relaxed) > budget {
            // Snapshot tenant protection, then the least-recently-used
            // entry among unprotected tenants (and globally, as fallback).
            let (shares, by_tenant) = {
                let tenancy = self.tenancy.read().expect("tenancy lock poisoned");
                (tenancy.shares.clone(), tenancy.resident.clone())
            };
            let protected = |tenant: u32| {
                shares
                    .get(&tenant)
                    .is_some_and(|&share| by_tenant.get(&tenant).copied().unwrap_or(0) <= share)
            };
            let mut lru: Option<(u64, PairKey)> = None; // (last_used, key)
            let mut lru_any: Option<(u64, PairKey)> = None;
            for shard in self.shards.iter() {
                let shard = shard.read().expect("cache lock poisoned");
                for (&key, entry) in shard.iter() {
                    let used = entry.last_used.load(Ordering::Relaxed);
                    if lru_any.map(|(u, _)| used < u).unwrap_or(true) {
                        lru_any = Some((used, key));
                    }
                    if !protected(entry.tenant) && lru.map(|(u, _)| used < u).unwrap_or(true) {
                        lru = Some((used, key));
                    }
                }
            }
            let Some((_, key)) = lru.or(lru_any) else {
                return;
            };
            let mut shard = self.shard(key).write().expect("cache lock poisoned");
            if let Some(entry) = shard.remove(&key) {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                self.sub_tenant_resident(entry.tenant, entry.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of resident entries (all documents).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock poisoned").len())
            .sum()
    }

    /// Number of resident entries belonging to one document.
    pub fn len_for(&self, doc: u64) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("cache lock poisoned")
                    .keys()
                    .filter(|k| k.doc == doc)
                    .count()
            })
            .sum()
    }

    /// `true` if no matrices are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident (all documents).
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Bytes currently resident for one document's entries.
    pub fn resident_bytes_for(&self, doc: u64) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("cache lock poisoned")
                    .iter()
                    .filter(|(k, _)| k.doc == doc)
                    .map(|(_, e)| e.bytes)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Drops all resident matrices (in-flight `Arc`s stay alive).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.write().expect("cache lock poisoned");
            for (_, entry) in shard.drain() {
                self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                self.sub_tenant_resident(entry.tenant, entry.bytes);
            }
        }
    }

    /// Drops one document's resident matrices, leaving the other documents
    /// sharing this cache untouched.
    pub fn clear_doc(&self, doc: u64) {
        let mut freed: Vec<(u32, usize)> = Vec::new();
        for shard in self.shards.iter() {
            let mut shard = shard.write().expect("cache lock poisoned");
            shard.retain(|key, entry| {
                if key.doc == doc {
                    self.resident.fetch_sub(entry.bytes, Ordering::Relaxed);
                    freed.push((entry.tenant, entry.bytes));
                    false
                } else {
                    true
                }
            });
        }
        for (tenant, bytes) in freed {
            self.sub_tenant_resident(tenant, bytes);
        }
        // The token is never reissued: drop its tenant mapping too.
        self.tenancy
            .write()
            .expect("tenancy lock poisoned")
            .doc_tenants
            .remove(&doc);
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes(),
            resident_entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PreparedDocument, PreparedQuery};
    use slp::families;
    use spanner::regex;

    fn build_one(k: u64) -> (Preprocessed, Option<ShardBuildStats>) {
        let m = regex::compile(".*x{ab}.*", b"ab").unwrap();
        let q = PreparedQuery::determinized(&m);
        let d = PreparedDocument::new(&families::power_word(b"ab", k));
        (Preprocessed::build(q.nfa(), d.ended(), q.num_vars()), None)
    }

    fn key(doc: u64, query: u64) -> PairKey {
        PairKey { doc, query }
    }

    #[test]
    fn hits_misses_and_races_share_one_allocation() {
        let cache = MatrixCache::new(None);
        let (a, first) = cache.get_or_build(key(0, 7), || build_one(16));
        assert!(!first.hit);
        assert!(first.bytes > 0);
        let (b, second) = cache.get_or_build(key(0, 7), || panic!("must not rebuild"));
        assert!(second.hit);
        assert!(Arc::ptr_eq(&a, &b));
        // A lost race adopts the resident entry.
        let (c, third) = cache.get_or_build(key(0, 7), || build_one(16));
        assert!(third.hit);
        assert!(Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.resident_entries, 1);
        assert_eq!(stats.resident_bytes, first.bytes);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let probe = build_one(16).0.approx_bytes();
        // Room for two entries, not three.
        let cache = MatrixCache::new(Some(probe * 5 / 2));
        cache.get_or_build(key(0, 0), || build_one(16));
        cache.get_or_build(key(0, 1), || build_one(16));
        assert_eq!(cache.len(), 2);
        // Touch 0 so 1 is the LRU victim.
        assert!(cache.lookup(key(0, 0)).is_some());
        cache.get_or_build(key(0, 2), || build_one(16));
        assert!(cache.resident_bytes() <= probe * 5 / 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(key(0, 0)).is_some(), "recently used survives");
        assert!(cache.peek(key(0, 1)).is_none(), "LRU entry evicted");
        assert!(cache.peek(key(0, 2)).is_some(), "new entry admitted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn budget_is_global_across_documents() {
        let probe = build_one(16).0.approx_bytes();
        let cache = MatrixCache::new(Some(probe * 5 / 2));
        // Two different documents, one query each, then a third document:
        // eviction picks the globally least-recently-used pair, crossing
        // document boundaries.
        cache.get_or_build(key(10, 0), || build_one(16));
        cache.get_or_build(key(11, 0), || build_one(16));
        assert!(cache.lookup(key(10, 0)).is_some()); // doc 11 is now LRU
        cache.get_or_build(key(12, 0), || build_one(16));
        assert!(cache.peek(key(10, 0)).is_some());
        assert!(cache.peek(key(11, 0)).is_none(), "other document evicted");
        assert!(cache.peek(key(12, 0)).is_some());
        assert_eq!(cache.len_for(10), 1);
        assert_eq!(cache.len_for(11), 0);
        assert!(cache.resident_bytes_for(10) > 0);
        assert_eq!(cache.resident_bytes_for(11), 0);
    }

    #[test]
    fn budget_accounting_matches_the_packed_plane_sizes() {
        // `approx_bytes` now charges the bit-packed `R_A` bitplanes
        // (two `⌈q/64⌉`-word rows per matrix row, padding included), so a
        // budget tuned against it admits exactly as many entries as fit.
        let (pre, _) = build_one(16);
        let probe = pre.approx_bytes();
        let q = pre.q;
        let plane_bytes = q * q.div_ceil(64) * std::mem::size_of::<u64>();
        let packed_floor = pre.r.len() * 2 * plane_bytes;
        assert!(
            probe >= packed_floor,
            "approx_bytes {probe} must cover {packed_floor} bytes of bitplanes"
        );
        // And the charge really is the heap the planes hold, not a stale
        // per-entry estimate: every matrix reports its own plane bytes.
        let plane_sum: usize = pre.r.iter().map(|m| m.heap_bytes()).sum();
        assert!(probe >= plane_sum);
        // Eviction respects the packed sizes: a budget for two packed
        // entries holds two, and the third displaces the LRU entry.
        let cache = MatrixCache::new(Some(probe * 2));
        cache.get_or_build(key(0, 0), || build_one(16));
        cache.get_or_build(key(0, 1), || build_one(16));
        assert_eq!(cache.len(), 2);
        cache.get_or_build(key(0, 2), || build_one(16));
        assert_eq!(cache.len(), 2, "third packed entry displaces one");
        assert!(cache.resident_bytes() <= probe * 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn tenant_share_protects_entries_from_other_tenants_pressure() {
        let probe = build_one(16).0.approx_bytes();
        // Room for three entries.  Tenant 7 reserves one entry's worth.
        let cache = MatrixCache::new(Some(probe * 3));
        cache.assign_doc_tenant(100, 7);
        cache.set_tenant_share(7, probe);
        // Tenant 7 caches one pair, then goes idle (it becomes the global
        // LRU candidate).
        cache.get_or_build(key(100, 0), || build_one(16));
        // The default tenant floods the pool far past the budget.
        for q in 0..6 {
            cache.get_or_build(key(200, q), || build_one(16));
        }
        assert!(cache.resident_bytes() <= probe * 3);
        assert!(
            cache.peek(key(100, 0)).is_some(),
            "the shared entry is within tenant 7's share and must survive"
        );
        assert_eq!(cache.resident_bytes_for_tenant(7), probe);
        // Beyond its share the tenant is fair game: a second pair from
        // tenant 7 pushes it over, and pressure may now evict its LRU.
        cache.get_or_build(key(100, 1), || build_one(16));
        for q in 6..12 {
            cache.get_or_build(key(200, q), || build_one(16));
        }
        assert!(cache.resident_bytes_for_tenant(7) <= probe);
    }

    #[test]
    fn clear_doc_releases_tenant_residency() {
        let cache = MatrixCache::new(None);
        cache.assign_doc_tenant(5, 3);
        cache.get_or_build(key(5, 0), || build_one(16));
        assert!(cache.resident_bytes_for_tenant(3) > 0);
        cache.clear_doc(5);
        assert_eq!(cache.resident_bytes_for_tenant(3), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn oversized_entry_is_not_retained() {
        let cache = MatrixCache::new(Some(8));
        let (pre, lookup) = cache.get_or_build(key(0, 0), || build_one(64));
        assert!(lookup.bytes > 8);
        // The caller still gets the matrices; the cache stays within budget.
        assert!(!pre.reachable_accepting().is_empty());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn clear_resets_residency() {
        let cache = MatrixCache::new(None);
        cache.get_or_build(key(0, 0), || build_one(16));
        cache.get_or_build(key(0, 1), || build_one(32));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn clear_doc_leaves_other_documents_resident() {
        let cache = MatrixCache::new(None);
        cache.get_or_build(key(1, 0), || build_one(16));
        cache.get_or_build(key(2, 0), || build_one(16));
        cache.clear_doc(1);
        assert_eq!(cache.len_for(1), 0);
        assert_eq!(cache.len_for(2), 1);
        assert_eq!(cache.resident_bytes(), cache.resident_bytes_for(2));
    }

    #[test]
    fn absorb_doc_copies_only_that_documents_entries() {
        // The source doubles as another service's shared pool: it must be
        // left completely untouched when document 5 is re-homed elsewhere.
        let source = MatrixCache::new(None);
        let (a, _) = source.get_or_build(key(5, 3), || build_one(16));
        source.get_or_build(key(6, 3), || build_one(16));
        let before = source.resident_bytes();
        let shared = MatrixCache::new(Some(1 << 20));
        shared.absorb_doc(&source, 5);
        assert_eq!(source.len_for(5), 1, "the source keeps its entries");
        assert_eq!(source.len_for(6), 1);
        assert_eq!(source.resident_bytes(), before);
        let b = shared.peek(key(5, 3)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "the copy shares the Arc, no rebuild");
        assert!(shared.peek(key(6, 3)).is_none(), "only doc 5 was taken");
        assert_eq!(shared.resident_bytes(), shared.resident_bytes_for(5));
    }
}
