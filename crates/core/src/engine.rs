//! The two-stage evaluation engine: query-side preparation × document-side
//! preparation, with the [`Engine`] compatibility wrapper over the
//! concurrent [`Service`] pool.
//!
//! The `O(|M| + size(S)·q³)` preprocessing of Lemma 6.5 factors cleanly into
//! two independent halves plus one pair-dependent product:
//!
//! 1. **[`PreparedQuery`]** — automaton-only work (ε-removal, optional
//!    determinisation, the end-of-document transformation of Section 6.1).
//!    Depends on `M` alone, so it is done **once per query** and reused
//!    across every document.
//! 2. **[`PreparedDocument`]** — SLP-only work (extending the terminal
//!    alphabet and appending the `#` sentinel, `D ↦ D·#`).  Depends on `S`
//!    alone, so it is done **once per document** and reused across every
//!    query.  The pair-dependent matrices `R_A` / `M_{T_x}` of
//!    [`Preprocessed`] are built on first use of a (query, document) pair
//!    and cached here, keyed by the query's unique token, in a concurrent
//!    (optionally byte-budgeted) [`MatrixCache`] — so sharing a prepared
//!    document across threads needs no locking on the caller's side.
//! 3. **[`Engine`]** — the original pool API, now a thin wrapper over
//!    [`Service`].  [`Engine::evaluate`] takes
//!    `&self` and may run from any number of threads; for task-oriented
//!    requests, per-request statistics and batch fan-out use the service
//!    directly.
//!
//! ```
//! use slp::families;
//! use spanner::regex;
//! use spanner_slp_core::engine::Engine;
//!
//! let mut engine = Engine::new();
//! let q = engine.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
//! let d1 = engine.add_document(&families::power_word(b"ab", 100));
//! let d2 = engine.add_document(&families::power_word(b"ab", 1000));
//! assert_eq!(engine.evaluate(q, d1).count(), 100);
//! assert_eq!(engine.evaluate(q, d2).count(), 1000);
//! // The automaton-side transformation ran once; the matrices were built
//! // once per document and are now cached.
//! assert!(engine.evaluate(q, d2).is_non_empty());
//! ```

use crate::cache::{CacheLookup, CacheStats, MatrixCache, PairKey};
use crate::error::EvalError;
use crate::executor::{LocalExecutor, ShardExecutor};
use crate::matrices::Preprocessed;
use crate::prepared::{end_transform, EByte};
use crate::service::Service;
use crate::trace::ShardTrace;
use crate::{compute, count, enumerate, model_check};
use slp::shard::{self, ShardLayout, ShardedDocument};
use slp::NormalFormSlp;
use spanner::{MarkedSymbol, SpanTuple, SpannerAutomaton};
use spanner_automata::nfa::Nfa;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of unique tokens identifying prepared queries in matrix caches.
static NEXT_QUERY_TOKEN: AtomicU64 = AtomicU64::new(0);

/// Source of unique tokens identifying prepared documents in matrix caches
/// (the other half of a [`PairKey`]).
static NEXT_DOC_TOKEN: AtomicU64 = AtomicU64::new(0);

/// The query-side half of the preprocessing: everything that depends only on
/// the automaton `M`.
///
/// Construction performs ε-removal (if needed), optional determinisation and
/// the end-of-document transformation `L(M') = L(M)·#` exactly once; the
/// result is reused across every document the query is evaluated on.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    token: u64,
    /// ε-free automaton over `Σ ∪ P(Γ_X)` (determinised iff constructed via
    /// [`PreparedQuery::determinized`] or already deterministic).
    automaton: SpannerAutomaton<u8>,
    /// The end-transformed automaton over `Σ∪{#} ∪ P(Γ_X)`.
    nfa: Nfa<MarkedSymbol<EByte>>,
    deterministic: bool,
}

impl PreparedQuery {
    /// Prepares a query without determinising: ε-transitions are removed,
    /// then the end-of-document transformation is applied.  Suitable for
    /// [`compute`] (duplicate-elimination is built in); use
    /// [`PreparedQuery::determinized`] for duplicate-free enumeration and
    /// counting.
    pub fn new(automaton: &SpannerAutomaton<u8>) -> Self {
        let automaton = if automaton.nfa().has_epsilon() {
            automaton.without_epsilon()
        } else {
            automaton.clone()
        };
        Self::from_epsilon_free(automaton)
    }

    /// Prepares a query for the full task suite: non-deterministic automata
    /// are determinised first (this affects combined complexity only; see
    /// the end of Section 8 of the paper).
    pub fn determinized(automaton: &SpannerAutomaton<u8>) -> Self {
        let automaton = if automaton.is_deterministic() {
            automaton.clone()
        } else {
            automaton.without_epsilon().determinized()
        };
        Self::from_epsilon_free(automaton)
    }

    fn from_epsilon_free(automaton: SpannerAutomaton<u8>) -> Self {
        let deterministic = automaton.is_deterministic();
        let nfa = end_transform(automaton.nfa());
        PreparedQuery {
            token: NEXT_QUERY_TOKEN.fetch_add(1, Ordering::Relaxed),
            automaton,
            nfa,
            deterministic,
        }
    }

    /// The unique token identifying this prepared query in document-side
    /// matrix caches.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The ε-free (and possibly determinised) automaton over `Σ ∪ P(Γ_X)`.
    pub fn automaton(&self) -> &SpannerAutomaton<u8> {
        &self.automaton
    }

    /// The end-transformed, ε-free automaton the matrices are built against.
    pub fn nfa(&self) -> &Nfa<MarkedSymbol<EByte>> {
        &self.nfa
    }

    /// Number of span variables `|X|`.
    pub fn num_vars(&self) -> usize {
        self.automaton.num_vars()
    }

    /// `true` if the prepared automaton is deterministic — the precondition
    /// of duplicate-free enumeration (Lemma 8.8) and of counting.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }
}

/// The document-side half of the preprocessing: everything that depends only
/// on the SLP `S`, plus a concurrent cache of the pair-dependent matrices
/// keyed by (document, query) pair.
///
/// All methods take `&self`; the matrix cache is a sharded-lock
/// [`MatrixCache`], so one prepared document can serve any number of
/// threads simultaneously.  A duplicate matrix build for the same query on
/// two racing threads is benign (first insert wins — the matrices are
/// deterministic and read-only after construction).  A standalone prepared
/// document owns a private cache; documents registered in a
/// [`Service`] share the service's one cache, so every
/// document competes for one global byte budget.
///
/// A document can additionally be *sharded*
/// ([`PreparedDocument::sharded`]): its SLP is cut at the start rule into
/// `k` balanced sub-grammars whose matrix passes run independently and are
/// merged at the root (see [`Preprocessed::build_sharded`]).  Evaluation
/// results are identical to the monolithic path.
#[derive(Debug, Clone)]
pub struct PreparedDocument {
    original: NormalFormSlp<u8>,
    /// The SLP for `D·#` over the extended alphabet.
    ended: NormalFormSlp<EByte>,
    /// Where each shard's rules live inside `ended`, for sharded documents.
    shard_layout: Option<ShardLayout>,
    /// This document's half of the matrix-cache [`PairKey`].
    token: u64,
    /// `R_A` / `M_{T_x}` matrices per (document, query) pair (Lemma 6.5) —
    /// private here, re-homed onto the shared service cache on
    /// registration.
    cache: Arc<MatrixCache>,
    /// The backend that runs this document's per-shard matrix passes
    /// ([`LocalExecutor`] by default; a service configured with a remote
    /// pool re-homes this on registration, like the cache).  Unused for
    /// monolithic documents.
    executor: Arc<dyn ShardExecutor>,
}

impl PreparedDocument {
    /// Prepares a document: extends the terminal alphabet by the sentinel
    /// and appends it (`D ↦ D·#`, Section 6.1).  Done once per document and
    /// reused across every query.  The matrix cache is unbounded; use
    /// [`PreparedDocument::with_cache_budget`] to cap it.
    pub fn new(document: &NormalFormSlp<u8>) -> Self {
        Self::with_cache_budget(document, None)
    }

    /// Like [`PreparedDocument::new`], but caps the resident bytes of
    /// cached matrices at `budget` with LRU eviction (`None` = unbounded).
    pub fn with_cache_budget(document: &NormalFormSlp<u8>, budget: Option<usize>) -> Self {
        PreparedDocument {
            original: document.clone(),
            ended: document
                .map_terminals(EByte::Byte)
                .append_terminal(EByte::End),
            shard_layout: None,
            token: NEXT_DOC_TOKEN.fetch_add(1, Ordering::Relaxed),
            cache: Arc::new(MatrixCache::new(budget)),
            executor: Arc::new(LocalExecutor),
        }
    }

    /// Prepares a document for scatter-gather evaluation: the SLP is split
    /// at the start rule into `k` balanced sub-grammars (`k` clamped to
    /// `1..=document length`, see [`slp::shard::split`]), composed back with
    /// a root spine, and the `#` sentinel appended.  Matrix builds then run
    /// one independent pass per shard and merge at the root; every
    /// evaluation result is identical to [`PreparedDocument::new`].
    pub fn sharded(document: &NormalFormSlp<u8>, k: usize) -> Self {
        let (combined, layout) = shard::split(document, k).compose();
        Self::from_composed(document.clone(), combined, layout)
    }

    /// Prepares an already split document (e.g. shards assembled from a
    /// corpus pipeline).  The original text is recovered from the shard
    /// concatenation.
    pub fn from_shards(sharded: ShardedDocument<u8>) -> Self {
        let (combined, layout) = sharded.compose();
        Self::from_composed(combined.clone(), combined, layout)
    }

    /// Like [`PreparedDocument::sharded`], but reusing a split the caller
    /// already performed on `document` (e.g. the probe split of an
    /// auto-tuned registration), so the grammar surgery runs once.  Unlike
    /// [`PreparedDocument::from_shards`], the original grammar is kept for
    /// model checking.
    pub fn sharded_precut(document: &NormalFormSlp<u8>, sharded: &ShardedDocument<u8>) -> Self {
        debug_assert_eq!(
            sharded.total_len(),
            document.document_len(),
            "the split must be of this document"
        );
        let (combined, layout) = sharded.compose();
        Self::from_composed(document.clone(), combined, layout)
    }

    fn from_composed(
        original: NormalFormSlp<u8>,
        combined: NormalFormSlp<u8>,
        layout: ShardLayout,
    ) -> Self {
        // `map_terminals` keeps rule indices; `append_terminal` adds the
        // sentinel rules *after* every shard block — both preserve the
        // layout's self-contained ranges.
        let ended = combined
            .map_terminals(EByte::Byte)
            .append_terminal(EByte::End);
        PreparedDocument {
            original,
            ended,
            shard_layout: Some(layout),
            token: NEXT_DOC_TOKEN.fetch_add(1, Ordering::Relaxed),
            cache: Arc::new(MatrixCache::new(None)),
            executor: Arc::new(LocalExecutor),
        }
    }

    /// The original SLP for `D`.
    pub fn original(&self) -> &NormalFormSlp<u8> {
        &self.original
    }

    /// The unique token identifying this prepared document in matrix
    /// caches (the document half of a [`PairKey`]).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// `true` if this document evaluates via the scatter-gather shard path.
    pub fn is_sharded(&self) -> bool {
        self.shard_layout.is_some()
    }

    /// Number of shards (1 for monolithic documents).
    pub fn shard_count(&self) -> usize {
        self.shard_layout
            .as_ref()
            .map_or(1, |layout| layout.ranges.len())
    }

    /// The shard layout of the ended SLP, if this document is sharded.
    pub fn shard_layout(&self) -> Option<&ShardLayout> {
        self.shard_layout.as_ref()
    }

    /// Re-homes this document's matrix cache onto `cache` (the service's
    /// shared pool), carrying over any matrices already built for *this*
    /// document — the previous cache may be another service's shared pool
    /// (this document was cloned across services), which is left untouched.
    pub(crate) fn rehome_cache(&mut self, cache: Arc<MatrixCache>) {
        if Arc::ptr_eq(&self.cache, &cache) {
            return;
        }
        cache.absorb_doc(&self.cache, self.token);
        self.cache = cache;
    }

    /// Sets the backend that runs this document's per-shard matrix passes
    /// (the default is the in-process [`LocalExecutor`]).  Registering the
    /// document in a [`Service`] overrides this with the service-wide
    /// executor (see `ServiceBuilder::shard_executor`).  Has no effect on
    /// monolithic documents.
    pub fn set_shard_executor(&mut self, executor: Arc<dyn ShardExecutor>) {
        self.executor = executor;
    }

    /// The backend this document's sharded matrix builds run on.
    pub fn shard_executor(&self) -> &Arc<dyn ShardExecutor> {
        &self.executor
    }

    /// The SLP for `D·#`.
    pub fn ended(&self) -> &NormalFormSlp<EByte> {
        &self.ended
    }

    /// Length of the (original) document `|D|`.
    pub fn document_len(&self) -> u64 {
        self.original.document_len()
    }

    /// The matrices of Lemma 6.5 for this document and the given query,
    /// built on first use (`O(|M| + size(S)·q³)`) and cached thereafter.
    pub fn matrices(&self, query: &PreparedQuery) -> Arc<Preprocessed> {
        self.matrices_with_stats(query).0
    }

    /// Like [`PreparedDocument::matrices`], additionally reporting whether
    /// the lookup hit the cache, what a miss cost, and — for sharded
    /// documents — the per-shard build/merge timings of a miss.
    pub fn matrices_with_stats(&self, query: &PreparedQuery) -> (Arc<Preprocessed>, CacheLookup) {
        self.matrices_traced(query, None)
    }

    /// [`PreparedDocument::matrices_with_stats`] for a *sampled* request:
    /// the trace handle rides into a sharded build so executors attribute
    /// per-shard time to the request's span tree.  `None` is exactly the
    /// untraced lookup (and a cache *hit* records nothing here either way —
    /// the caller times the lookup itself).
    pub fn matrices_traced(
        &self,
        query: &PreparedQuery,
        trace: Option<ShardTrace>,
    ) -> (Arc<Preprocessed>, CacheLookup) {
        let key = PairKey {
            doc: self.token,
            query: query.token(),
        };
        self.cache.get_or_build(key, || match &self.shard_layout {
            Some(layout) => {
                let (pre, stats) = Preprocessed::build_sharded_traced(
                    query.nfa(),
                    &self.ended,
                    query.num_vars(),
                    layout,
                    &*self.executor,
                    trace,
                );
                (pre, Some(stats))
            }
            None => (
                Preprocessed::build(query.nfa(), &self.ended, query.num_vars()),
                None,
            ),
        })
    }

    /// The matrices for `query` if they are already cached (without
    /// touching LRU recency).
    pub fn cached_matrices(&self, query: &PreparedQuery) -> Option<Arc<Preprocessed>> {
        self.cache.peek(PairKey {
            doc: self.token,
            query: query.token(),
        })
    }

    /// Number of queries whose matrices are currently cached for this
    /// document.
    pub fn cached_query_count(&self) -> usize {
        self.cache.len_for(self.token)
    }

    /// Bytes of this document's preprocessed matrices currently resident in
    /// the (possibly shared) cache.
    pub fn cache_bytes(&self) -> usize {
        self.cache.resident_bytes_for(self.token)
    }

    /// The byte budget of the cache this document lives in (`None` =
    /// unbounded).  Service-registered documents report the service-wide
    /// budget.
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache.budget()
    }

    /// Cumulative counters of the cache this document lives in.  For
    /// service-registered documents these are the *service-wide* totals of
    /// the shared pool.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops this document's cached matrices (e.g. to bound memory in a
    /// long-running pool), leaving other documents sharing the cache
    /// untouched.  In-flight evaluations holding `Arc`s are unaffected.
    pub fn clear_cache(&self) {
        self.cache.clear_doc(self.token);
    }
}

/// Identifier of a query registered in an [`Engine`] /
/// [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(pub(crate) usize);

impl QueryId {
    /// The pool index behind the id.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a document registered in an [`Engine`] /
/// [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DocumentId(pub(crate) usize);

impl DocumentId {
    /// The pool index behind the id.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A pool of prepared queries and prepared documents with evaluation entry
/// points over their cross-product — the original engine API, kept as a
/// thin compatibility wrapper over [`Service`].
///
/// Queries are determinised on registration (so every task, including
/// duplicate-free enumeration and counting, is available); documents are
/// end-transformed on registration.  The expensive pair-dependent matrices
/// are built lazily on first evaluation of a pair and cached in the
/// service's shared pool.  [`Engine::evaluate`] takes `&self` and is safe
/// to call from any number of threads; new code that wants per-request
/// statistics, task-level requests, batch fan-out or bounded caches should
/// use the service directly (available via [`Engine::service`]).
#[derive(Debug, Default)]
pub struct Engine {
    service: Service,
}

impl Engine {
    /// Creates an empty engine (a default-configured service pool).
    pub fn new() -> Self {
        Engine::default()
    }

    /// Wraps an existing service, sharing its pools and configuration.
    pub fn from_service(service: Service) -> Self {
        Engine { service }
    }

    /// The underlying service (task requests, batches, statistics).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Consumes the engine into its service.
    pub fn into_service(self) -> Service {
        self.service
    }

    /// Registers a query, performing the automaton-side preparation
    /// (ε-removal, determinisation, end-transformation) exactly once.
    pub fn add_query(&mut self, automaton: &SpannerAutomaton<u8>) -> QueryId {
        self.service.add_query(automaton)
    }

    /// Registers an already prepared query.
    ///
    /// The engine guarantees every pooled query is deterministic (so
    /// [`Evaluation::count`] and [`Evaluation::enumerate`] are
    /// duplicate-free); a query prepared with the non-determinising
    /// [`PreparedQuery::new`] is upgraded here via its ε-free automaton.
    pub fn add_prepared_query(&mut self, query: PreparedQuery) -> QueryId {
        self.service.add_prepared_query(query)
    }

    /// Registers a document, performing the document-side preparation
    /// (`D ↦ D·#`) exactly once.
    pub fn add_document(&mut self, document: &NormalFormSlp<u8>) -> DocumentId {
        self.service.add_document(document)
    }

    /// Registers an already prepared document.
    pub fn add_prepared_document(&mut self, document: PreparedDocument) -> DocumentId {
        self.service.add_prepared_document(document)
    }

    /// The prepared query behind an id.
    pub fn query(&self, q: QueryId) -> Arc<PreparedQuery> {
        self.service.query(q)
    }

    /// The prepared document behind an id.
    pub fn document(&self, d: DocumentId) -> Arc<PreparedDocument> {
        self.service.document(d)
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.service.num_queries()
    }

    /// Number of registered documents.
    pub fn num_documents(&self) -> usize {
        self.service.num_documents()
    }

    /// Binds a (query, document) pair for evaluation, building (or fetching
    /// from cache) the pair's matrices.  The returned [`Evaluation`] answers
    /// all tasks of the paper without further preprocessing; it owns `Arc`s
    /// into the pool, so it remains valid for as long as the caller keeps
    /// it.
    ///
    /// For batches, use [`Service::run_batch`] (via [`Engine::service`]) —
    /// it is the single fan-out point for scattering requests over
    /// documents and shards.
    pub fn evaluate(&self, q: QueryId, d: DocumentId) -> Evaluation {
        self.service.evaluation(q, d)
    }
}

/// A (query, document) pair bound for evaluation: all four tasks of the
/// paper, answered from the shared preprocessing without repeating it.
///
/// The evaluation owns `Arc`s of both prepared stages and of the matrices,
/// so it is `Send`, independent of pool locks, and stays valid even if the
/// matrices are later evicted from the document's cache.
#[derive(Debug, Clone)]
pub struct Evaluation {
    query: Arc<PreparedQuery>,
    document: Arc<PreparedDocument>,
    pre: Arc<Preprocessed>,
}

impl Evaluation {
    /// Assembles an evaluation from its shared parts.
    pub fn from_parts(
        query: Arc<PreparedQuery>,
        document: Arc<PreparedDocument>,
        pre: Arc<Preprocessed>,
    ) -> Self {
        Evaluation {
            query,
            document,
            pre,
        }
    }

    /// The prepared query of this pair.
    pub fn query(&self) -> &PreparedQuery {
        &self.query
    }

    /// The prepared document of this pair.
    pub fn document(&self) -> &PreparedDocument {
        &self.document
    }

    /// The pair's matrices (Lemma 6.5).
    pub fn matrices(&self) -> &Preprocessed {
        &self.pre
    }

    /// The pair's matrices as a shareable `Arc`.
    pub fn matrices_arc(&self) -> Arc<Preprocessed> {
        self.pre.clone()
    }

    /// Non-emptiness `⟦M⟧(D) ≠ ∅` — `O(|F|)` after preprocessing, by
    /// Lemma 6.3: the relation is the union of the root matrix entries
    /// `M_{S₀}[q₀, j]` over accepting `j`, which are non-empty exactly for
    /// the entries with `R_{S₀}[q₀, j] ≠ ⊥`.
    pub fn is_non_empty(&self) -> bool {
        !self.pre.reachable_accepting().is_empty()
    }

    /// Model checking `t ∈ ⟦M⟧(D)` (Theorem 5.1(2)).
    pub fn check(&self, tuple: &SpanTuple) -> Result<bool, EvalError> {
        model_check::check(self.query.automaton(), self.document.original(), tuple)
    }

    /// Computes the whole relation `⟦M⟧(D)` (Theorem 7.1).
    pub fn compute(&self) -> Vec<SpanTuple> {
        compute::compute_from_matrices(&self.pre)
    }

    /// Enumerates `⟦M⟧(D)` with `O(depth(S)·|X|)` delay (Theorem 8.10).
    ///
    /// Duplicate-free iff the query is deterministic (Lemma 8.8) — always
    /// the case for pairs from an [`Engine`] or a default-policy
    /// [`Service`]; under `ServiceBuilder::determinize(false)` individual
    /// results of non-deterministic queries may repeat (the final remark of
    /// Section 8).
    pub fn enumerate(&self) -> enumerate::Enumeration<'_> {
        enumerate::Enumeration::from_matrices(&self.pre)
    }

    /// Counts `|⟦M⟧(D)|` — in `O(size(S)·q³)` without enumerating for
    /// deterministic queries (the counting recurrence needs the
    /// disjointness of Lemma 8.8).  For a non-deterministic query (only
    /// reachable via `ServiceBuilder::determinize(false)`) it falls back to
    /// the duplicate-free compute pass of Theorem 7.1, so the answer is
    /// exact either way.
    pub fn count(&self) -> u128 {
        if self.query.is_deterministic() {
            count::count_from_matrices(&self.pre)
        } else {
            self.compute().len() as u128
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlpSpanner;
    use slp::compress::{Bisection, Compressor};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::regex;
    use std::collections::BTreeSet;

    #[test]
    fn engine_matches_fresh_slp_spanner_per_pair() {
        let mut engine = Engine::new();
        let queries = [
            figure_2_spanner(),
            regex::compile(".*x{ab}.*", b"abc").unwrap(),
        ];
        let docs = [
            Bisection.compress(b"aabccaabaa"),
            Bisection.compress(b"ababab"),
            families::power_word(b"ab", 64),
        ];
        let qids: Vec<QueryId> = queries.iter().map(|m| engine.add_query(m)).collect();
        let dids: Vec<DocumentId> = docs.iter().map(|d| engine.add_document(d)).collect();
        for (m, &q) in queries.iter().zip(&qids) {
            for (slp, &d) in docs.iter().zip(&dids) {
                let fresh = SlpSpanner::new(m, slp).unwrap();
                let eval = engine.evaluate(q, d);
                assert_eq!(eval.is_non_empty(), fresh.is_non_empty());
                assert_eq!(eval.count(), fresh.count());
                let a: BTreeSet<SpanTuple> = eval.compute().into_iter().collect();
                let b: BTreeSet<SpanTuple> = fresh.compute().into_iter().collect();
                assert_eq!(a, b);
                let e: BTreeSet<SpanTuple> = eval.enumerate().collect();
                assert_eq!(e, a);
            }
        }
    }

    #[test]
    fn matrices_are_cached_per_pair() {
        let mut engine = Engine::new();
        let q1 = engine.add_query(&figure_2_spanner());
        let q2 = engine.add_query(&regex::compile(".*x{ab}.*", b"abc").unwrap());
        let d = engine.add_document(&Bisection.compress(b"aabccaabaa"));
        assert_eq!(engine.document(d).cached_query_count(), 0);
        engine.evaluate(q1, d);
        assert_eq!(engine.document(d).cached_query_count(), 1);
        // Same pair again: cache hit, no growth.
        engine.evaluate(q1, d);
        assert_eq!(engine.document(d).cached_query_count(), 1);
        engine.evaluate(q2, d);
        assert_eq!(engine.document(d).cached_query_count(), 2);
        // The cached Arc is the same allocation on repeated use.
        let a = engine
            .document(d)
            .cached_matrices(&engine.query(q1))
            .unwrap();
        let b = engine.evaluate(q1, d).matrices_arc();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn run_batch_through_the_service_covers_the_cross_product() {
        use crate::service::{Task, TaskRequest};
        let mut engine = Engine::new();
        let q = engine.add_query(&regex::compile(".*x{ab}.*", b"ab").unwrap());
        let dids: Vec<DocumentId> = [8u64, 32, 128]
            .iter()
            .map(|&k| engine.add_document(&families::power_word(b"ab", k)))
            .collect();
        let requests: Vec<TaskRequest> = dids
            .iter()
            .map(|&d| TaskRequest {
                query: q,
                doc: d,
                task: Task::Compute { limit: None },
            })
            .collect();
        let results = engine.service().run_batch(&requests);
        assert_eq!(results.len(), 3);
        for (result, &k) in results.into_iter().zip(&[8usize, 32, 128]) {
            let tuples = result.unwrap().outcome.into_tuples().unwrap();
            assert_eq!(tuples.len(), k);
        }
    }

    #[test]
    fn sharded_documents_answer_identically_through_the_engine() {
        let query = regex::compile(".*x{a+}y{b+}.*", b"ab").unwrap();
        let doc = Bisection.compress(b"aabbaabbabab");
        let reference = SlpSpanner::new(&query, &doc).unwrap();
        for k in [2usize, 4, 8] {
            let mut engine = Engine::new();
            let q = engine.add_query(&query);
            let prepared = PreparedDocument::sharded(&doc, k);
            assert!(prepared.is_sharded());
            assert_eq!(prepared.shard_count(), k);
            let d = engine.add_prepared_document(prepared);
            let eval = engine.evaluate(q, d);
            assert_eq!(eval.count(), reference.count(), "k={k}");
            let a: BTreeSet<SpanTuple> = eval.compute().into_iter().collect();
            let b: BTreeSet<SpanTuple> = reference.compute().into_iter().collect();
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn prepared_document_is_query_independent() {
        let doc = Bisection.compress(b"aabccaabaa");
        let prepared = PreparedDocument::new(&doc);
        assert_eq!(prepared.document_len(), 10);
        assert_eq!(prepared.ended().document_len(), 11);
        assert!(prepared.ended().terminals().contains(&EByte::End));
        assert_eq!(prepared.original().derive(), doc.derive());
    }

    #[test]
    fn add_prepared_query_upgrades_nondeterministic_queries() {
        // The engine's count()/enumerate() rely on determinism; a query
        // prepared with the non-determinising constructor is upgraded on
        // registration so results stay duplicate-free.
        let nondet = regex::compile(".*x{a.*}.*", b"ab").unwrap();
        assert!(!nondet.is_deterministic());
        let mut engine = Engine::new();
        let q = engine.add_prepared_query(PreparedQuery::new(&nondet));
        assert!(engine.query(q).is_deterministic());
        let d = engine.add_document(&Bisection.compress(b"abab"));
        let eval = engine.evaluate(q, d);
        let computed = eval.compute();
        assert_eq!(eval.count(), computed.len() as u128);
        assert_eq!(eval.enumerate().count(), computed.len());
    }

    #[test]
    fn slp_spanner_from_stages_upgrades_nondeterministic_queries() {
        let nondet = regex::compile(".*x{a.*}.*", b"ab").unwrap();
        let doc = Bisection.compress(b"abab");
        let s = SlpSpanner::from_stages(PreparedQuery::new(&nondet), PreparedDocument::new(&doc));
        assert!(s.query().is_deterministic());
        assert_eq!(s.count(), s.compute().len() as u128);
        assert_eq!(s.enumerate().count(), s.compute().len());
    }

    #[test]
    fn prepared_query_tokens_are_unique() {
        let m = figure_2_spanner();
        let a = PreparedQuery::new(&m);
        let b = PreparedQuery::new(&m);
        assert_ne!(a.token(), b.token());
        assert!(a.is_deterministic());
        // Figure 2 is already deterministic, so both constructors agree.
        let c = PreparedQuery::determinized(&m);
        assert_eq!(c.nfa().num_states(), a.nfa().num_states());
    }

    #[test]
    fn evaluations_outlive_cache_eviction() {
        // A tiny budget forces the second pair to evict the first; the
        // in-flight Evaluation still answers from its own Arc.
        let service = Service::builder().cache_budget(1).build();
        let engine = Engine::from_service(service);
        let q1 = {
            // add_* take &mut for compatibility; go through the service.
            engine.service().add_query(&figure_2_spanner())
        };
        let q2 = engine
            .service()
            .add_query(&regex::compile(".*x{ab}.*", b"abc").unwrap());
        let d = engine
            .service()
            .add_document(&Bisection.compress(b"aabccaabaa"));
        let eval1 = engine.evaluate(q1, d);
        let eval2 = engine.evaluate(q2, d);
        assert_eq!(engine.document(d).cache_bytes(), 0, "budget of 1 byte");
        assert!(eval1.is_non_empty());
        assert_eq!(eval2.count(), eval2.compute().len() as u128);
    }
}
