//! # spanner-slp-core — spanner evaluation over SLP-compressed documents
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Spanner Evaluation over SLP-Compressed Documents"*, Schmid &
//! Schweikardt, PODS 2021): evaluating a regular spanner `M` directly on a
//! document `D` given as a straight-line program `S`, **without
//! decompressing**.
//!
//! For an SLP of size `s`, depth `depth(S)`, an automaton with `q` states
//! and `|M|` transitions, and `r = |⟦M⟧(D)|` results:
//!
//! | task | entry point | data complexity | paper |
//! |---|---|---|---|
//! | non-emptiness `⟦M⟧(D) ≠ ∅` | [`nonemptiness::is_non_empty`] | `O(s)` | Thm 5.1(1) |
//! | model checking `t ∈ ⟦M⟧(D)` | [`model_check::check`] | `O(s)` | Thm 5.1(2) |
//! | computing `⟦M⟧(D)` | [`compute::compute_all`] | `O(s · r)` | Thm 7.1 |
//! | enumerating `⟦M⟧(D)` | [`enumerate::Enumerator`] | `O(s)` preprocessing, `O(depth(S) · |X|)` delay | Thm 8.10 |
//! | counting `|⟦M⟧(D)|` | [`count::count_results`] | `O(s)` | extension (see module docs) |
//!
//! The convenience wrapper [`SlpSpanner`] bundles an automaton and a
//! compressed document and exposes all four tasks.  For serving many
//! queries over many documents — concurrently, with per-request statistics
//! and memory-bounded matrix caches — use the [`service::Service`] layer
//! (the [`engine::Engine`] pool remains as a thin compatibility wrapper).
//!
//! ```
//! use slp::families;
//! use spanner::regex;
//! use spanner_slp_core::SlpSpanner;
//!
//! // The document (ab)^1000 compressed into ~30 grammar rules.
//! let doc = families::power_word(b"ab", 1000);
//! // Extract every maximal "ab" block start: x spans a single "a" directly
//! // followed by "b".
//! let m = regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
//! let spanner = SlpSpanner::new(&m, &doc).unwrap();
//! assert!(spanner.is_non_empty());
//! assert_eq!(spanner.count(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmat;
pub mod cache;
pub mod compute;
pub mod count;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod executor;
pub mod matrices;
pub mod model_check;
pub mod nonemptiness;
pub mod prepared;
pub mod service;
pub mod trace;

pub use engine::{DocumentId, Engine, Evaluation, PreparedDocument, PreparedQuery, QueryId};
pub use error::EvalError;
pub use executor::{LocalExecutor, ShardExecutor, ShardJob, ShardOutcome};
pub use service::{
    QuotaError, RequestStats, Service, ServiceBuilder, ServiceStats, Task, TaskOutcome,
    TaskRequest, TaskResponse, TenantConfig, TenantId, TenantUsage,
};
pub use trace::{Hist, HistSnapshot, ShardTrace, SpanRec, TraceContext, Tracer};

use prepared::PreparedEvaluation;
use slp::NormalFormSlp;
use spanner::{SpanTuple, SpannerAutomaton};

/// A spanner bound to an SLP-compressed document: convenience facade over
/// the four evaluation tasks.
///
/// Construction runs the two preparation stages (the automaton-side
/// transformations of [`engine::PreparedQuery`] and the document-side
/// transformation of [`engine::PreparedDocument`]) and the `O(|M| + s·q³)`
/// pair preprocessing of Lemma 6.5 once; the individual tasks then reuse
/// it.  To share those stages across many queries and documents, use
/// [`engine::Engine`] instead.
#[derive(Debug)]
pub struct SlpSpanner {
    prepared: PreparedEvaluation,
}

impl SlpSpanner {
    /// Binds a spanner automaton to a compressed document.
    ///
    /// Non-deterministic automata are determinised automatically (this
    /// affects combined complexity only; see the end of Section 8 of the
    /// paper).  Use the task-specific modules directly for finer control.
    pub fn new(
        automaton: &SpannerAutomaton<u8>,
        document: &NormalFormSlp<u8>,
    ) -> Result<Self, EvalError> {
        Ok(Self::from_stages(
            PreparedQuery::determinized(automaton),
            PreparedDocument::new(document),
        ))
    }

    /// Binds an already prepared query to an already prepared document,
    /// reusing whatever work both stages (and the document's matrix cache)
    /// already hold.
    ///
    /// `SlpSpanner` guarantees a deterministic automaton (so [`count`] and
    /// [`enumerate`] are duplicate-free); a query prepared with the
    /// non-determinising [`PreparedQuery::new`] is upgraded here via its
    /// ε-free automaton.
    ///
    /// [`count`]: SlpSpanner::count
    /// [`enumerate`]: SlpSpanner::enumerate
    pub fn from_stages(query: PreparedQuery, document: PreparedDocument) -> Self {
        let query = if query.is_deterministic() {
            query
        } else {
            PreparedQuery::determinized(query.automaton())
        };
        SlpSpanner {
            prepared: PreparedEvaluation::from_stages(query, document),
        }
    }

    /// The (deterministic) automaton in use.
    pub fn automaton(&self) -> &SpannerAutomaton<u8> {
        self.prepared.query.automaton()
    }

    /// The compressed document.
    pub fn document(&self) -> &NormalFormSlp<u8> {
        self.prepared.document.original()
    }

    /// The prepared query stage (reusable across documents).
    pub fn query(&self) -> &PreparedQuery {
        &self.prepared.query
    }

    /// The full prepared evaluation context backing this spanner.
    pub fn prepared(&self) -> &PreparedEvaluation {
        &self.prepared
    }

    /// Non-emptiness: `⟦M⟧(D) ≠ ∅` (Theorem 5.1(1)); answered in `O(|F|)`
    /// from the prepared matrices via Lemma 6.3.
    pub fn is_non_empty(&self) -> bool {
        !self.prepared.pre.reachable_accepting().is_empty()
    }

    /// Model checking: `t ∈ ⟦M⟧(D)` in time `O((s + |X|·depth(S))·q³)`
    /// (Theorem 5.1(2)).
    pub fn check(&self, tuple: &SpanTuple) -> Result<bool, EvalError> {
        model_check::check(
            self.prepared.query.automaton(),
            self.prepared.document.original(),
            tuple,
        )
    }

    /// Computes the whole relation `⟦M⟧(D)` (Theorem 7.1).
    pub fn compute(&self) -> Vec<SpanTuple> {
        compute::compute_from_prepared(&self.prepared)
    }

    /// Enumerates `⟦M⟧(D)` with `O(depth(S)·|X|)` delay (Theorem 8.10).
    pub fn enumerate(&self) -> enumerate::Enumeration<'_> {
        enumerate::Enumeration::from_prepared(&self.prepared)
    }

    /// Number of results `|⟦M⟧(D)|`, counted in `O(size(S)·q³)` *without*
    /// enumerating (see [`count::count_results`]).
    ///
    /// Returned as `u128`: on SLP-compressed documents the result count can
    /// exceed any machine word (`d` itself may be near `2^64`, and `r` is
    /// polynomial in `d` of degree `2·|X|`).
    pub fn count(&self) -> u128 {
        count::count_from_prepared(&self.prepared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{Span, Variable};

    #[test]
    fn facade_runs_all_tasks_on_the_paper_example() {
        let slp = slp::examples::example_4_2();
        let m = figure_2_spanner();
        let s = SlpSpanner::new(&m, &slp).unwrap();
        assert!(s.is_non_empty());

        // Example 8.2's result: y = [4, 6⟩.
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        assert!(s.check(&t).unwrap());

        let computed = s.compute();
        assert!(computed.contains(&t));
        let enumerated: Vec<SpanTuple> = s.enumerate().collect();
        assert_eq!(enumerated.len(), computed.len());
        assert_eq!(s.count(), computed.len() as u128);
    }

    #[test]
    fn facade_handles_empty_results() {
        let slp = slp::compress::Compressor::compress(&slp::compress::Bisection, b"cccc");
        let m = figure_2_spanner();
        let s = SlpSpanner::new(&m, &slp).unwrap();
        assert!(!s.is_non_empty());
        assert!(s.compute().is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn doc_example_from_lib_rs() {
        let doc = families::power_word(b"ab", 1000);
        let m = spanner::regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
        let spanner = SlpSpanner::new(&m, &doc).unwrap();
        assert!(spanner.is_non_empty());
        assert_eq!(spanner.count(), 1000);
    }
}
