//! # spanner-slp-core — spanner evaluation over SLP-compressed documents
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Spanner Evaluation over SLP-Compressed Documents"*, Schmid &
//! Schweikardt, PODS 2021): evaluating a regular spanner `M` directly on a
//! document `D` given as a straight-line program `S`, **without
//! decompressing**.
//!
//! For an SLP of size `s`, depth `depth(S)`, an automaton with `q` states
//! and `|M|` transitions, and `r = |⟦M⟧(D)|` results:
//!
//! | task | entry point | data complexity | paper |
//! |---|---|---|---|
//! | non-emptiness `⟦M⟧(D) ≠ ∅` | [`nonemptiness::is_non_empty`] | `O(s)` | Thm 5.1(1) |
//! | model checking `t ∈ ⟦M⟧(D)` | [`model_check::check`] | `O(s)` | Thm 5.1(2) |
//! | computing `⟦M⟧(D)` | [`compute::compute_all`] | `O(s · r)` | Thm 7.1 |
//! | enumerating `⟦M⟧(D)` | [`enumerate::Enumerator`] | `O(s)` preprocessing, `O(depth(S) · |X|)` delay | Thm 8.10 |
//! | counting `|⟦M⟧(D)|` | [`count::count_results`] | `O(s)` | extension (see module docs) |
//!
//! The convenience wrapper [`SlpSpanner`] bundles an automaton and a
//! compressed document and exposes all four tasks.
//!
//! ```
//! use slp::families;
//! use spanner::regex;
//! use spanner_slp_core::SlpSpanner;
//!
//! // The document (ab)^1000 compressed into ~30 grammar rules.
//! let doc = families::power_word(b"ab", 1000);
//! // Extract every maximal "ab" block start: x spans a single "a" directly
//! // followed by "b".
//! let m = regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
//! let spanner = SlpSpanner::new(&m, &doc).unwrap();
//! assert!(spanner.is_non_empty());
//! assert_eq!(spanner.count(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod count;
pub mod enumerate;
pub mod error;
pub mod matrices;
pub mod model_check;
pub mod nonemptiness;
pub mod prepared;

pub use error::EvalError;

use slp::NormalFormSlp;
use spanner::{SpanTuple, SpannerAutomaton};

/// A spanner bound to an SLP-compressed document: convenience facade over
/// the four evaluation tasks.
///
/// Construction performs the `O(|M| + s·q³)` shared preprocessing of
/// Lemma 6.5 once; the individual tasks then reuse it.
#[derive(Debug)]
pub struct SlpSpanner {
    automaton: SpannerAutomaton<u8>,
    document: NormalFormSlp<u8>,
    prepared: prepared::PreparedEvaluation,
}

impl SlpSpanner {
    /// Binds a spanner automaton to a compressed document.
    ///
    /// Non-deterministic automata are determinised automatically (this
    /// affects combined complexity only; see the end of Section 8 of the
    /// paper).  Use the task-specific modules directly for finer control.
    pub fn new(
        automaton: &SpannerAutomaton<u8>,
        document: &NormalFormSlp<u8>,
    ) -> Result<Self, EvalError> {
        let automaton = if automaton.is_deterministic() {
            automaton.clone()
        } else {
            automaton.without_epsilon().determinized()
        };
        let prepared = prepared::PreparedEvaluation::new(&automaton, document)?;
        Ok(SlpSpanner {
            automaton,
            document: document.clone(),
            prepared,
        })
    }

    /// The (deterministic) automaton in use.
    pub fn automaton(&self) -> &SpannerAutomaton<u8> {
        &self.automaton
    }

    /// The compressed document.
    pub fn document(&self) -> &NormalFormSlp<u8> {
        &self.document
    }

    /// Non-emptiness: `⟦M⟧(D) ≠ ∅` in time `O(s·q³)` (Theorem 5.1(1)).
    pub fn is_non_empty(&self) -> bool {
        nonemptiness::is_non_empty(&self.automaton, &self.document)
    }

    /// Model checking: `t ∈ ⟦M⟧(D)` in time `O((s + |X|·depth(S))·q³)`
    /// (Theorem 5.1(2)).
    pub fn check(&self, tuple: &SpanTuple) -> Result<bool, EvalError> {
        model_check::check(&self.automaton, &self.document, tuple)
    }

    /// Computes the whole relation `⟦M⟧(D)` (Theorem 7.1).
    pub fn compute(&self) -> Vec<SpanTuple> {
        compute::compute_from_prepared(&self.prepared)
    }

    /// Enumerates `⟦M⟧(D)` with `O(depth(S)·|X|)` delay (Theorem 8.10).
    pub fn enumerate(&self) -> enumerate::Enumeration<'_> {
        enumerate::Enumeration::from_prepared(&self.prepared)
    }

    /// Number of results `|⟦M⟧(D)|`, counted in `O(size(S)·q³)` *without*
    /// enumerating (see [`count::count_results`]).
    pub fn count(&self) -> usize {
        count::count_from_prepared(&self.prepared) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{Span, Variable};

    #[test]
    fn facade_runs_all_tasks_on_the_paper_example() {
        let slp = slp::examples::example_4_2();
        let m = figure_2_spanner();
        let s = SlpSpanner::new(&m, &slp).unwrap();
        assert!(s.is_non_empty());

        // Example 8.2's result: y = [4, 6⟩.
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        assert!(s.check(&t).unwrap());

        let computed = s.compute();
        assert!(computed.contains(&t));
        let enumerated: Vec<SpanTuple> = s.enumerate().collect();
        assert_eq!(enumerated.len(), computed.len());
        assert_eq!(s.count(), computed.len());
    }

    #[test]
    fn facade_handles_empty_results() {
        let slp = slp::compress::Compressor::compress(&slp::compress::Bisection, b"cccc");
        let m = figure_2_spanner();
        let s = SlpSpanner::new(&m, &slp).unwrap();
        assert!(!s.is_non_empty());
        assert!(s.compute().is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn doc_example_from_lib_rs() {
        let doc = families::power_word(b"ab", 1000);
        let m = spanner::regex::compile_deterministic(".*x{ab}.*", b"ab").unwrap();
        let spanner = SlpSpanner::new(&m, &doc).unwrap();
        assert!(spanner.is_non_empty());
        assert_eq!(spanner.count(), 1000);
    }
}
