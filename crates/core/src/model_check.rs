//! Model checking, Theorem 5.1(2): decide `t ∈ ⟦M⟧(D)` in time
//! `O((size(S) + |X|·depth(S))·q³)` directly on the compressed document.
//!
//! Following the paper's proof, the SLP `S` for `D` is spliced into an SLP
//! `S'` for the subword-marked word `m(D, t)`: for each of the at most
//! `2·|X|` positions carrying markers, the root-to-leaf path of that
//! position is copied (adding `O(depth(S))` fresh non-terminals) and a new
//! leaf for the marker-set symbol is inserted in front of the position's
//! leaf.  Then `t ∈ ⟦M⟧(D)` iff `D(S') ∈ L(M)` (Proposition 3.3), which is
//! checked with Lemma 4.5.

use crate::error::EvalError;
use slp::{NfRule, NonTerminal, NormalFormSlp, Terminal};
use spanner::{MarkedSymbol, MarkerSet, SpanTuple, SpannerAutomaton};
use spanner_automata::membership::compressed_membership;

/// Builds an SLP for the marked word `m(D, t)` over `Σ ∪ P(Γ_X)` from an SLP
/// for `D`, adding `O(|X| · depth(S))` non-terminals (the construction in
/// the proof of Theorem 5.1(2)).
pub fn marked_document_slp(
    document: &NormalFormSlp<u8>,
    tuple: &SpanTuple,
) -> Result<NormalFormSlp<MarkedSymbol<u8>>, EvalError> {
    let d = document.document_len();
    tuple
        .check_compatible(d)
        .map_err(|_| EvalError::TupleOutOfBounds {
            position: tuple
                .defined_variables()
                .iter()
                .filter_map(|&v| tuple.get(v))
                .map(|s| s.end)
                .max()
                .unwrap_or(0),
            document_len: d,
        })?;

    let mut slp = document.map_terminals(MarkedSymbol::Terminal);
    // Insert marker-set symbols right-to-left so earlier positions are not
    // shifted by later insertions.
    let markers = tuple.marker_set();
    let mut insertions: Vec<(u64, MarkerSet)> = markers.entries().collect();
    insertions.sort_by_key(|&(p, _)| std::cmp::Reverse(p));
    for (pos, set) in insertions {
        let symbol = MarkedSymbol::Markers(set);
        slp = if pos == slp.document_len() + 1 {
            // Tail-spanning markers sit after the last terminal: append.
            slp.append_terminal(symbol)
        } else {
            insert_before(&slp, pos, symbol)?
        };
    }
    Ok(slp)
}

/// Returns a new SLP whose document has `symbol` inserted immediately before
/// (1-based) position `pos` of the old document, by copying the root-to-leaf
/// path of `pos` (`O(depth(S))` new rules).
pub fn insert_before<T: Terminal>(
    slp: &NormalFormSlp<T>,
    pos: u64,
    symbol: T,
) -> Result<NormalFormSlp<T>, EvalError> {
    let (path, leaf) = slp.path_to(pos)?;
    let mut rules: Vec<NfRule<T>> = slp.rules().to_vec();

    // Leaf for the inserted symbol (reuse an existing one if present).
    let symbol_leaf = rules
        .iter()
        .position(|r| matches!(r, NfRule::Leaf(x) if *x == symbol))
        .map(|i| NonTerminal(i as u32))
        .unwrap_or_else(|| {
            rules.push(NfRule::Leaf(symbol));
            NonTerminal((rules.len() - 1) as u32)
        });

    // Replace the position's leaf L by a fresh rule L' → symbol_leaf · L.
    rules.push(NfRule::Pair(symbol_leaf, leaf));
    let mut replacement = NonTerminal((rules.len() - 1) as u32);

    // Walk the path bottom-up, copying each node with the affected child
    // replaced.
    for step in path.iter().rev() {
        let (b, c) = match rules[step.node.index()] {
            NfRule::Pair(b, c) => (b, c),
            NfRule::Leaf(_) => unreachable!("path steps are inner non-terminals"),
        };
        let new_rule = if step.went_right {
            NfRule::Pair(b, replacement)
        } else {
            NfRule::Pair(replacement, c)
        };
        rules.push(new_rule);
        replacement = NonTerminal((rules.len() - 1) as u32);
    }

    NormalFormSlp::new(rules, replacement).map_err(EvalError::Slp)
}

/// Theorem 5.1(2): `t ∈ ⟦M⟧(D)` for the document derived by `document`,
/// without decompressing.
pub fn check(
    automaton: &SpannerAutomaton<u8>,
    document: &NormalFormSlp<u8>,
    tuple: &SpanTuple,
) -> Result<bool, EvalError> {
    let marked = marked_document_slp(document, tuple)?;
    Ok(compressed_membership(automaton.nfa(), &marked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Bisection, Compressor};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{reference, Span, Variable};

    #[test]
    fn insert_before_splices_single_symbols() {
        let slp = Bisection.compress(b"abcdefgh");
        for pos in 1..=8u64 {
            let spliced = insert_before(&slp, pos, b'#').unwrap();
            let mut expected = b"abcdefgh".to_vec();
            expected.insert((pos - 1) as usize, b'#');
            assert_eq!(spliced.derive(), expected, "pos {pos}");
            assert_eq!(spliced.document_len(), 9);
        }
        assert!(insert_before(&slp, 0, b'#').is_err());
        assert!(insert_before(&slp, 10, b'#').is_err());
    }

    #[test]
    fn insert_before_adds_at_most_depth_plus_two_rules() {
        let slp = families::power_of_two_unary(b'a', 16);
        let spliced = insert_before(&slp, 12345, b'b').unwrap();
        assert!(
            spliced.num_non_terminals() <= slp.num_non_terminals() + slp.depth() as usize + 2,
            "added {} rules",
            spliced.num_non_terminals() - slp.num_non_terminals()
        );
        let derived = spliced.derive();
        assert_eq!(derived.len(), (1 << 16) + 1);
        assert_eq!(derived[12344], b'b');
        assert!(derived.iter().filter(|&&c| c == b'b').count() == 1);
    }

    #[test]
    fn marked_document_slp_derives_the_marked_word() {
        let doc = b"aabccaabaa";
        let slp = Bisection.compress(doc);
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        let marked = marked_document_slp(&slp, &t).unwrap();
        let derived = marked.derive();
        let expected = spanner::MarkedWord::from_document_and_tuple(doc, &t)
            .unwrap()
            .to_symbols();
        assert_eq!(derived, expected);
    }

    #[test]
    fn model_check_agrees_with_the_uncompressed_check() {
        let m = figure_2_spanner();
        let doc = b"aabccaabaa";
        let slp = Bisection.compress(doc);
        // All tuples over a few interesting spans, including invalid ones.
        let spans: Vec<Option<Span>> = vec![
            None,
            Some(Span::new(4, 6).unwrap()),
            Some(Span::new(7, 10).unwrap()),
            Some(Span::new(1, 3).unwrap()),
            Some(Span::new(4, 5).unwrap()),
            Some(Span::new(10, 11).unwrap()),
        ];
        for x in &spans {
            for y in &spans {
                let mut t = SpanTuple::empty(2);
                if let Some(s) = x {
                    t.set(Variable(0), *s);
                }
                if let Some(s) = y {
                    t.set(Variable(1), *s);
                }
                let expected = m.matches(doc, &t).unwrap();
                assert_eq!(check(&m, &slp, &t).unwrap(), expected, "tuple {t:?}");
            }
        }
    }

    #[test]
    fn model_check_agrees_with_reference_everywhere() {
        let m = figure_2_spanner();
        let doc = b"abcab";
        let slp = Bisection.compress(doc);
        let expected = reference::evaluate(&m, doc);
        // Every tuple in the reference result model-checks positively.
        for t in &expected {
            assert!(check(&m, &slp, t).unwrap(), "missing {t:?}");
        }
        // And a few that are not in the result are rejected.
        let mut t = SpanTuple::empty(2);
        t.set(Variable(0), Span::new(3, 4).unwrap()); // spans the 'c'
        assert!(!expected.contains(&t));
        assert!(!check(&m, &slp, &t).unwrap());
    }

    #[test]
    fn tail_spanning_tuples_are_handled() {
        // A tuple whose close marker sits at position d+1 (after the last
        // symbol): the splice must append rather than descend.
        let m = spanner::regex::compile(".*x{b+}", b"ab").unwrap();
        let doc = b"aabb";
        let slp = Bisection.compress(doc);
        let mut t = SpanTuple::empty(1);
        t.set(Variable(0), Span::new(3, 5).unwrap());
        assert!(check(&m, &slp, &t).unwrap());
        let mut t = SpanTuple::empty(1);
        t.set(Variable(0), Span::new(3, 4).unwrap());
        assert!(!check(&m, &slp, &t).unwrap());
    }

    #[test]
    fn out_of_bounds_tuples_error() {
        let m = figure_2_spanner();
        let slp = Bisection.compress(b"abc");
        let mut t = SpanTuple::empty(2);
        t.set(Variable(0), Span::new(2, 9).unwrap());
        assert!(matches!(
            check(&m, &slp, &t),
            Err(EvalError::TupleOutOfBounds { .. })
        ));
    }

    #[test]
    fn works_on_exponentially_compressed_documents() {
        // D = (ab)^(2^20), x = the first "ab" block.
        let m = spanner::regex::compile("x{ab}.*", b"ab").unwrap();
        let slp = families::power_word(b"ab", 1 << 20);
        let mut t = SpanTuple::empty(1);
        t.set(Variable(0), Span::new(1, 3).unwrap());
        assert!(check(&m, &slp, &t).unwrap());
        let mut t = SpanTuple::empty(1);
        t.set(Variable(0), Span::new(2, 4).unwrap());
        assert!(!check(&m, &slp, &t).unwrap());
    }
}
