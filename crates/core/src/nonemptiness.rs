//! Non-emptiness checking, Theorem 5.1(1): decide `⟦M⟧(D) ≠ ∅` in time
//! `O(|M| + size(S)·q³)` directly on the compressed document.
//!
//! The reduction of Section 5: replace every marker-set transition of `M`
//! by an ε-transition (the resulting automaton `M'` over `Σ` accepts
//! `{e(w) : w ∈ L(M)}`), then check membership of the compressed document
//! in `L(M')` with Lemma 4.5.
//!
//! One practical refinement: the paper assumes `L(M)` contains only
//! *subword-marked* words, but concrete automata (the paper's own Figure 2,
//! and anything compiled from a variable regex) usually also accept
//! ill-formed words in which two marker-set symbols appear back to back
//! (e.g. `{⊿x}{◁x}a` instead of the well-formed `{⊿x,◁x}a`).  Such words
//! never affect model checking, computation or enumeration — those
//! algorithms only ever consider well-formed marked words `m(D, Λ)` — but a
//! naive markers→ε projection would let them influence non-emptiness.  The
//! projection below therefore tracks one bit ("did we just cross a marker
//! symbol?") and refuses to cross two in a row, which restricts the
//! projection to exactly the well-formed readings.  This doubles `q` and
//! leaves the `O(size(S)·q³)` bound intact.

use slp::NormalFormSlp;
use spanner::{MarkedSymbol, SpannerAutomaton};
use spanner_automata::membership::compressed_membership;
use spanner_automata::nfa::{Label, Nfa};

/// Projects the spanner automaton onto the document alphabet: marker-set
/// transitions become ε-transitions (the automaton `M'` of Theorem 5.1(1)),
/// with the one-marker-symbol-per-position refinement described in the
/// module documentation.
///
/// State `2p` means "in state `p`, last symbol was a terminal (or start)";
/// state `2p + 1` means "in state `p`, just crossed a marker-set symbol".
pub fn erase_markers(automaton: &SpannerAutomaton<u8>) -> Nfa<u8> {
    let nfa = automaton.nfa();
    let mut out: Nfa<u8> = Nfa::with_states(2 * nfa.num_states());
    out.set_start(2 * nfa.start());
    for s in nfa.accepting_states() {
        // A trailing marker set (tail-spanning word) is still well-formed,
        // so both flag values are accepting.
        out.set_accepting(2 * s, true);
        out.set_accepting(2 * s + 1, true);
    }
    for (p, label, q) in nfa.arcs() {
        match label {
            Label::Symbol(MarkedSymbol::Terminal(b)) => {
                out.add_transition(2 * p, b, 2 * q);
                out.add_transition(2 * p + 1, b, 2 * q);
            }
            Label::Symbol(MarkedSymbol::Markers(_)) => {
                // Only allowed when the previous symbol was a terminal.
                out.add_epsilon(2 * p, 2 * q + 1);
            }
            Label::Epsilon => {
                out.add_epsilon(2 * p, 2 * q);
                out.add_epsilon(2 * p + 1, 2 * q + 1);
            }
        }
    }
    out
}

/// Theorem 5.1(1): `⟦M⟧(D) ≠ ∅` for the document derived by `document`,
/// in time `O(|M| + size(S)·q³)` without decompressing.
pub fn is_non_empty(automaton: &SpannerAutomaton<u8>, document: &NormalFormSlp<u8>) -> bool {
    let projected = erase_markers(automaton);
    compressed_membership(&projected, document)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Bisection, Compressor};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{reference, regex};

    #[test]
    fn agrees_with_the_reference_on_small_documents() {
        let m = figure_2_spanner();
        for doc in [
            &b"aabccaabaa"[..],
            b"cccc",
            b"a",
            b"ab",
            b"c",
            b"ca",
            b"ac",
            b"bbbb",
            b"cb",
        ] {
            let slp = Bisection.compress(doc);
            let expected = !reference::evaluate(&m, doc).is_empty();
            assert_eq!(is_non_empty(&m, &slp), expected, "doc {:?}", doc);
        }
    }

    #[test]
    fn works_on_exponentially_compressed_documents() {
        let m = figure_2_spanner();
        // a^(2^40): only x-spans exist (no c), so the spanner is non-empty.
        let slp = families::power_of_two_unary(b'a', 40);
        assert!(is_non_empty(&m, &slp));
        // c^(2^40): a close marker must be followed by an a or b — empty.
        let slp = families::power_of_two_unary(b'c', 40);
        assert!(!is_non_empty(&m, &slp));
    }

    #[test]
    fn regex_spanners_work_too() {
        let m = regex::compile(".*x{ab}.*", b"abc").unwrap();
        let yes = Bisection.compress(b"ccabcc");
        let no = Bisection.compress(b"ccbacc");
        assert!(is_non_empty(&m, &yes));
        assert!(!is_non_empty(&m, &no));
    }

    #[test]
    fn erase_markers_doubles_the_state_count() {
        let m = figure_2_spanner();
        let p = erase_markers(&m);
        assert_eq!(p.num_states(), 2 * m.num_states());
        // Terminal arcs are duplicated, marker arcs become one ε-arc each.
        assert!(p.num_transitions() >= m.num_transitions());
    }

    #[test]
    fn ill_formed_consecutive_marker_readings_do_not_count() {
        // On the single-symbol document "a" the Figure 2 spanner has no
        // results: the only candidate, an empty x-span, would need the
        // combined marker set {⊿x, ◁x}, which the DFA cannot read.  A naive
        // markers→ε projection would wrongly report non-emptiness here.
        let m = figure_2_spanner();
        let slp = Bisection.compress(b"a");
        assert!(!is_non_empty(&m, &slp));
        assert!(reference::evaluate(&m, b"a").is_empty());
    }
}
