//! Computing the full relation `⟦M⟧(D)`, Theorem 7.1: time
//! `O(sort(|M|)·q² + size(S)·q⁴·size(⟦M⟧(D)))` in combined complexity,
//! `O(size(S)·|⟦M⟧(D)|)` in data complexity.
//!
//! The algorithm materialises the sets `M_A[i,j]` (Definition 6.2) for the
//! triples `(A, i, j)` that can actually contribute to an accepting run
//! (the paper's condition (†)), recursively via
//! `M_A[i,j] = ⋃_{k ∈ I_A[i,j]} M_B[i,k] ⊗_{|D(B)|} M_C[k,j]`
//! (Lemma 6.8).  Sets are kept as `⪯`-sorted duplicate-free lists, so unions
//! are merges and the `⊗` products stay sorted (appendix D).
//!
//! With the `parallel` feature (default on) the phase-2 materialisation
//! runs level-parallel over the grammar's depth strata — the same wave
//! schedule as the Lemma 6.5 matrix pass — producing values identical to
//! the serial bottom-up order.

use crate::error::EvalError;
use crate::matrices::{Preprocessed, REntry};
use crate::prepared::PreparedEvaluation;
use slp::NormalFormSlp;
use spanner::{PartialMarkerSet, SpanTuple, SpannerAutomaton};
use std::collections::{HashMap, HashSet};

/// Computes `⟦M⟧(D)` for the document derived by the SLP (Theorem 7.1).
///
/// Non-deterministic automata are fine here (duplicates are eliminated by
/// the sorted-merge unions); ε-transitions are removed automatically.
pub fn compute_all(
    automaton: &SpannerAutomaton<u8>,
    document: &NormalFormSlp<u8>,
) -> Result<Vec<SpanTuple>, EvalError> {
    let prepared = PreparedEvaluation::new(automaton, document)?;
    Ok(compute_from_prepared(&prepared))
}

/// Computes `⟦M⟧(D)` from an existing [`PreparedEvaluation`].
pub fn compute_from_prepared(prepared: &PreparedEvaluation) -> Vec<SpanTuple> {
    compute_from_matrices(&prepared.pre)
}

/// Computes `⟦M⟧(D)` directly from the preprocessed matrices of a
/// (query, document) pair — the engine-facing entry point.
pub fn compute_from_matrices(pre: &Preprocessed) -> Vec<SpanTuple> {
    let start_nt = pre.start_nt;
    let q0 = pre.nfa_start;
    let final_states = pre.reachable_accepting();
    if final_states.is_empty() {
        return Vec::new();
    }

    // Phase 1 (top-down): which entries (A, i, j) are needed?  Exactly the
    // triples satisfying the paper's condition (†), which is what bounds
    // |M_A[i,j]| by |⟦M⟧(D)| (Claim 2 in the proof of Theorem 7.1).
    let n = pre.children.len();
    let mut needed: Vec<HashSet<(usize, usize)>> = vec![HashSet::new(); n];
    for &j in &final_states {
        needed[start_nt as usize].insert((q0, j));
    }
    // Parents before children: reverse bottom-up order.
    for &a in pre.bottom_up.iter().rev() {
        if needed[a as usize].is_empty() {
            continue;
        }
        if let Some((b, c)) = pre.children[a as usize] {
            let entries: Vec<(usize, usize)> = needed[a as usize].iter().copied().collect();
            for (i, j) in entries {
                for k in pre.i_set(a, i, j) {
                    needed[b as usize].insert((i, k));
                    needed[c as usize].insert((k, j));
                }
            }
        }
    }

    // Phase 2 (bottom-up): materialise the needed sets as sorted lists,
    // wave-scheduled over the grammar's depth strata exactly like the
    // Lemma 6.5 matrix pass: `M_A[i,j]` of a depth-d rule reads only
    // entries of strictly shallower rules, so all entries of one stratum
    // are independent pure functions of the strata below.  With the
    // `parallel` feature a large enough stratum is mapped across cores;
    // every entry is still computed by [`materialise_entry`] from the same
    // inputs, so the values are identical to the serial order.
    let max_depth = pre
        .bottom_up
        .iter()
        .map(|&a| pre.depths[a as usize])
        .max()
        .unwrap_or(0) as usize;
    let mut strata: Vec<Vec<(u32, usize, usize)>> = vec![Vec::new(); max_depth + 1];
    for &a in &pre.bottom_up {
        if needed[a as usize].is_empty() {
            continue;
        }
        let mut entries: Vec<(usize, usize)> = needed[a as usize].iter().copied().collect();
        entries.sort_unstable();
        strata[pre.depths[a as usize] as usize].extend(entries.into_iter().map(|(i, j)| (a, i, j)));
    }
    let mut values: HashMap<(u32, usize, usize), Vec<PartialMarkerSet>> = HashMap::new();
    for items in strata.iter().filter(|s| !s.is_empty()) {
        let materialise =
            |&(a, i, j): &(u32, usize, usize)| materialise_entry(pre, &values, a, i, j);
        #[cfg(feature = "parallel")]
        let computed: Vec<Vec<PartialMarkerSet>> = if items.len() >= PHASE2_PAR_THRESHOLD {
            rayon::par_map(items, materialise)
        } else {
            // Small strata stay serial: spawning threads for a handful of
            // entries costs more than the entries themselves.
            items.iter().map(materialise).collect()
        };
        #[cfg(not(feature = "parallel"))]
        let computed: Vec<Vec<PartialMarkerSet>> = items.iter().map(materialise).collect();
        for (&key, value) in items.iter().zip(computed) {
            values.insert(key, value);
        }
    }

    // Phase 3: ⟦M⟧(D) = ⋃_{j ∈ F'} M_{S₀}[q₀, j]  (Lemma 6.3).
    let roots: Vec<Vec<PartialMarkerSet>> = final_states
        .iter()
        .map(|&j| values.remove(&(start_nt, q0, j)).unwrap_or_default())
        .collect();
    merge_sorted(roots)
        .into_iter()
        .map(|markers| {
            SpanTuple::from_marker_set(&markers, pre.num_vars)
                .expect("accepted subword-marked words encode valid span-tuples")
        })
        .collect()
}

/// Minimum stratum size before phase 2 fans an entry wave across cores:
/// below this the thread handoff dominates the merge work itself.
#[cfg(feature = "parallel")]
const PHASE2_PAR_THRESHOLD: usize = 16;

/// One `M_A[i,j]` materialisation (Lemma 6.8): leaves copy their
/// precomputed table cell, `⊥` entries are empty, and inner entries merge
/// the `⊗`-products over `I_A[i,j]` — reading only values of strictly
/// shallower rules, which is what makes the per-stratum waves of
/// [`compute_from_matrices`] safe.
fn materialise_entry(
    pre: &Preprocessed,
    values: &HashMap<(u32, usize, usize), Vec<PartialMarkerSet>>,
    a: u32,
    i: usize,
    j: usize,
) -> Vec<PartialMarkerSet> {
    match pre.children[a as usize] {
        None => pre.leaf_set(a, i, j).to_vec(),
        Some((b, c)) => {
            if pre.r_entry(a, i, j) == REntry::Bot {
                return Vec::new();
            }
            let shift = pre.lengths[b as usize];
            let mut parts: Vec<Vec<PartialMarkerSet>> = Vec::new();
            for k in pre.i_set(a, i, j) {
                let left = &values[&(b, i, k)];
                let right = &values[&(c, k, j)];
                parts.push(product(left, shift, right));
            }
            merge_sorted(parts)
        }
    }
}

/// `K^k_A[i,j] = M_B[i,k] ⊗_s M_C[k,j]` (Definition 6.7).  Both inputs are
/// `⪯`-sorted; by the order's compatibility with `⊗` (appendix D) the output
/// produced by the nested loops is sorted as well, and by Lemma 6.9 it has
/// no duplicates.
fn product(
    left: &[PartialMarkerSet],
    shift: u64,
    right: &[PartialMarkerSet],
) -> Vec<PartialMarkerSet> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            out.push(l.compose(shift, r));
        }
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    out
}

/// Merges sorted duplicate-free lists into one sorted duplicate-free list
/// (the paper's sorted-list unions).
fn merge_sorted(mut parts: Vec<Vec<PartialMarkerSet>>) -> Vec<PartialMarkerSet> {
    match parts.len() {
        0 => Vec::new(),
        1 => parts.pop().expect("checked length"),
        _ => {
            // Simple repeated two-way merge; the number of parts is at most
            // q (or |F'|), so this stays within the stated bounds.
            let mut acc = parts.pop().expect("checked length");
            while let Some(next) = parts.pop() {
                acc = merge_two(acc, next);
            }
            acc
        }
    }
}

fn merge_two(a: Vec<PartialMarkerSet>, b: Vec<PartialMarkerSet>) -> Vec<PartialMarkerSet> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x < y {
                    out.push(ia.next().expect("peeked"));
                } else if y < x {
                    out.push(ib.next().expect("peeked"));
                } else {
                    out.push(ia.next().expect("peeked"));
                    ib.next();
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp::compress::{Bisection, Chain, Compressor, Lz78, RePair};
    use slp::families;
    use spanner::examples::figure_2_spanner;
    use spanner::{reference, regex, Span, Variable};
    use std::collections::BTreeSet;

    fn compute_set(
        automaton: &SpannerAutomaton<u8>,
        doc: &[u8],
        compressor: &dyn Compressor,
    ) -> BTreeSet<SpanTuple> {
        let slp = compressor.compress(doc);
        compute_all(automaton, &slp).unwrap().into_iter().collect()
    }

    #[test]
    fn matches_reference_on_the_paper_example() {
        let m = figure_2_spanner();
        let doc = b"aabccaabaa";
        let expected = reference::evaluate(&m, doc);
        for compressor in [
            &Bisection as &dyn Compressor,
            &RePair::default(),
            &Lz78,
            &Chain,
        ] {
            assert_eq!(
                compute_set(&m, doc, compressor),
                expected,
                "compressor {}",
                compressor.name()
            );
        }
        // Sanity: the Example 8.2 tuple is among the results.
        let mut t = SpanTuple::empty(2);
        t.set(Variable(1), Span::new(4, 6).unwrap());
        assert!(expected.contains(&t));
    }

    #[test]
    fn matches_reference_on_assorted_documents_and_spanners() {
        let figure2 = figure_2_spanner();
        let blocks = regex::compile(".*x{a+}y{b+}.*", b"abc").unwrap();
        let optional = regex::compile("(x{a})?(b|c)*y{c}", b"abc").unwrap();
        let docs: Vec<&[u8]> = vec![b"a", b"c", b"ab", b"abc", b"aabbcc", b"cabcab", b"bca"];
        for (name, m) in [
            ("figure2", &figure2),
            ("blocks", &blocks),
            ("optional", &optional),
        ] {
            for doc in &docs {
                let expected = reference::evaluate(m, doc);
                let got = compute_set(m, doc, &Bisection);
                assert_eq!(got, expected, "spanner {name}, doc {:?}", doc);
            }
        }
    }

    #[test]
    fn computes_on_exponentially_compressed_documents() {
        // x spans each "ab" occurrence in (ab)^k: exactly k results, computed
        // from an SLP of size O(log k).
        let m = regex::compile(".*x{ab}.*", b"ab").unwrap();
        let k = 1u64 << 10;
        let slp = families::power_word(b"ab", k);
        let results = compute_all(&m, &slp).unwrap();
        assert_eq!(results.len(), k as usize);
        // Every result is an [2i+1, 2i+3⟩ span.
        let x = Variable(0);
        for t in &results {
            let s = t.get(x).unwrap();
            assert_eq!(s.len(), 2);
            assert_eq!(s.start % 2, 1);
        }
    }

    #[test]
    fn nondeterministic_automata_produce_no_duplicates() {
        // An intentionally ambiguous NFA: .*x{a.*}.* compiled without
        // determinisation has many accepting runs per tuple.
        let m = regex::compile(".*x{a.*}.*", b"ab").unwrap();
        assert!(!m.is_deterministic());
        let doc = b"abab";
        let expected = reference::evaluate(&m, doc);
        let got = compute_all(&m, &Bisection.compress(doc)).unwrap();
        assert_eq!(got.len(), expected.len(), "duplicates or missing results");
        assert_eq!(got.into_iter().collect::<BTreeSet<_>>(), expected);
    }

    #[test]
    fn empty_relation_yields_empty_vector() {
        let m = figure_2_spanner();
        let slp = Bisection.compress(b"cccc");
        assert!(compute_all(&m, &slp).unwrap().is_empty());
    }

    #[test]
    fn boolean_spanner_yields_the_empty_tuple() {
        let m = regex::compile("(a|b)*abb", b"ab").unwrap();
        let yes = Bisection.compress(b"aabb");
        let no = Bisection.compress(b"aab");
        assert_eq!(compute_all(&m, &yes).unwrap(), vec![SpanTuple::empty(0)]);
        assert!(compute_all(&m, &no).unwrap().is_empty());
    }
}
