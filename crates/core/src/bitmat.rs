//! Bit-packed three-valued `R_A` matrices: two bitplanes per matrix,
//! 2 bits per entry, 64 entries per `u64` word per plane.
//!
//! The three-valued domain of Definition 6.4 — `⊥` / `℮` / `1` — embeds
//! into two Boolean planes: `nonbot[i,j]` records `R_A[i,j] ≠ ⊥` and
//! `nonempty[i,j]` records `R_A[i,j] = 1`, with the invariant
//! `nonempty ⊆ nonbot`.  Rows are padded to the word boundary with zero
//! bits, so derived equality and hashing stay canonical.
//!
//! The payoff is the Lemma 6.5 product: over this encoding
//!
//! ```text
//! nonbot_out[i,j]   = OR_k ( nonbot_B[i,k] ∧ nonbot_C[k,j] )
//! nonempty_out[i,j] = OR_k ( nonbot_B[i,k] ∧ nonbot_C[k,j]
//!                            ∧ (nonempty_B[i,k] ∨ nonempty_C[k,j]) )
//! ```
//!
//! which [`RMatrix::product`] evaluates as row-broadcast OR sweeps over
//! whole `u64` words — `O(q³/64)` word operations instead of `O(q³)`
//! entry operations, bit-identical to the scalar kernel
//! ([`RMatrix::product_scalar`], kept as the oracle for the property
//! tests).

use crate::matrices::REntry;
use spanner_automata::matrix::BoolMatrix;

/// A `q × q` three-valued matrix packed into two Boolean bitplanes.
///
/// Invariants (maintained by every constructor and mutator):
/// * every `nonempty` bit implies the corresponding `nonbot` bit;
/// * row padding bits (columns `≥ q`) are zero in both planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RMatrix {
    q: usize,
    nonbot: BoolMatrix,
    nonempty: BoolMatrix,
}

impl RMatrix {
    /// The all-`⊥` matrix of dimension `q × q`.
    pub fn bot(q: usize) -> RMatrix {
        RMatrix {
            q,
            nonbot: BoolMatrix::zero(q),
            nonempty: BoolMatrix::zero(q),
        }
    }

    /// Matrix dimension `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// `true` if this is the 0-dimensional placeholder no build ever reads.
    #[inline]
    pub fn is_placeholder(&self) -> bool {
        self.q == 0
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> REntry {
        if !self.nonbot.get(i, j) {
            REntry::Bot
        } else if self.nonempty.get(i, j) {
            REntry::NonEmpty
        } else {
            REntry::Empty
        }
    }

    /// `true` iff `R[i,j] ≠ ⊥` — one plane probe, the common filter in
    /// `I_A` computations.
    #[inline]
    pub fn is_nonbot(&self, i: usize, j: usize) -> bool {
        self.nonbot.get(i, j)
    }

    /// Writes entry `(i, j)`, maintaining `nonempty ⊆ nonbot`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, entry: REntry) {
        match entry {
            REntry::Bot => {
                self.nonbot.set(i, j, false);
                self.nonempty.set(i, j, false);
            }
            REntry::Empty => {
                self.nonbot.set(i, j, true);
                self.nonempty.set(i, j, false);
            }
            REntry::NonEmpty => {
                self.nonbot.set(i, j, true);
                self.nonempty.set(i, j, true);
            }
        }
    }

    /// Packs a dense row-major `q·q` entry slice.
    pub fn from_entries(q: usize, entries: &[REntry]) -> RMatrix {
        assert_eq!(entries.len(), q * q, "entry slice must be q·q long");
        let mut m = RMatrix::bot(q);
        for i in 0..q {
            for j in 0..q {
                m.set(i, j, entries[i * q + j]);
            }
        }
        m
    }

    /// Unpacks into a dense row-major `q·q` entry vector.
    pub fn to_entries(&self) -> Vec<REntry> {
        let q = self.q;
        let mut out = Vec::with_capacity(q * q);
        for i in 0..q {
            for j in 0..q {
                out.push(self.get(i, j));
            }
        }
        out
    }

    /// The `nonbot` bitplane (`R[i,j] ≠ ⊥`).
    #[inline]
    pub fn nonbot_plane(&self) -> &BoolMatrix {
        &self.nonbot
    }

    /// The `nonempty` bitplane (`R[i,j] = 1`).
    #[inline]
    pub fn nonempty_plane(&self) -> &BoolMatrix {
        &self.nonempty
    }

    /// Rebuilds a matrix from its two bitplanes, checking the invariants:
    /// every `nonempty` bit must have its `nonbot` bit set.  Returns `None`
    /// on dimension mismatch or an `1`-without-`≠⊥` entry — the validation
    /// the wire decoder relies on against hostile peers.
    pub fn from_planes(nonbot: BoolMatrix, nonempty: BoolMatrix) -> Option<RMatrix> {
        if nonbot.dim() != nonempty.dim() {
            return None;
        }
        let q = nonbot.dim();
        for i in 0..q {
            for (wb, we) in nonbot.row_words(i).iter().zip(nonempty.row_words(i)) {
                if we & !wb != 0 {
                    return None;
                }
            }
        }
        Some(RMatrix {
            q,
            nonbot,
            nonempty,
        })
    }

    /// Heap footprint in bytes of both planes, padding words included —
    /// the admission weight charged by the byte-budgeted matrix caches.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.nonbot.heap_bytes() + self.nonempty.heap_bytes()
    }

    /// The word-parallel Lemma 6.5 product (see the module docs for the
    /// Boolean derivation): for each set bit `k` of `B`'s `nonbot` row `i`,
    /// `C`'s row `k` is OR-broadcast into the output row — `nonbot` always,
    /// and into `nonempty` either `C`'s `nonbot` row (when `B[i,k] = 1`,
    /// any `≠⊥` continuation yields `1`) or `C`'s `nonempty` row (when
    /// `B[i,k] = ℮`, only a `1` continuation does).  `O(q³/64)` words.
    pub fn product(b: &RMatrix, c: &RMatrix) -> RMatrix {
        assert_eq!(b.q, c.q, "dimension mismatch");
        let q = b.q;
        let mut out = RMatrix::bot(q);
        if q == 0 {
            return out;
        }
        let w = out.nonbot.words_per_row();
        let mut acc_nb = vec![0u64; w];
        let mut acc_ne = vec![0u64; w];
        for i in 0..q {
            acc_nb.iter_mut().for_each(|x| *x = 0);
            acc_ne.iter_mut().for_each(|x| *x = 0);
            let row_nb = b.nonbot.row_words(i);
            let row_ne = b.nonempty.row_words(i);
            for (word_idx, (&wb, &we)) in row_nb.iter().zip(row_ne).enumerate() {
                let mut bits = wb;
                while bits != 0 {
                    let t = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let k = word_idx * 64 + t;
                    let c_nb = c.nonbot.row_words(k);
                    // B[i,k] = 1 ⇒ any ≠⊥ continuation is 1;
                    // B[i,k] = ℮ ⇒ only a 1 continuation is.
                    let c_ne = if (we >> t) & 1 == 1 {
                        c_nb
                    } else {
                        c.nonempty.row_words(k)
                    };
                    for ((a_nb, a_ne), (&nb, &ne)) in acc_nb
                        .iter_mut()
                        .zip(acc_ne.iter_mut())
                        .zip(c_nb.iter().zip(c_ne))
                    {
                        *a_nb |= nb;
                        *a_ne |= ne;
                    }
                }
            }
            out.nonbot.row_words_mut(i).copy_from_slice(&acc_nb);
            out.nonempty.row_words_mut(i).copy_from_slice(&acc_ne);
        }
        out
    }

    /// The scalar Lemma 6.5 product, one entry at a time — the original
    /// `O(q³)` kernel, kept as the oracle the property tests compare
    /// [`RMatrix::product`] against.
    pub fn product_scalar(b: &RMatrix, c: &RMatrix) -> RMatrix {
        assert_eq!(b.q, c.q, "dimension mismatch");
        let q = b.q;
        let mut out = RMatrix::bot(q);
        for i in 0..q {
            for j in 0..q {
                let mut entry = REntry::Bot;
                for k in 0..q {
                    let eb = b.get(i, k);
                    let ec = c.get(k, j);
                    if eb == REntry::Bot || ec == REntry::Bot {
                        continue;
                    }
                    if eb == REntry::NonEmpty || ec == REntry::NonEmpty {
                        entry = REntry::NonEmpty;
                        break;
                    }
                    entry = REntry::Empty;
                }
                out.set(i, j, entry);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64 stream for reproducible pseudo-random fills.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed | 1;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
    }

    fn random_matrix(q: usize, next: &mut impl FnMut() -> u64) -> RMatrix {
        let mut m = RMatrix::bot(q);
        for i in 0..q {
            for j in 0..q {
                let entry = match next() % 4 {
                    0 | 1 => REntry::Bot,
                    2 => REntry::Empty,
                    _ => REntry::NonEmpty,
                };
                m.set(i, j, entry);
            }
        }
        m
    }

    #[test]
    fn get_set_round_trips_all_values() {
        let mut m = RMatrix::bot(3);
        assert_eq!(m.get(1, 2), REntry::Bot);
        m.set(1, 2, REntry::NonEmpty);
        assert_eq!(m.get(1, 2), REntry::NonEmpty);
        assert!(m.is_nonbot(1, 2));
        m.set(1, 2, REntry::Empty);
        assert_eq!(m.get(1, 2), REntry::Empty);
        assert!(m.is_nonbot(1, 2));
        m.set(1, 2, REntry::Bot);
        assert_eq!(m.get(1, 2), REntry::Bot);
        assert!(!m.is_nonbot(1, 2));
        // Downgrading from NonEmpty must clear the nonempty plane too.
        m.set(0, 0, REntry::NonEmpty);
        m.set(0, 0, REntry::Empty);
        assert_eq!(m.get(0, 0), REntry::Empty);
        assert!(!m.nonempty_plane().get(0, 0));
    }

    #[test]
    fn entries_round_trip_across_word_boundaries() {
        for q in [1usize, 7, 63, 64, 65, 130] {
            let mut next = rng(q as u64 * 0x9e3779b9);
            let m = random_matrix(q, &mut next);
            let entries = m.to_entries();
            assert_eq!(entries.len(), q * q);
            let back = RMatrix::from_entries(q, &entries);
            assert_eq!(back, m, "q={q}");
        }
    }

    #[test]
    fn packed_product_matches_the_scalar_oracle() {
        for q in [1usize, 7, 63, 65] {
            for seed in 1..=4u64 {
                let mut next = rng(seed.wrapping_mul(0x2545f491) ^ q as u64);
                let b = random_matrix(q, &mut next);
                let c = random_matrix(q, &mut next);
                let fast = RMatrix::product(&b, &c);
                let slow = RMatrix::product_scalar(&b, &c);
                assert_eq!(fast, slow, "q={q} seed={seed}");
            }
        }
    }

    #[test]
    fn packed_product_matches_on_degenerate_densities() {
        // All-⊥, all-℮ and all-1 operands in every combination: the gating
        // of the nonempty sweep must agree with the scalar kernel even when
        // one plane is saturated.
        let q = 65;
        let fills = [REntry::Bot, REntry::Empty, REntry::NonEmpty];
        for &fb in &fills {
            for &fc in &fills {
                let b = RMatrix::from_entries(q, &vec![fb; q * q]);
                let c = RMatrix::from_entries(q, &vec![fc; q * q]);
                let fast = RMatrix::product(&b, &c);
                let slow = RMatrix::product_scalar(&b, &c);
                assert_eq!(fast, slow, "fills {fb:?} × {fc:?}");
            }
        }
    }

    #[test]
    fn from_planes_enforces_the_subset_invariant() {
        let mut nonbot = BoolMatrix::zero(66);
        let mut nonempty = BoolMatrix::zero(66);
        nonbot.set(0, 65, true);
        nonempty.set(0, 65, true);
        assert!(RMatrix::from_planes(nonbot.clone(), nonempty.clone()).is_some());
        // A 1 entry whose ≠⊥ bit is clear is malformed.
        nonempty.set(1, 3, true);
        assert!(RMatrix::from_planes(nonbot.clone(), nonempty).is_none());
        // Dimension mismatch is malformed.
        assert!(RMatrix::from_planes(nonbot, BoolMatrix::zero(65)).is_none());
    }

    #[test]
    fn heap_bytes_counts_both_planes_with_padding() {
        // q = 65 pads each row to two words: 65 rows × 2 words × 8 bytes
        // per plane, two planes.
        let m = RMatrix::bot(65);
        assert!(m.heap_bytes() >= 65 * 2 * 8 * 2);
        // The placeholder still owns one word per plane per row (zero rows).
        assert_eq!(RMatrix::bot(0).heap_bytes(), 0);
        assert!(RMatrix::bot(0).is_placeholder());
        assert!(!m.is_placeholder());
    }

    #[test]
    fn product_keeps_padding_bits_zero() {
        let q = 65;
        let b = RMatrix::from_entries(q, &vec![REntry::NonEmpty; q * q]);
        let out = RMatrix::product(&b, &b);
        for i in 0..q {
            let last_nb = *out.nonbot_plane().row_words(i).last().unwrap();
            let last_ne = *out.nonempty_plane().row_words(i).last().unwrap();
            // Only column 64 (bit 0 of the second word) may be set.
            assert_eq!(last_nb & !1, 0);
            assert_eq!(last_ne & !1, 0);
        }
        // Canonical padding means derived equality is usable.
        assert_eq!(out, RMatrix::product_scalar(&b, &b));
    }
}
